//! Mount namespaces: per-application views of the file system (paper §5.3).
//!
//! Linux namespaces let yanc confine an application to a *view*: the slicer
//! creates `/net/views/http`, and the HTTP controller process is started in
//! a namespace where that subtree is bind-mounted over `/net`, so it cannot
//! even name the rest of the network. [`Namespace`] reproduces this with a
//! root prefix (chroot-like) plus longest-prefix mounts, each either a
//! **bind** (read-write or read-only) or an **overlay** ([`Overlay`]): a
//! copy-on-write union view whose writes stay in the tenant's private
//! upper layer until an atomic commit.
//!
//! A namespace is a *path translator* in front of a shared
//! [`Filesystem`]: operations translate the visible path and delegate, so
//! notification, hooks, permissions and syscall accounting all keep working
//! unchanged. As with real bind mounts, absolute symlink targets resolve in
//! the underlying file system — which also means a **writable** bind over a
//! tree containing absolute symlinks lets those symlinks reach the
//! underlying paths they name, exactly like `mount --bind` on Linux. A
//! *read-only* bind is safe against escape-to-write: the `EROFS` check runs
//! on the visible path before any delegation, so every mutating entry point
//! is refused before a symlink could redirect it (regression-tested in
//! `tests/views_and_isolation.rs`).

use std::sync::Arc;

use crate::acl::Acl;
use crate::error::{err, Errno, VfsResult};
use crate::fs::Filesystem;
use crate::overlay::{Overlay, OverlayStats};
use crate::path::VPath;
use crate::types::{Credentials, DirEntry, Fd, FileStat, Gid, Mode, OpenFlags, Uid};

#[derive(Debug, Clone)]
struct Bind {
    at: VPath,
    target: VPath,
    readonly: bool,
}

/// One entry of a namespace's mount table.
#[derive(Clone)]
enum Mount {
    Bind(Bind),
    Overlay { at: VPath, ov: Overlay },
}

impl Mount {
    fn at(&self) -> &VPath {
        match self {
            Mount::Bind(b) => &b.at,
            Mount::Overlay { at, .. } => at,
        }
    }
}

/// Where a visible path routed to: the plain filesystem (with its
/// effective read-only flag) or an overlay mount (with the overlay-
/// relative remainder of the path).
enum Route<'a> {
    Fs(VPath, bool),
    Ov(&'a Overlay, VPath),
}

/// One row of [`Namespace::mount_table`]: an introspectable description of
/// a mount entry, the shape `/net/.proc/vfs/mounts` and the `mount`
/// coreutil print.
#[derive(Debug, Clone)]
pub struct MountInfo {
    /// Namespace-visible mount point.
    pub at: String,
    /// `root`, `root_ro`, `bind`, `bind_ro` or `overlay`.
    pub kind: String,
    /// `target` for binds; `lower[:lower…] -> upper` for overlays.
    pub detail: String,
    /// Activity counters, for overlay mounts.
    pub stats: Option<OverlayStats>,
}

/// A per-application mount namespace over a shared [`Filesystem`].
#[derive(Clone)]
pub struct Namespace {
    fs: Arc<Filesystem>,
    root: VPath,
    readonly_root: bool,
    mounts: Vec<Mount>,
}

impl Namespace {
    /// The identity namespace: sees the whole filesystem read-write.
    pub fn new(fs: Arc<Filesystem>) -> Self {
        Namespace {
            fs,
            root: VPath::root(),
            readonly_root: false,
            mounts: Vec::new(),
        }
    }

    /// A chroot-like namespace rooted at `root` (which should exist).
    pub fn chroot(fs: Arc<Filesystem>, root: &str) -> Self {
        Namespace {
            fs,
            root: VPath::new(root),
            readonly_root: false,
            mounts: Vec::new(),
        }
    }

    /// Make everything not covered by a mount read-only.
    pub fn readonly(mut self) -> Self {
        self.readonly_root = true;
        self
    }

    /// Bind-mount `target` (a path in the underlying fs) at `at` (a path in
    /// this namespace). Later mounts shadow earlier ones; the longest
    /// matching prefix wins at lookup.
    pub fn bind(mut self, at: &str, target: &str) -> Self {
        self.mounts.push(Mount::Bind(Bind {
            at: VPath::new(at),
            target: VPath::new(target),
            readonly: false,
        }));
        self
    }

    /// Like [`Namespace::bind`], but writes under `at` fail with `EROFS`.
    pub fn bind_ro(mut self, at: &str, target: &str) -> Self {
        self.mounts.push(Mount::Bind(Bind {
            at: VPath::new(at),
            target: VPath::new(target),
            readonly: true,
        }));
        self
    }

    /// Mount a copy-on-write [`Overlay`] view at `at`: reads merge the
    /// overlay's layers, writes copy up into its private upper layer, and
    /// [`Overlay::commit`] later publishes the staged state atomically.
    pub fn overlay(mut self, at: &str, ov: &Overlay) -> Self {
        self.mounts.push(Mount::Overlay {
            at: VPath::new(at),
            ov: ov.clone(),
        });
        self
    }

    /// The underlying filesystem.
    pub fn filesystem(&self) -> &Arc<Filesystem> {
        &self.fs
    }

    /// The namespace's mount table, root entry first, in mount order.
    pub fn mount_table(&self) -> Vec<MountInfo> {
        let mut rows = vec![MountInfo {
            at: "/".to_string(),
            kind: if self.readonly_root {
                "root_ro"
            } else {
                "root"
            }
            .to_string(),
            detail: self.root.as_str().to_string(),
            stats: None,
        }];
        for m in &self.mounts {
            rows.push(match m {
                Mount::Bind(b) => MountInfo {
                    at: b.at.as_str().to_string(),
                    kind: if b.readonly { "bind_ro" } else { "bind" }.to_string(),
                    detail: b.target.as_str().to_string(),
                    stats: None,
                },
                Mount::Overlay { at, ov } => MountInfo {
                    at: at.as_str().to_string(),
                    kind: "overlay".to_string(),
                    detail: format!(
                        "{} -> {}",
                        ov.lower_paths()
                            .iter()
                            .map(|p| p.as_str())
                            .collect::<Vec<_>>()
                            .join(":"),
                        ov.upper_path().as_str()
                    ),
                    stats: Some(ov.stats()),
                },
            });
        }
        rows
    }

    /// Publish this namespace's mount table as `vfs/mounts/<name>` in the
    /// filesystem's proc registry (visible once [`Filesystem::mount_proc`]
    /// is active). The rendering closure snapshots the table at read time,
    /// so overlay counters are always current.
    pub fn register_mounts(&self, name: &str) {
        let ns = self.clone();
        self.fs.proc().register_mount_table(
            name,
            Arc::new(move || {
                let mut out = String::new();
                for r in ns.mount_table() {
                    out.push_str(&format!("{} {} {}", r.at, r.kind, r.detail));
                    if let Some(s) = r.stats {
                        out.push_str(&format!(
                            " copy_ups={} copy_up_bytes={} whiteouts={} commits={}",
                            s.copy_ups, s.copy_up_bytes, s.whiteouts, s.commits
                        ));
                    }
                    out.push('\n');
                }
                out
            }),
        );
    }

    /// Route a namespace-visible path to its mount: longest prefix wins.
    fn route(&self, path: &str) -> Route<'_> {
        let vp = VPath::new(path);
        let mut best: Option<(&Mount, usize)> = None;
        for m in &self.mounts {
            if vp.starts_with(m.at()) {
                let len = m.at().as_str().len();
                if best.map(|(_, l)| len >= l).unwrap_or(true) {
                    best = Some((m, len));
                }
            }
        }
        match best {
            Some((Mount::Bind(b), _)) => {
                let rebased = vp.rebase(&b.at, &b.target).expect("starts_with checked");
                Route::Fs(rebased, b.readonly)
            }
            Some((Mount::Overlay { at, ov }, _)) => {
                let rel = vp.rebase(at, &VPath::root()).expect("starts_with checked");
                Route::Ov(ov, rel)
            }
            None => {
                let under = if self.root.is_root() {
                    vp
                } else {
                    vp.rebase(&VPath::root(), &self.root)
                        .expect("root prefix always matches")
                };
                Route::Fs(under, self.readonly_root)
            }
        }
    }

    /// Route for a mutating operation: read-only binds refuse with `EROFS`
    /// *before* any delegation (see the module docs on symlink escapes).
    fn route_rw(&self, path: &str) -> VfsResult<Route<'_>> {
        match self.route(path) {
            Route::Fs(_, true) => err(Errno::EROFS, path),
            r => Ok(r),
        }
    }

    // -- delegating operations -----------------------------------------

    /// See [`Filesystem::stat`].
    pub fn stat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.stat(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.stat(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::lstat`].
    pub fn lstat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.lstat(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.lstat(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::exists`].
    pub fn exists(&self, path: &str, creds: &Credentials) -> bool {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.exists(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.exists(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::readdir`].
    pub fn readdir(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<DirEntry>> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.readdir(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.readdir(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::read_file`].
    pub fn read_file(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.read_file(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.read_file(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::read_to_string`].
    pub fn read_to_string(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.read_to_string(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.read_to_string(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::readlink`].
    pub fn readlink(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.readlink(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.readlink(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::open`]. Write-opens fail on read-only binds and
    /// trigger copy-up on overlay mounts.
    pub fn open(&self, path: &str, flags: OpenFlags, creds: &Credentials) -> VfsResult<Fd> {
        let writing = flags.write || flags.create || flags.truncate || flags.append;
        match self.route(path) {
            Route::Fs(_, true) if writing => err(Errno::EROFS, path),
            Route::Fs(p, _) => self.fs.open(p.as_str(), flags, creds),
            Route::Ov(ov, rel) => ov.open(rel.as_str(), flags, creds),
        }
    }

    /// See [`Filesystem::read`].
    pub fn read(&self, fd: Fd, len: usize) -> VfsResult<Vec<u8>> {
        self.fs.read(fd, len)
    }

    /// See [`Filesystem::write`].
    pub fn write(&self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        self.fs.write(fd, data)
    }

    /// See [`Filesystem::close`].
    pub fn close(&self, fd: Fd, creds: &Credentials) -> VfsResult<()> {
        self.fs.close(fd, creds)
    }

    /// See [`Filesystem::write_file`].
    pub fn write_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.write_file(p.as_str(), data, creds),
            Route::Ov(ov, rel) => ov.write_file(rel.as_str(), data, creds),
        }
    }

    /// See [`Filesystem::append_file`].
    pub fn append_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.append_file(p.as_str(), data, creds),
            Route::Ov(ov, rel) => ov.append_file(rel.as_str(), data, creds),
        }
    }

    /// See [`Filesystem::mkdir`].
    pub fn mkdir(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.mkdir(p.as_str(), mode, creds),
            Route::Ov(ov, rel) => ov.mkdir(rel.as_str(), mode, creds),
        }
    }

    /// See [`Filesystem::mkdir_all`].
    pub fn mkdir_all(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.mkdir_all(p.as_str(), mode, creds),
            Route::Ov(ov, rel) => ov.mkdir_all(rel.as_str(), mode, creds),
        }
    }

    /// See [`Filesystem::rmdir`].
    pub fn rmdir(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.rmdir(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.rmdir(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::unlink`].
    pub fn unlink(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.unlink(p.as_str(), creds),
            Route::Ov(ov, rel) => ov.unlink(rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::rename`]. Both endpoints must be writable and on
    /// the same mount (`EXDEV` otherwise, like the real syscall).
    pub fn rename(&self, from: &str, to: &str, creds: &Credentials) -> VfsResult<()> {
        match (self.route_rw(from)?, self.route_rw(to)?) {
            (Route::Fs(f, _), Route::Fs(t, _)) => self.fs.rename(f.as_str(), t.as_str(), creds),
            (Route::Ov(fo, frel), Route::Ov(to_, trel)) if std::ptr::eq(fo, to_) => {
                fo.rename(frel.as_str(), trel.as_str(), creds)
            }
            _ => err(Errno::EXDEV, from),
        }
    }

    /// See [`Filesystem::symlink`]. The target string is stored verbatim.
    pub fn symlink(&self, target: &str, linkpath: &str, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(linkpath)? {
            Route::Fs(p, _) => self.fs.symlink(target, p.as_str(), creds),
            Route::Ov(ov, rel) => ov.symlink(target, rel.as_str(), creds),
        }
    }

    /// See [`Filesystem::truncate`].
    pub fn truncate(&self, path: &str, len: u64, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.truncate(p.as_str(), len, creds),
            Route::Ov(ov, rel) => ov.truncate(rel.as_str(), len, creds),
        }
    }

    /// See [`Filesystem::chmod`].
    pub fn chmod(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.chmod(p.as_str(), mode, creds),
            Route::Ov(ov, rel) => ov.chmod(rel.as_str(), mode, creds),
        }
    }

    /// See [`Filesystem::chown`].
    pub fn chown(
        &self,
        path: &str,
        uid: Option<Uid>,
        gid: Option<Gid>,
        creds: &Credentials,
    ) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.chown(p.as_str(), uid, gid, creds),
            Route::Ov(ov, rel) => ov.chown(rel.as_str(), uid, gid, creds),
        }
    }

    /// See [`Filesystem::set_acl`].
    pub fn set_acl(&self, path: &str, acl: Option<Acl>, creds: &Credentials) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.set_acl(p.as_str(), acl, creds),
            Route::Ov(ov, rel) => ov.set_acl(rel.as_str(), acl, creds),
        }
    }

    /// See [`Filesystem::set_xattr`].
    pub fn set_xattr(
        &self,
        path: &str,
        name: &str,
        value: &[u8],
        creds: &Credentials,
    ) -> VfsResult<()> {
        match self.route_rw(path)? {
            Route::Fs(p, _) => self.fs.set_xattr(p.as_str(), name, value, creds),
            Route::Ov(ov, rel) => ov.set_xattr(rel.as_str(), name, value, creds),
        }
    }

    /// See [`Filesystem::get_xattr`].
    pub fn get_xattr(&self, path: &str, name: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.get_xattr(p.as_str(), name, creds),
            Route::Ov(ov, rel) => ov.get_xattr(rel.as_str(), name, creds),
        }
    }

    /// Start building a watch on a namespace-visible path; see
    /// [`Filesystem::watch`]. Delivered events carry *underlying* paths.
    /// On an overlay mount the watch lands on the private upper layer, so
    /// it observes exactly this view's writes.
    pub fn watch(&self, path: &str) -> crate::fs::WatchBuilder<'_> {
        match self.route(path) {
            Route::Fs(p, _) => self.fs.watch(p.as_str()),
            Route::Ov(ov, rel) => ov.watch(rel.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Arc<Filesystem> {
        let fs = Arc::new(Filesystem::new());
        let r = Credentials::root();
        fs.mkdir_all("/net/views/http/switches", Mode::DIR_DEFAULT, &r)
            .unwrap();
        fs.mkdir_all("/net/switches/sw1", Mode::DIR_DEFAULT, &r)
            .unwrap();
        fs.write_file("/net/switches/sw1/id", b"1", &r).unwrap();
        fs.write_file("/net/views/http/switches/marker", b"view", &r)
            .unwrap();
        fs
    }

    #[test]
    fn chroot_confines_visibility() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs.clone(), "/net/views/http");
        assert_eq!(ns.read_file("/switches/marker", &r).unwrap(), b"view");
        // The global /net is invisible from inside the view.
        assert!(ns.stat("/net/switches/sw1", &r).is_err());
        // Writes land inside the view.
        ns.write_file("/switches/new", b"x", &r).unwrap();
        assert!(fs.exists("/net/views/http/switches/new", &r));
    }

    #[test]
    fn bind_mount_maps_subtree() {
        let fs = setup();
        let r = Credentials::root();
        // An app that expects /net sees the view bound over it.
        let ns = Namespace::new(fs.clone()).bind("/net", "/net/views/http");
        assert_eq!(ns.read_file("/net/switches/marker", &r).unwrap(), b"view");
        // Longest prefix wins: a nested bind shadows.
        let ns2 = Namespace::new(fs.clone())
            .bind("/net", "/net/views/http")
            .bind("/net/real", "/net/switches");
        assert_eq!(ns2.read_file("/net/real/sw1/id", &r).unwrap(), b"1");
        assert_eq!(ns2.read_file("/net/switches/marker", &r).unwrap(), b"view");
    }

    #[test]
    fn readonly_bind_rejects_writes_but_allows_reads() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::new(fs.clone()).bind_ro("/net", "/net");
        assert_eq!(ns.read_file("/net/switches/sw1/id", &r).unwrap(), b"1");
        assert_eq!(
            ns.write_file("/net/switches/sw1/id", b"2", &r)
                .unwrap_err()
                .errno,
            Errno::EROFS
        );
        assert_eq!(
            ns.mkdir("/net/x", Mode::DIR_DEFAULT, &r).unwrap_err().errno,
            Errno::EROFS
        );
        assert_eq!(
            ns.unlink("/net/switches/sw1/id", &r).unwrap_err().errno,
            Errno::EROFS
        );
        assert_eq!(
            ns.open("/net/switches/sw1/id", OpenFlags::write_create(), &r)
                .unwrap_err()
                .errno,
            Errno::EROFS
        );
        // Read-only open still works.
        let fd = ns
            .open("/net/switches/sw1/id", OpenFlags::read_only(), &r)
            .unwrap();
        assert_eq!(ns.read(fd, 8).unwrap(), b"1");
        ns.close(fd, &r).unwrap();
    }

    #[test]
    fn readonly_root_namespace() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs, "/net").readonly();
        assert!(ns.exists("/switches/sw1", &r));
        assert_eq!(
            ns.write_file("/switches/sw1/id", b"2", &r)
                .unwrap_err()
                .errno,
            Errno::EROFS
        );
    }

    #[test]
    fn watches_through_namespace_fire_on_underlying_changes() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs.clone(), "/net/views/http");
        let w = ns.watch("/switches").register().unwrap();
        // A write through the *global* fs is seen by the view's watcher.
        fs.write_file("/net/views/http/switches/flow", b"f", &r)
            .unwrap();
        assert!(w
            .receiver()
            .try_iter()
            .any(|e| e.name.as_deref() == Some("flow")));
    }

    #[test]
    fn rename_within_namespace() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs.clone(), "/net/views/http");
        ns.rename("/switches/marker", "/switches/renamed", &r)
            .unwrap();
        assert!(fs.exists("/net/views/http/switches/renamed", &r));
    }

    #[test]
    fn overlay_mount_cow_and_mount_table() {
        let fs = setup();
        let r = Credentials::root();
        let ov = Overlay::new(fs.clone(), &["/net/switches"], "/views/t1");
        ov.ensure_upper(&r).unwrap();
        let ns = Namespace::new(fs.clone()).overlay("/net", &ov);
        // Read-through sees the base; a write stays in the upper layer.
        assert_eq!(ns.read_file("/net/sw1/id", &r).unwrap(), b"1");
        ns.write_file("/net/sw1/id", b"2", &r).unwrap();
        assert_eq!(ns.read_file("/net/sw1/id", &r).unwrap(), b"2");
        assert_eq!(fs.read_file("/net/switches/sw1/id", &r).unwrap(), b"1");
        // Deleting through the mount leaves a whiteout, not a base change.
        ns.unlink("/net/sw1/id", &r).unwrap();
        assert!(!ns.exists("/net/sw1/id", &r));
        assert!(fs.exists("/net/switches/sw1/id", &r));
        // Renames across mounts are EXDEV.
        assert_eq!(
            ns.rename("/net/sw1", "/elsewhere", &r).unwrap_err().errno,
            Errno::EXDEV
        );
        // The mount table reports the overlay row with live counters.
        let rows = ns.mount_table();
        let ovrow = rows.iter().find(|m| m.kind == "overlay").unwrap();
        assert_eq!(ovrow.at, "/net");
        assert_eq!(ovrow.detail, "/net/switches -> /views/t1");
        let st = ovrow.stats.unwrap();
        assert_eq!(st.copy_ups, 1);
        assert_eq!(st.whiteouts, 1);
    }
}
