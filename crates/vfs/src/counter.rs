//! Per-operation "system call" accounting.
//!
//! The paper's §8.1 cost argument is that every fine-grained file access is a
//! system call and context switch, so "writing flow entries to thousands of
//! nodes will result in tens of thousands of context switches". Our vfs is
//! in-process, so instead of paying real context switches it *counts* them:
//! every public [`crate::Filesystem`] entry point increments exactly one
//! counter, giving experiments a deterministic proxy for syscall/context-
//! switch volume that the libyanc fastpath can then be measured against.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The categories of file-system operations that are tallied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    /// `stat`/`lstat`.
    Stat,
    /// `open` (including creating opens).
    Open,
    /// `close`.
    Close,
    /// `read`/`pread`.
    Read,
    /// `write`/`pwrite`.
    Write,
    /// `mkdir`.
    Mkdir,
    /// `rmdir`.
    Rmdir,
    /// `unlink`.
    Unlink,
    /// `rename`.
    Rename,
    /// `symlink`.
    Symlink,
    /// `readlink`.
    Readlink,
    /// `link`.
    Link,
    /// `readdir`.
    Readdir,
    /// `chmod`/`chown`.
    Setattr,
    /// xattr get/set/list/remove and ACL manipulation.
    Xattr,
    /// `truncate`.
    Truncate,
    /// `openat` (descriptor-relative open, including creating opens).
    Openat,
    /// `fstat` (descriptor-relative stat).
    Fstat,
    /// `fsync` (descriptor commit without close).
    Fsync,
    /// `yanc_poll` wait (one readiness syscall, however many sources).
    Poll,
}

const N_OPS: usize = 20;

const ALL_OPS: [OpKind; N_OPS] = [
    OpKind::Stat,
    OpKind::Open,
    OpKind::Close,
    OpKind::Read,
    OpKind::Write,
    OpKind::Mkdir,
    OpKind::Rmdir,
    OpKind::Unlink,
    OpKind::Rename,
    OpKind::Symlink,
    OpKind::Readlink,
    OpKind::Link,
    OpKind::Readdir,
    OpKind::Setattr,
    OpKind::Xattr,
    OpKind::Truncate,
    OpKind::Openat,
    OpKind::Fstat,
    OpKind::Fsync,
    OpKind::Poll,
];

impl OpKind {
    /// Number of operation kinds (the length of [`OpKind::all`]).
    pub const COUNT: usize = N_OPS;

    /// All operation kinds, in a stable order.
    pub fn all() -> &'static [OpKind] {
        &ALL_OPS
    }

    /// Short name for reports, e.g. `"write"`.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Stat => "stat",
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Mkdir => "mkdir",
            OpKind::Rmdir => "rmdir",
            OpKind::Unlink => "unlink",
            OpKind::Rename => "rename",
            OpKind::Symlink => "symlink",
            OpKind::Readlink => "readlink",
            OpKind::Link => "link",
            OpKind::Readdir => "readdir",
            OpKind::Setattr => "setattr",
            OpKind::Xattr => "xattr",
            OpKind::Truncate => "truncate",
            OpKind::Openat => "openat",
            OpKind::Fstat => "fstat",
            OpKind::Fsync => "fsync",
            OpKind::Poll => "poll",
        }
    }
}

/// Number of independent counter stripes. Each stripe owns a full set of
/// per-op slots on its own cache lines, so two threads bumping the *same*
/// [`OpKind`] from different stripes never contend on one line.
const N_STRIPES: usize = 8;

/// One stripe of per-op slots, padded to cache-line granularity so adjacent
/// stripes never false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
struct Stripe {
    slots: [AtomicU64; N_OPS],
}

thread_local! {
    /// The stripe this thread bumps into; `usize::MAX` means "not assigned
    /// yet" and the first bump claims the next round-robin stripe.
    static MY_STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin source of stripe assignments for new threads.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

/// Lock-free tally of operations, one logical slot per [`OpKind`].
///
/// Writes are striped: each thread is assigned one of [`N_STRIPES`] stripes
/// on its first bump and always increments there, so the hot `bump` path is
/// an uncontended relaxed `fetch_add`. Reads (`get`/`total`/`snapshot`) sum
/// across stripes; they are exact with respect to completed bumps, merely
/// not instantaneous, which is all the pinned syscall tables require —
/// single-threaded runs see every bump before every read.
#[derive(Debug, Default)]
pub struct SyscallCounters {
    stripes: [Stripe; N_STRIPES],
}

impl SyscallCounters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stripe index the calling thread writes to.
    #[inline]
    fn stripe_index() -> usize {
        MY_STRIPE.with(|s| {
            let mut i = s.get();
            if i == usize::MAX {
                i = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % N_STRIPES;
                s.set(i);
            }
            i
        })
    }

    /// Record one operation of `kind`.
    #[inline]
    pub fn bump(&self, kind: OpKind) {
        self.stripes[Self::stripe_index()].slots[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count for a single kind (sum over stripes).
    pub fn get(&self, kind: OpKind) -> u64 {
        self.stripes
            .iter()
            .map(|st| st.slots[kind as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Total across all kinds — the paper's "number of context switches".
    pub fn total(&self) -> u64 {
        self.stripes
            .iter()
            .flat_map(|st| st.slots.iter())
            .map(|s| s.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset every slot to zero (benchmarks call this between phases).
    pub fn reset(&self) {
        for st in &self.stripes {
            for s in &st.slots {
                s.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Immutable snapshot for reporting.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut counts = [0u64; N_OPS];
        for st in &self.stripes {
            for (i, s) in st.slots.iter().enumerate() {
                counts[i] += s.load(Ordering::Relaxed);
            }
        }
        CounterSnapshot { counts }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    counts: [u64; N_OPS],
}

impl CounterSnapshot {
    /// Count for one kind.
    pub fn get(&self, kind: OpKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total across kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-kind difference since `earlier` (saturating).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut counts = [0u64; N_OPS];
        for (c, (a, b)) in counts
            .iter_mut()
            .zip(self.counts.iter().zip(earlier.counts.iter()))
        {
            *c = a.saturating_sub(*b);
        }
        CounterSnapshot { counts }
    }

    /// Render a compact `kind=count` report of non-zero slots.
    pub fn report(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for k in OpKind::all() {
            let v = self.get(*k);
            if v > 0 {
                parts.push(format!("{}={v}", k.name()));
            }
        }
        parts.push(format!("total={}", self.total()));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_totals() {
        let c = SyscallCounters::new();
        c.bump(OpKind::Write);
        c.bump(OpKind::Write);
        c.bump(OpKind::Open);
        assert_eq!(c.get(OpKind::Write), 2);
        assert_eq!(c.get(OpKind::Open), 1);
        assert_eq!(c.total(), 3);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn snapshot_diff() {
        let c = SyscallCounters::new();
        c.bump(OpKind::Mkdir);
        let s1 = c.snapshot();
        c.bump(OpKind::Mkdir);
        c.bump(OpKind::Stat);
        let s2 = c.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.get(OpKind::Mkdir), 1);
        assert_eq!(d.get(OpKind::Stat), 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn report_lists_nonzero_only() {
        let c = SyscallCounters::new();
        c.bump(OpKind::Read);
        let r = c.snapshot().report();
        assert!(r.contains("read=1"));
        assert!(r.contains("total=1"));
        assert!(!r.contains("write="));
    }

    #[test]
    fn striped_bumps_sum_exactly_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(SyscallCounters::new());
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.bump(OpKind::Write);
                    }
                    c.bump(OpKind::Stat);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(OpKind::Write), 16_000);
        assert_eq!(c.get(OpKind::Stat), 16);
        assert_eq!(c.total(), 16_016);
        assert_eq!(c.snapshot().total(), 16_016);
    }

    #[test]
    fn all_ops_have_unique_names() {
        let mut names: Vec<&str> = OpKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_OPS);
    }
}
