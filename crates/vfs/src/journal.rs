//! Write-ahead journal + snapshot/restore (ROADMAP item 1; paper §6).
//!
//! The paper's durability argument is that a file-system-backed controller
//! gets crash recovery "for free" from the storage layer. This module makes
//! that concrete for the in-memory vfs: every mutating operation appends one
//! compact, versioned, checksummed record to an append-only byte log *while
//! the mutation's shard locks are still held*, so log order is exactly the
//! linearization order of the tree. Periodic snapshots — full-tree captures
//! taken under the global lock — are written *into* the same log as ordinary
//! frames, and compaction drops every byte before the last complete snapshot
//! (the compaction invariant: a record is droppable iff a later snapshot
//! covers it).
//!
//! Restore ([`Filesystem::restore_from_journal`]) scans the log for complete
//! frames, installs the last complete snapshot, and replays the record suffix
//! by *direct state application*: records are inode-keyed and carry the
//! virtual-clock tick of their mutation, so the rebuilt tree is byte-identical
//! to the original — same inode numbers, same `mtime`/`ctime` ticks, same
//! modes/owners/ACLs/xattrs. A truncated or corrupt tail (the crash case) is
//! detected by the frame checksums and simply dropped: no partial record is
//! ever visible.
//!
//! What is deliberately *not* journaled, and why:
//!
//! * **Open-file handles and watches** — kernel-style volatile state; they
//!   die with the process. Snapshots carry the fd-allocator watermark so a
//!   descriptor from before the crash can never alias a new open on the
//!   restored filesystem: it fails `EBADF` forever.
//! * **Proc-mounted paths** (`/net/.proc/...`) — derived state, re-rendered
//!   on every read; journaling it would let introspection disturb what it
//!   measures. Restore leaves the proc subtree absent; re-mounting recreates
//!   it, exactly as a reboot re-mounts `/proc`.
//! * **Unlinked-but-open orphan inodes** — invisible in the tree; their data
//!   is lost at the crash boundary, matching what `O_TMPFILE` data does on a
//!   real machine.
//!
//! The documented remap: dcache generation counters and the allocator
//! watermarks are *not* part of tree identity — a restored filesystem starts
//! with a cold dentry cache and watermarks at least as high as the originals.
//! Everything else round-trips exactly; [`Filesystem::tree_digest`] is the
//! canonical byte-equality check (the cross-fs tree comparison the
//! linearizability harness uses).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::acl::{check_access, Acl, AclEntry};
use crate::counter::OpKind;
use crate::error::{err, Errno, VfsResult};
use crate::fs::{Filesystem, Limits};
use crate::hooks::HookDepth;
use crate::notify::EventKind;
use crate::path::{valid_name, VPath};
use crate::proc::ProcDepth;
use crate::shard::{Inode, NodeKind, ShardSet};
use crate::types::{Access, Credentials, Gid, Ino, Mode, Timestamp, Uid, ROOT_INO};

/// Journal wire-format version; bumped on any frame/record layout change.
pub const JOURNAL_VERSION: u8 = 1;

/// First byte of every frame.
const FRAME_MAGIC: u8 = 0xA5;

/// Frame overhead: magic + version + payload length (u32) + checksum (u32).
const FRAME_OVERHEAD: usize = 10;

// Record kind tags (first payload byte).
const K_MKDIR: u8 = 1;
const K_CREATE: u8 = 2;
const K_SYMLINK: u8 = 3;
const K_LINK: u8 = 4;
const K_UNLINK: u8 = 5;
const K_RMDIR: u8 = 6;
const K_RMTREE: u8 = 7;
const K_RENAME: u8 = 8;
const K_WRITE: u8 = 9;
const K_SETCONTENT: u8 = 10;
const K_TRUNCATE: u8 = 11;
const K_SETMODE: u8 = 12;
const K_SETOWNER: u8 = 13;
const K_SETACL: u8 = 14;
const K_SETXATTR: u8 = 15;
const K_REMOVEXATTR: u8 = 16;
const K_SNAPSHOT: u8 = 17;
const K_COMMIT: u8 = 18;

// ----------------------------------------------------------------------
// Records
// ----------------------------------------------------------------------

/// One journaled mutation. Records are inode-keyed (not path-keyed): the
/// committing operation captured the allocated inode number under its shard
/// locks, so replay reinstalls objects under their original numbers and
/// descriptor-relative writes need no path at all. Every record carries the
/// virtual-clock tick of its mutation; replay writes `mtime`/`ctime` from it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Record {
    Mkdir {
        parent: Ino,
        name: String,
        ino: Ino,
        mode: Mode,
        uid: Uid,
        gid: Gid,
        tick: Timestamp,
    },
    Create {
        parent: Ino,
        name: String,
        ino: Ino,
        uid: Uid,
        gid: Gid,
        data: Vec<u8>,
        tick: Timestamp,
    },
    Symlink {
        parent: Ino,
        name: String,
        ino: Ino,
        target: String,
        uid: Uid,
        gid: Gid,
        tick: Timestamp,
    },
    Link {
        parent: Ino,
        name: String,
        ino: Ino,
        tick: Timestamp,
    },
    Unlink {
        parent: Ino,
        name: String,
        tick: Timestamp,
    },
    Rmdir {
        parent: Ino,
        name: String,
        tick: Timestamp,
    },
    RmTree {
        parent: Ino,
        name: String,
        tick: Timestamp,
    },
    Rename {
        from_parent: Ino,
        from_name: String,
        to_parent: Ino,
        to_name: String,
        tick: Timestamp,
    },
    Write {
        ino: Ino,
        offset: u64,
        data: Vec<u8>,
        tick: Timestamp,
    },
    SetContent {
        ino: Ino,
        data: Vec<u8>,
        tick: Timestamp,
    },
    Truncate {
        ino: Ino,
        len: u64,
        tick: Timestamp,
    },
    SetMode {
        ino: Ino,
        mode: Mode,
        tick: Timestamp,
    },
    SetOwner {
        ino: Ino,
        uid: Uid,
        gid: Gid,
        tick: Timestamp,
    },
    SetAcl {
        ino: Ino,
        acl: Option<Acl>,
        tick: Timestamp,
    },
    SetXattr {
        ino: Ino,
        name: String,
        value: Vec<u8>,
        tick: Timestamp,
    },
    RemoveXattr {
        ino: Ino,
        name: String,
        tick: Timestamp,
    },
    /// An atomic multi-record transaction ([`Filesystem::apply_batch`]):
    /// overlay copy-up chains and view commits land as one frame, so a
    /// crash replays them fully-applied or fully-absent — never partially.
    /// Sub-records are ordinary records; nesting is rejected on decode.
    Commit(Vec<Record>),
    Snapshot(Box<SnapshotData>),
}

impl Record {
    /// The syscall category a replayed record is charged as (one counted
    /// syscall per record — the deterministic warm-restart cost metric).
    /// Snapshot installation is free: it is a memory image, not replayed ops.
    fn op_kind(&self) -> Option<OpKind> {
        Some(match self {
            Record::Mkdir { .. } => OpKind::Mkdir,
            Record::Create { .. } => OpKind::Open,
            Record::Symlink { .. } => OpKind::Symlink,
            Record::Link { .. } => OpKind::Link,
            Record::Unlink { .. } => OpKind::Unlink,
            Record::Rmdir { .. } | Record::RmTree { .. } => OpKind::Rmdir,
            Record::Rename { .. } => OpKind::Rename,
            Record::Write { .. } | Record::SetContent { .. } => OpKind::Write,
            Record::Truncate { .. } => OpKind::Truncate,
            Record::SetMode { .. } | Record::SetOwner { .. } => OpKind::Setattr,
            Record::SetAcl { .. } | Record::SetXattr { .. } | Record::RemoveXattr { .. } => {
                OpKind::Xattr
            }
            // Charged per sub-record by the restore driver, not as a unit.
            Record::Commit(_) => return None,
            Record::Snapshot(_) => return None,
        })
    }
}

// ----------------------------------------------------------------------
// Snapshot
// ----------------------------------------------------------------------

/// A full-tree capture: every inode reachable from the root (proc-covered
/// subtrees excluded), plus the clock and allocator watermarks. Taken under
/// the global lock and appended to the log as an ordinary frame, so a
/// snapshot sits at a well-defined point in the linearization order.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SnapshotData {
    pub(crate) clock: u64,
    pub(crate) next_ino: u64,
    pub(crate) next_fd: u64,
    pub(crate) nodes: Vec<SnapNode>,
}

/// One inode in a snapshot, in canonical (ino-sorted) order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapNode {
    pub(crate) ino: u64,
    pub(crate) mode: Mode,
    pub(crate) uid: Uid,
    pub(crate) gid: Gid,
    pub(crate) nlink: u32,
    pub(crate) mtime: u64,
    pub(crate) ctime: u64,
    pub(crate) xattrs: Vec<(String, Vec<u8>)>,
    pub(crate) acl: Option<Acl>,
    pub(crate) payload: SnapPayload,
}

/// Kind-specific inode payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SnapPayload {
    File(Vec<u8>),
    Symlink(String),
    Dir {
        parent: u64,
        entries: Vec<(String, u64)>,
    },
}

impl SnapshotData {
    /// Canonical byte encoding of the tree *content* — excludes the clock
    /// and allocator watermarks (the documented remap). Two filesystems are
    /// tree-identical iff their bodies are byte-equal.
    pub(crate) fn encode_body(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.nodes.len() as u32);
        for n in &self.nodes {
            e.u64(n.ino);
            e.u16(n.mode.0);
            e.u32(n.uid.0);
            e.u32(n.gid.0);
            e.u32(n.nlink);
            e.u64(n.mtime);
            e.u64(n.ctime);
            e.u32(n.xattrs.len() as u32);
            for (k, v) in &n.xattrs {
                e.str(k);
                e.bytes(v);
            }
            enc_acl_opt(&mut e, &n.acl);
            match &n.payload {
                SnapPayload::File(d) => {
                    e.u8(0);
                    e.bytes(d);
                }
                SnapPayload::Dir { parent, entries } => {
                    e.u8(1);
                    e.u64(*parent);
                    e.u32(entries.len() as u32);
                    for (name, ino) in entries {
                        e.str(name);
                        e.u64(*ino);
                    }
                }
                SnapPayload::Symlink(t) => {
                    e.u8(2);
                    e.str(t);
                }
            }
        }
        e.0
    }

    fn decode_body(d: &mut Dec) -> Option<Vec<SnapNode>> {
        let count = d.u32()? as usize;
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let ino = d.u64()?;
            let mode = Mode(d.u16()?);
            let uid = Uid(d.u32()?);
            let gid = Gid(d.u32()?);
            let nlink = d.u32()?;
            let mtime = d.u64()?;
            let ctime = d.u64()?;
            let nx = d.u32()? as usize;
            let mut xattrs = Vec::with_capacity(nx);
            for _ in 0..nx {
                let k = d.str()?;
                let v = d.bytes()?;
                xattrs.push((k, v));
            }
            let acl = dec_acl_opt(d)?;
            let payload = match d.u8()? {
                0 => SnapPayload::File(d.bytes()?),
                1 => {
                    let parent = d.u64()?;
                    let ne = d.u32()? as usize;
                    let mut entries = Vec::with_capacity(ne);
                    for _ in 0..ne {
                        let name = d.str()?;
                        let ino = d.u64()?;
                        entries.push((name, ino));
                    }
                    SnapPayload::Dir { parent, entries }
                }
                2 => SnapPayload::Symlink(d.str()?),
                _ => return None,
            };
            nodes.push(SnapNode {
                ino,
                mode,
                uid,
                gid,
                nlink,
                mtime,
                ctime,
                xattrs,
                acl,
                payload,
            });
        }
        Some(nodes)
    }
}

// ----------------------------------------------------------------------
// Wire encoding
// ----------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new() -> Self {
        Enc(Vec::new())
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.b.len() - self.pos < n {
            return None;
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        self.take(n).map(|s| s.to_vec())
    }
    fn str(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }
    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

fn enc_acl_opt(e: &mut Enc, acl: &Option<Acl>) {
    match acl {
        None => e.u8(0),
        Some(a) => {
            e.u8(1);
            e.u32(a.entries().len() as u32);
            for entry in a.entries() {
                match entry {
                    AclEntry::User(uid, p) => {
                        e.u8(0);
                        e.u32(uid.0);
                        e.u8(*p);
                    }
                    AclEntry::Group(gid, p) => {
                        e.u8(1);
                        e.u32(gid.0);
                        e.u8(*p);
                    }
                    AclEntry::Mask(p) => {
                        e.u8(2);
                        e.u32(0);
                        e.u8(*p);
                    }
                }
            }
        }
    }
}

fn dec_acl_opt(d: &mut Dec) -> Option<Option<Acl>> {
    match d.u8()? {
        0 => Some(None),
        1 => {
            let n = d.u32()? as usize;
            let mut acl = Acl::new();
            for _ in 0..n {
                let tag = d.u8()?;
                let id = d.u32()?;
                let perms = d.u8()?;
                match tag {
                    0 => acl.set_user(Uid(id), perms),
                    1 => acl.set_group(Gid(id), perms),
                    2 => acl.set_mask(perms),
                    _ => return None,
                }
            }
            Some(Some(acl))
        }
        _ => None,
    }
}

fn encode_record(rec: &Record) -> Vec<u8> {
    let mut e = Enc::new();
    match rec {
        Record::Mkdir {
            parent,
            name,
            ino,
            mode,
            uid,
            gid,
            tick,
        } => {
            e.u8(K_MKDIR);
            e.u64(parent.0);
            e.str(name);
            e.u64(ino.0);
            e.u16(mode.0);
            e.u32(uid.0);
            e.u32(gid.0);
            e.u64(tick.0);
        }
        Record::Create {
            parent,
            name,
            ino,
            uid,
            gid,
            data,
            tick,
        } => {
            e.u8(K_CREATE);
            e.u64(parent.0);
            e.str(name);
            e.u64(ino.0);
            e.u32(uid.0);
            e.u32(gid.0);
            e.bytes(data);
            e.u64(tick.0);
        }
        Record::Symlink {
            parent,
            name,
            ino,
            target,
            uid,
            gid,
            tick,
        } => {
            e.u8(K_SYMLINK);
            e.u64(parent.0);
            e.str(name);
            e.u64(ino.0);
            e.str(target);
            e.u32(uid.0);
            e.u32(gid.0);
            e.u64(tick.0);
        }
        Record::Link {
            parent,
            name,
            ino,
            tick,
        } => {
            e.u8(K_LINK);
            e.u64(parent.0);
            e.str(name);
            e.u64(ino.0);
            e.u64(tick.0);
        }
        Record::Unlink { parent, name, tick } => {
            e.u8(K_UNLINK);
            e.u64(parent.0);
            e.str(name);
            e.u64(tick.0);
        }
        Record::Rmdir { parent, name, tick } => {
            e.u8(K_RMDIR);
            e.u64(parent.0);
            e.str(name);
            e.u64(tick.0);
        }
        Record::RmTree { parent, name, tick } => {
            e.u8(K_RMTREE);
            e.u64(parent.0);
            e.str(name);
            e.u64(tick.0);
        }
        Record::Rename {
            from_parent,
            from_name,
            to_parent,
            to_name,
            tick,
        } => {
            e.u8(K_RENAME);
            e.u64(from_parent.0);
            e.str(from_name);
            e.u64(to_parent.0);
            e.str(to_name);
            e.u64(tick.0);
        }
        Record::Write {
            ino,
            offset,
            data,
            tick,
        } => {
            e.u8(K_WRITE);
            e.u64(ino.0);
            e.u64(*offset);
            e.bytes(data);
            e.u64(tick.0);
        }
        Record::SetContent { ino, data, tick } => {
            e.u8(K_SETCONTENT);
            e.u64(ino.0);
            e.bytes(data);
            e.u64(tick.0);
        }
        Record::Truncate { ino, len, tick } => {
            e.u8(K_TRUNCATE);
            e.u64(ino.0);
            e.u64(*len);
            e.u64(tick.0);
        }
        Record::SetMode { ino, mode, tick } => {
            e.u8(K_SETMODE);
            e.u64(ino.0);
            e.u16(mode.0);
            e.u64(tick.0);
        }
        Record::SetOwner {
            ino,
            uid,
            gid,
            tick,
        } => {
            e.u8(K_SETOWNER);
            e.u64(ino.0);
            e.u32(uid.0);
            e.u32(gid.0);
            e.u64(tick.0);
        }
        Record::SetAcl { ino, acl, tick } => {
            e.u8(K_SETACL);
            e.u64(ino.0);
            enc_acl_opt(&mut e, acl);
            e.u64(tick.0);
        }
        Record::SetXattr {
            ino,
            name,
            value,
            tick,
        } => {
            e.u8(K_SETXATTR);
            e.u64(ino.0);
            e.str(name);
            e.bytes(value);
            e.u64(tick.0);
        }
        Record::RemoveXattr { ino, name, tick } => {
            e.u8(K_REMOVEXATTR);
            e.u64(ino.0);
            e.str(name);
            e.u64(tick.0);
        }
        Record::Commit(subs) => {
            e.u8(K_COMMIT);
            e.u32(subs.len() as u32);
            for s in subs {
                e.bytes(&encode_record(s));
            }
        }
        Record::Snapshot(s) => {
            e.u8(K_SNAPSHOT);
            e.u64(s.clock);
            e.u64(s.next_ino);
            e.u64(s.next_fd);
            let body = s.encode_body();
            e.0.extend_from_slice(&body);
        }
    }
    e.0
}

fn decode_record(payload: &[u8]) -> Option<Record> {
    let mut d = Dec::new(payload);
    let rec = match d.u8()? {
        K_MKDIR => Record::Mkdir {
            parent: Ino(d.u64()?),
            name: d.str()?,
            ino: Ino(d.u64()?),
            mode: Mode(d.u16()?),
            uid: Uid(d.u32()?),
            gid: Gid(d.u32()?),
            tick: Timestamp(d.u64()?),
        },
        K_CREATE => Record::Create {
            parent: Ino(d.u64()?),
            name: d.str()?,
            ino: Ino(d.u64()?),
            uid: Uid(d.u32()?),
            gid: Gid(d.u32()?),
            data: d.bytes()?,
            tick: Timestamp(d.u64()?),
        },
        K_SYMLINK => Record::Symlink {
            parent: Ino(d.u64()?),
            name: d.str()?,
            ino: Ino(d.u64()?),
            target: d.str()?,
            uid: Uid(d.u32()?),
            gid: Gid(d.u32()?),
            tick: Timestamp(d.u64()?),
        },
        K_LINK => Record::Link {
            parent: Ino(d.u64()?),
            name: d.str()?,
            ino: Ino(d.u64()?),
            tick: Timestamp(d.u64()?),
        },
        K_UNLINK => Record::Unlink {
            parent: Ino(d.u64()?),
            name: d.str()?,
            tick: Timestamp(d.u64()?),
        },
        K_RMDIR => Record::Rmdir {
            parent: Ino(d.u64()?),
            name: d.str()?,
            tick: Timestamp(d.u64()?),
        },
        K_RMTREE => Record::RmTree {
            parent: Ino(d.u64()?),
            name: d.str()?,
            tick: Timestamp(d.u64()?),
        },
        K_RENAME => Record::Rename {
            from_parent: Ino(d.u64()?),
            from_name: d.str()?,
            to_parent: Ino(d.u64()?),
            to_name: d.str()?,
            tick: Timestamp(d.u64()?),
        },
        K_WRITE => Record::Write {
            ino: Ino(d.u64()?),
            offset: d.u64()?,
            data: d.bytes()?,
            tick: Timestamp(d.u64()?),
        },
        K_SETCONTENT => Record::SetContent {
            ino: Ino(d.u64()?),
            data: d.bytes()?,
            tick: Timestamp(d.u64()?),
        },
        K_TRUNCATE => Record::Truncate {
            ino: Ino(d.u64()?),
            len: d.u64()?,
            tick: Timestamp(d.u64()?),
        },
        K_SETMODE => Record::SetMode {
            ino: Ino(d.u64()?),
            mode: Mode(d.u16()?),
            tick: Timestamp(d.u64()?),
        },
        K_SETOWNER => Record::SetOwner {
            ino: Ino(d.u64()?),
            uid: Uid(d.u32()?),
            gid: Gid(d.u32()?),
            tick: Timestamp(d.u64()?),
        },
        K_SETACL => Record::SetAcl {
            ino: Ino(d.u64()?),
            acl: dec_acl_opt(&mut d)?,
            tick: Timestamp(d.u64()?),
        },
        K_SETXATTR => Record::SetXattr {
            ino: Ino(d.u64()?),
            name: d.str()?,
            value: d.bytes()?,
            tick: Timestamp(d.u64()?),
        },
        K_REMOVEXATTR => Record::RemoveXattr {
            ino: Ino(d.u64()?),
            name: d.str()?,
            tick: Timestamp(d.u64()?),
        },
        K_COMMIT => {
            let count = d.u32()? as usize;
            let mut subs = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let body = d.bytes()?;
                let sub = decode_record(&body)?;
                if matches!(sub, Record::Commit(_) | Record::Snapshot(_)) {
                    return None; // no nesting, no snapshots inside a txn
                }
                subs.push(sub);
            }
            Record::Commit(subs)
        }
        K_SNAPSHOT => {
            let clock = d.u64()?;
            let next_ino = d.u64()?;
            let next_fd = d.u64()?;
            let nodes = SnapshotData::decode_body(&mut d)?;
            Record::Snapshot(Box::new(SnapshotData {
                clock,
                next_ino,
                next_fd,
                nodes,
            }))
        }
        _ => return None,
    };
    if !d.done() {
        return None; // trailing garbage inside a checksummed frame
    }
    Some(rec)
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.push(FRAME_MAGIC);
    out.push(JOURNAL_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv32(payload).to_le_bytes());
    out
}

fn fnv32(b: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &x in b {
        h ^= x as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn fnv64(b: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in b {
        h ^= x as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ----------------------------------------------------------------------
// Frame scanning (public: the torture suite truncates at these boundaries)
// ----------------------------------------------------------------------

/// One complete, checksum-valid frame found by [`scan_frames`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Byte offset of the frame's first byte.
    pub start: usize,
    /// Byte offset one past the frame's last byte — a valid truncation
    /// boundary.
    pub end: usize,
    /// True when this frame holds a snapshot rather than a mutation record.
    pub is_snapshot: bool,
}

/// Walk `bytes` from the start, returning every complete frame in order.
/// Scanning stops at the first incomplete or checksum-invalid frame — the
/// crash-truncated tail — so a partial record can never be surfaced.
pub fn scan_frames(bytes: &[u8]) -> Vec<FrameInfo> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while bytes.len().saturating_sub(pos) >= FRAME_OVERHEAD {
        if bytes[pos] != FRAME_MAGIC || bytes[pos + 1] != JOURNAL_VERSION {
            break;
        }
        let len = u32::from_le_bytes([
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
            bytes[pos + 5],
        ]) as usize;
        let end = pos + 6 + len + 4;
        if end > bytes.len() || len == 0 {
            break;
        }
        let payload = &bytes[pos + 6..pos + 6 + len];
        let crc = u32::from_le_bytes([
            bytes[pos + 6 + len],
            bytes[pos + 7 + len],
            bytes[pos + 8 + len],
            bytes[pos + 9 + len],
        ]);
        if fnv32(payload) != crc {
            break;
        }
        out.push(FrameInfo {
            start: pos,
            end,
            is_snapshot: payload[0] == K_SNAPSHOT,
        });
        pos = end;
    }
    out
}

// ----------------------------------------------------------------------
// The journal proper
// ----------------------------------------------------------------------

/// The append-only log plus its counters. One per [`Filesystem`]; disabled
/// by default (a relaxed atomic load per mutation). All counters are exposed
/// at `<proc>/vfs/journal/*` when a proc mount is active.
#[derive(Debug, Default)]
pub(crate) struct Journal {
    log: Mutex<Vec<u8>>,
    enabled: AtomicBool,
    records: AtomicU64,
    snapshots: AtomicU64,
    snapshot_bytes: AtomicU64,
    compacted_bytes: AtomicU64,
    replayed: AtomicU64,
    replay_skipped: AtomicU64,
    replay_syscalls: AtomicU64,
    snapshot_every: AtomicU64,
    since_snapshot: AtomicU64,
}

impl Journal {
    pub(crate) fn new() -> Journal {
        Journal::default()
    }

    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn append_record(&self, rec: &Record) {
        let f = frame(&encode_record(rec));
        let mut log = self.log.lock();
        log.extend_from_slice(&f);
        self.records.fetch_add(1, Ordering::Relaxed);
        self.since_snapshot.fetch_add(1, Ordering::Relaxed);
    }

    fn append_snapshot(&self, snap: &SnapshotData) {
        let f = frame(&encode_record(&Record::Snapshot(Box::new(snap.clone()))));
        let mut log = self.log.lock();
        log.extend_from_slice(&f);
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.snapshot_bytes.store(f.len() as u64, Ordering::Relaxed);
        self.since_snapshot.store(0, Ordering::Relaxed);
    }

    /// Drop every byte before the last complete snapshot frame. Safe at any
    /// time: by the compaction invariant those bytes are covered by that
    /// snapshot. Returns the bytes dropped.
    fn compact(&self) -> u64 {
        let mut log = self.log.lock();
        let frames = scan_frames(&log);
        let Some(last_snap) = frames.iter().rev().find(|f| f.is_snapshot) else {
            return 0;
        };
        let cut = last_snap.start;
        if cut == 0 {
            return 0;
        }
        log.drain(..cut);
        self.compacted_bytes
            .fetch_add(cut as u64, Ordering::Relaxed);
        cut as u64
    }

    fn bytes(&self) -> Vec<u8> {
        self.log.lock().clone()
    }

    fn len(&self) -> u64 {
        self.log.lock().len() as u64
    }

    /// Point-in-time counter snapshot (backs both [`JournalStats`] and the
    /// proc files, which capture the `Arc<Journal>` directly).
    pub(crate) fn stats(&self) -> JournalStats {
        JournalStats {
            enabled: self.is_enabled(),
            records: self.records.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            bytes: self.len(),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            compacted_bytes: self.compacted_bytes.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            replay_skipped: self.replay_skipped.load(Ordering::Relaxed),
            replay_syscalls: self.replay_syscalls.load(Ordering::Relaxed),
            snapshot_every: self.snapshot_every.load(Ordering::Relaxed),
            since_snapshot: self.since_snapshot.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time figures for the journal, also exposed as proc files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Whether mutations are currently being journaled.
    pub enabled: bool,
    /// Mutation records appended since creation (snapshots excluded).
    pub records: u64,
    /// Snapshot frames appended.
    pub snapshots: u64,
    /// Current size of the log in bytes.
    pub bytes: u64,
    /// Size of the most recent snapshot frame in bytes.
    pub snapshot_bytes: u64,
    /// Bytes dropped by compaction so far.
    pub compacted_bytes: u64,
    /// Records applied into *this* filesystem by `restore_from_journal`.
    pub replayed: u64,
    /// Records skipped during replay (targets dead at the crash boundary —
    /// unlinked-but-open orphans).
    pub replay_skipped: u64,
    /// Syscalls charged for the replay (one per applied record).
    pub replay_syscalls: u64,
    /// Auto-snapshot cadence in records (0 = manual snapshots only).
    pub snapshot_every: u64,
    /// Records appended since the last snapshot.
    pub since_snapshot: u64,
}

/// Outcome of [`Filesystem::restore_from_journal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Whether a complete snapshot was found and installed.
    pub snapshot_used: bool,
    /// Complete mutation records found after the chosen snapshot.
    pub records_seen: u64,
    /// Records actually applied.
    pub records_replayed: u64,
    /// Records skipped (orphan targets).
    pub records_skipped: u64,
    /// Syscalls charged for the replay (one per applied record).
    pub replay_syscalls: u64,
    /// Bytes of complete frames consumed.
    pub bytes_scanned: u64,
    /// Trailing bytes dropped as a torn/corrupt tail.
    pub tail_dropped_bytes: u64,
}

// ----------------------------------------------------------------------
// Filesystem integration
// ----------------------------------------------------------------------

impl Filesystem {
    /// Start journaling: capture an anchor snapshot of the current tree and
    /// log every subsequent mutation. Taken under the global lock, so the
    /// snapshot and the enable flag flip at one linearization point — no
    /// mutation can fall between them.
    pub fn enable_journal(&self) {
        let set = self.tables.lock_all();
        let snap = self.capture_snapshot(&set);
        self.journal.append_snapshot(&snap);
        self.journal.enabled.store(true, Ordering::Relaxed);
        drop(set);
    }

    /// Whether mutations are currently journaled.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_enabled()
    }

    /// Append a snapshot frame capturing the whole tree right now. The
    /// global lock holds every mutator out, so no record can interleave
    /// between the capture and its append — replay can never double-apply.
    pub fn journal_snapshot(&self) {
        if !self.journal.is_enabled() {
            return;
        }
        let set = self.tables.lock_all();
        let snap = self.capture_snapshot(&set);
        self.journal.append_snapshot(&snap);
        drop(set);
    }

    /// Set the auto-snapshot cadence: a snapshot is taken by
    /// [`Filesystem::journal_maybe_snapshot`] once at least `every` records
    /// accumulated since the last one. `0` disables automatic snapshots.
    pub fn set_journal_snapshot_every(&self, every: u64) {
        self.journal.snapshot_every.store(every, Ordering::Relaxed);
    }

    /// Take a snapshot if the cadence says one is due. Called from safe
    /// points that hold no vfs locks — yanc-init's scheduler tick drives it,
    /// playing the role of the kernel's periodic flush daemon. Returns
    /// whether a snapshot was taken.
    pub fn journal_maybe_snapshot(&self) -> bool {
        if !self.journal.is_enabled() {
            return false;
        }
        let every = self.journal.snapshot_every.load(Ordering::Relaxed);
        if every == 0 || self.journal.since_snapshot.load(Ordering::Relaxed) < every {
            return false;
        }
        self.journal_snapshot();
        true
    }

    /// Drop all log bytes preceding the last complete snapshot (droppable
    /// iff covered by a snapshot). Returns the bytes reclaimed.
    pub fn journal_compact(&self) -> u64 {
        self.journal.compact()
    }

    /// A copy of the raw log — the "disk image" a crash would leave behind.
    /// Feed it (or any prefix of it) to [`Filesystem::restore_from_journal`].
    pub fn journal_bytes(&self) -> Vec<u8> {
        self.journal.bytes()
    }

    /// Current journal figures (same values as `<proc>/vfs/journal/*`).
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// Canonical digest of the reachable tree (proc subtrees excluded):
    /// FNV-1a over the snapshot body encoding. Two filesystems with equal
    /// digests are byte-identical in inodes, entries, permissions, owners,
    /// ACLs, xattrs, timestamps and content. This is the cross-fs equality
    /// check the linearizability and journal suites share.
    pub fn tree_digest(&self) -> u64 {
        let set = self.tables.lock_all();
        let snap = self.capture_snapshot(&set);
        drop(set);
        fnv64(&snap.encode_body())
    }

    /// Content-only digest of the reachable tree (proc subtrees excluded):
    /// a canonical path-ordered walk over names, modes, owners, xattrs,
    /// ACLs, link/file/dir payloads — but **not** inode numbers, link
    /// counts or `mtime`/`ctime` ticks. Those come from global allocation
    /// counters, so they encode the *schedule* that built the tree, not
    /// what the tree says. Two trees built by different interleavings of
    /// the same logical writes (e.g. different pump worker counts)
    /// compare equal here; [`Filesystem::tree_digest`] additionally pins
    /// the schedule and is the right check for exact-replay claims.
    pub fn content_digest(&self) -> u64 {
        let set = self.tables.lock_all();
        let snap = self.capture_snapshot(&set);
        drop(set);
        let by_ino: std::collections::HashMap<u64, &SnapNode> =
            snap.nodes.iter().map(|n| (n.ino, n)).collect();
        fn walk(e: &mut Enc, by_ino: &std::collections::HashMap<u64, &SnapNode>, ino: u64) {
            let n = match by_ino.get(&ino) {
                Some(n) => n,
                None => return,
            };
            e.u16(n.mode.0);
            e.u32(n.uid.0);
            e.u32(n.gid.0);
            e.u32(n.xattrs.len() as u32);
            for (k, v) in &n.xattrs {
                e.str(k);
                e.bytes(v);
            }
            enc_acl_opt(e, &n.acl);
            match &n.payload {
                SnapPayload::File(d) => {
                    e.u8(0);
                    e.bytes(d);
                }
                SnapPayload::Dir { entries, .. } => {
                    e.u8(1);
                    let mut entries: Vec<&(String, u64)> = entries.iter().collect();
                    entries.sort_by(|a, b| a.0.cmp(&b.0));
                    e.u32(entries.len() as u32);
                    for (name, child) in entries {
                        e.str(name);
                        walk(e, by_ino, *child);
                    }
                }
                SnapPayload::Symlink(t) => {
                    e.u8(2);
                    e.str(t);
                }
            }
        }
        let mut e = Enc::new();
        walk(&mut e, &by_ino, ROOT_INO.0);
        fnv64(&e.0)
    }

    /// Rebuild a filesystem from journal `bytes`: install the last complete
    /// snapshot (if any), then replay the record suffix by direct state
    /// application — no hooks run, no events fire, and each applied record
    /// is charged exactly one syscall (the deterministic warm-restart cost).
    /// A torn tail is dropped; the fd table starts empty with the allocator
    /// watermarks past their pre-crash values, so stale descriptors fail
    /// `EBADF` cleanly. The returned filesystem has journaling *disabled*;
    /// call [`Filesystem::enable_journal`] to re-anchor it.
    pub fn restore_from_journal(
        bytes: &[u8],
        limits: Limits,
        shards: usize,
        dcache: bool,
    ) -> (Filesystem, ReplayReport) {
        let fs = Filesystem::builder()
            .limits(limits)
            .shards(shards)
            .dcache(dcache)
            .build();
        let frames = scan_frames(bytes);
        let mut report = ReplayReport {
            bytes_scanned: frames.last().map(|f| f.end as u64).unwrap_or(0),
            tail_dropped_bytes: bytes.len() as u64
                - frames.last().map(|f| f.end as u64).unwrap_or(0),
            ..Default::default()
        };
        // Decode every complete frame; a frame that fails to decode despite
        // a valid checksum ends the trusted prefix just like a torn tail.
        let mut records: Vec<Record> = Vec::with_capacity(frames.len());
        for f in &frames {
            match decode_record(&bytes[f.start + 6..f.end - 4]) {
                Some(r) => records.push(r),
                None => {
                    report.tail_dropped_bytes += (frames.last().unwrap().end - f.start) as u64;
                    report.bytes_scanned = f.start as u64;
                    break;
                }
            }
        }
        let start = match records
            .iter()
            .rposition(|r| matches!(r, Record::Snapshot(_)))
        {
            Some(i) => {
                if let Record::Snapshot(snap) = &records[i] {
                    fs.install_snapshot(snap);
                    report.snapshot_used = true;
                }
                i + 1
            }
            None => 0,
        };
        for rec in &records[start..] {
            if matches!(rec, Record::Snapshot(_)) {
                continue;
            }
            report.records_seen += 1;
            if fs.apply_record(rec) {
                report.records_replayed += 1;
                match rec {
                    // A transaction is charged per sub-record: the restored
                    // tree paid the same deterministic syscall bill the live
                    // batch did.
                    Record::Commit(subs) => {
                        for s in subs {
                            if let Some(op) = s.op_kind() {
                                fs.count(op, "");
                                report.replay_syscalls += 1;
                            }
                        }
                    }
                    _ => {
                        if let Some(op) = rec.op_kind() {
                            fs.count(op, "");
                            report.replay_syscalls += 1;
                        }
                    }
                }
            } else {
                report.records_skipped += 1;
            }
        }
        fs.journal
            .replayed
            .store(report.records_replayed, Ordering::Relaxed);
        fs.journal
            .replay_skipped
            .store(report.records_skipped, Ordering::Relaxed);
        fs.journal
            .replay_syscalls
            .store(report.replay_syscalls, Ordering::Relaxed);
        (fs, report)
    }

    /// Append one record if journaling is on. Called at mutation commit
    /// points *while the mutation's shard locks are held*, right where
    /// `bump_gen` runs, so the log is a linearization of the tree. Proc
    /// maintenance and proc-covered paths are exempt for the same reason
    /// they are exempt from syscall counting: introspection must not
    /// disturb (or bloat) what it measures, and the proc subtree is derived
    /// state re-created on mount.
    #[inline]
    pub(crate) fn jrnl(&self, path: &str, mk: impl FnOnce() -> Record) {
        if !self.journal.is_enabled() || ProcDepth::active() || self.proc.covers(path) {
            return;
        }
        self.journal.append_record(&mk());
    }

    /// Capture the reachable tree under an already-held global lock.
    fn capture_snapshot(&self, set: &ShardSet) -> SnapshotData {
        let mut nodes: Vec<SnapNode> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Ino, String)> = vec![(ROOT_INO, String::new())];
        while let Some((ino, path)) = stack.pop() {
            if !seen.insert(ino.0) {
                continue; // hard links: capture the inode once
            }
            let Ok(node) = set.inode(ino) else { continue };
            let (nlink, payload) = match &node.kind {
                NodeKind::Dir { entries, parent } => {
                    let mut kept: Vec<(String, u64)> = Vec::new();
                    let mut subdirs = 0u32;
                    for (name, child) in entries {
                        let cpath = format!("{path}/{name}");
                        if self.proc.covers(&cpath) {
                            continue; // derived state; re-created on mount
                        }
                        if set
                            .inode(*child)
                            .map(|c| matches!(c.kind, NodeKind::Dir { .. }))
                            .unwrap_or(false)
                        {
                            subdirs += 1;
                        }
                        kept.push((name.clone(), child.0));
                        stack.push((*child, cpath));
                    }
                    (
                        2 + subdirs,
                        SnapPayload::Dir {
                            parent: parent.0,
                            entries: kept,
                        },
                    )
                }
                NodeKind::File(d) => (node.nlink, SnapPayload::File(d.clone())),
                NodeKind::Symlink(t) => (node.nlink, SnapPayload::Symlink(t.clone())),
            };
            nodes.push(SnapNode {
                ino: ino.0,
                mode: node.mode,
                uid: node.uid,
                gid: node.gid,
                nlink,
                mtime: node.mtime.0,
                ctime: node.ctime.0,
                xattrs: node
                    .xattrs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
                acl: node.acl.clone(),
                payload,
            });
        }
        nodes.sort_by_key(|n| n.ino);
        SnapshotData {
            clock: self.clock.now().0,
            next_ino: self.tables.ino_watermark(),
            next_fd: self.tables.fd_watermark(),
            nodes,
        }
    }

    /// Install a snapshot into this (freshly built) filesystem.
    fn install_snapshot(&self, snap: &SnapshotData) {
        let mut set = self.tables.lock_all();
        for n in &snap.nodes {
            let kind = match &n.payload {
                SnapPayload::File(d) => NodeKind::File(d.clone()),
                SnapPayload::Symlink(t) => NodeKind::Symlink(t.clone()),
                SnapPayload::Dir { parent, entries } => NodeKind::Dir {
                    entries: entries
                        .iter()
                        .map(|(name, ino)| (name.clone(), Ino(*ino)))
                        .collect(),
                    parent: Ino(*parent),
                },
            };
            set.insert_inode(
                Ino(n.ino),
                Inode {
                    kind,
                    mode: n.mode,
                    uid: n.uid,
                    gid: n.gid,
                    nlink: n.nlink,
                    mtime: Timestamp(n.mtime),
                    ctime: Timestamp(n.ctime),
                    xattrs: n.xattrs.iter().cloned().collect(),
                    acl: n.acl.clone(),
                    open_count: 0,
                },
            );
        }
        drop(set);
        self.tables.ensure_ino_floor(snap.next_ino);
        self.tables.ensure_fd_floor(snap.next_fd);
        self.clock.advance_to(Timestamp(snap.clock));
    }

    /// Apply one record by direct state mutation, mirroring exactly what
    /// the original operation did under its shard locks — same field
    /// updates, same link-count dance, same removal decisions (with
    /// `open_count` uniformly zero: orphans died at the crash boundary).
    /// Returns false when the record's target is gone (skipped orphan).
    fn apply_record(&self, rec: &Record) -> bool {
        let mut set = self.tables.lock_all();
        let applied = self.apply_record_locked(&mut set, rec);
        drop(set);
        if applied {
            if let Some(t) = rec_tick(rec) {
                self.clock.advance_to(t);
            }
        }
        applied
    }

    /// [`Self::apply_record`] under an already-held global lock — the shared
    /// body that both replay and live batch application
    /// ([`Filesystem::apply_batch`]) go through, so a batch mutates the tree
    /// exactly the way its records will replay.
    pub(crate) fn apply_record_locked(&self, set: &mut ShardSet, rec: &Record) -> bool {
        match rec {
            Record::Mkdir {
                parent,
                name,
                ino,
                mode,
                uid,
                gid,
                tick,
            } => {
                let Ok(p) = set.inode(*parent) else {
                    return false;
                };
                if !matches!(p.kind, NodeKind::Dir { .. }) {
                    return false;
                }
                set.insert_inode(
                    *ino,
                    Inode {
                        kind: NodeKind::Dir {
                            entries: BTreeMap::new(),
                            parent: *parent,
                        },
                        mode: *mode,
                        uid: *uid,
                        gid: *gid,
                        nlink: 2,
                        mtime: *tick,
                        ctime: *tick,
                        xattrs: BTreeMap::new(),
                        acl: None,
                        open_count: 0,
                    },
                );
                if let Ok(p) = set.inode_mut(*parent) {
                    if let Ok(e) = p.dir_entries_mut() {
                        e.insert(name.clone(), *ino);
                    }
                    p.nlink += 1;
                    p.mtime = *tick;
                }
                self.tables.ensure_ino_floor(ino.0 + 1);
                true
            }
            Record::Create {
                parent,
                name,
                ino,
                uid,
                gid,
                data,
                tick,
            } => {
                let Ok(p) = set.inode(*parent) else {
                    return false;
                };
                if !matches!(p.kind, NodeKind::Dir { .. }) {
                    return false;
                }
                set.insert_inode(
                    *ino,
                    Inode {
                        kind: NodeKind::File(data.clone()),
                        mode: Mode::FILE_DEFAULT,
                        uid: *uid,
                        gid: *gid,
                        nlink: 1,
                        mtime: *tick,
                        ctime: *tick,
                        xattrs: BTreeMap::new(),
                        acl: None,
                        open_count: 0,
                    },
                );
                if let Ok(p) = set.inode_mut(*parent) {
                    if let Ok(e) = p.dir_entries_mut() {
                        e.insert(name.clone(), *ino);
                    }
                    p.mtime = *tick;
                }
                self.tables.ensure_ino_floor(ino.0 + 1);
                true
            }
            Record::Symlink {
                parent,
                name,
                ino,
                target,
                uid,
                gid,
                tick,
            } => {
                let Ok(p) = set.inode(*parent) else {
                    return false;
                };
                if !matches!(p.kind, NodeKind::Dir { .. }) {
                    return false;
                }
                set.insert_inode(
                    *ino,
                    Inode {
                        kind: NodeKind::Symlink(target.clone()),
                        mode: Mode::SYMLINK,
                        uid: *uid,
                        gid: *gid,
                        nlink: 1,
                        mtime: *tick,
                        ctime: *tick,
                        xattrs: BTreeMap::new(),
                        acl: None,
                        open_count: 0,
                    },
                );
                if let Ok(p) = set.inode_mut(*parent) {
                    if let Ok(e) = p.dir_entries_mut() {
                        e.insert(name.clone(), *ino);
                    }
                    p.mtime = *tick;
                }
                self.tables.ensure_ino_floor(ino.0 + 1);
                true
            }
            Record::Link {
                parent,
                name,
                ino,
                tick,
            } => {
                if set.inode(*ino).is_err() {
                    return false;
                }
                {
                    let Ok(node) = set.inode_mut(*ino) else {
                        return false;
                    };
                    node.nlink += 1;
                    node.ctime = *tick;
                }
                if let Ok(p) = set.inode_mut(*parent) {
                    if let Ok(e) = p.dir_entries_mut() {
                        e.insert(name.clone(), *ino);
                    }
                    p.mtime = *tick;
                }
                true
            }
            Record::Unlink { parent, name, tick } => {
                let ino = match set
                    .inode(*parent)
                    .ok()
                    .and_then(|p| p.dir_entries().ok())
                    .and_then(|e| e.get(name).copied())
                {
                    Some(i) => i,
                    None => return false,
                };
                if let Ok(p) = set.inode_mut(*parent) {
                    if let Ok(e) = p.dir_entries_mut() {
                        e.remove(name);
                    }
                    p.mtime = *tick;
                }
                if let Ok(node) = set.inode_mut(ino) {
                    node.nlink -= 1;
                    node.ctime = *tick;
                    if node.nlink == 0 {
                        set.remove_inode(ino);
                    }
                }
                true
            }
            Record::Rmdir { parent, name, tick } => {
                let ino = match set
                    .inode(*parent)
                    .ok()
                    .and_then(|p| p.dir_entries().ok())
                    .and_then(|e| e.get(name).copied())
                {
                    Some(i) => i,
                    None => return false,
                };
                if let Ok(p) = set.inode_mut(*parent) {
                    if let Ok(e) = p.dir_entries_mut() {
                        e.remove(name);
                    }
                    p.nlink -= 1;
                    p.mtime = *tick;
                }
                set.remove_inode(ino);
                true
            }
            Record::RmTree { parent, name, tick } => {
                let ino = match set
                    .inode(*parent)
                    .ok()
                    .and_then(|p| p.dir_entries().ok())
                    .and_then(|e| e.get(name).copied())
                {
                    Some(i) => i,
                    None => return false,
                };
                Self::replay_remove_tree(set, ino);
                if let Ok(p) = set.inode_mut(*parent) {
                    if let Ok(e) = p.dir_entries_mut() {
                        e.remove(name);
                    }
                    p.nlink -= 1;
                    p.mtime = *tick;
                }
                set.remove_inode(ino);
                true
            }
            Record::Rename {
                from_parent,
                from_name,
                to_parent,
                to_name,
                tick,
            } => {
                let src = match set
                    .inode(*from_parent)
                    .ok()
                    .and_then(|p| p.dir_entries().ok())
                    .and_then(|e| e.get(from_name).copied())
                {
                    Some(i) => i,
                    None => return false,
                };
                let dst = set
                    .inode(*to_parent)
                    .ok()
                    .and_then(|p| p.dir_entries().ok())
                    .and_then(|e| e.get(to_name).copied());
                let src_is_dir = set
                    .inode(src)
                    .map(|n| matches!(n.kind, NodeKind::Dir { .. }))
                    .unwrap_or(false);
                if let Some(dst) = dst {
                    let dst_is_dir = set
                        .inode(dst)
                        .map(|n| matches!(n.kind, NodeKind::Dir { .. }))
                        .unwrap_or(false);
                    if dst_is_dir {
                        if let Ok(pt) = set.inode_mut(*to_parent) {
                            pt.nlink -= 1;
                        }
                        set.remove_inode(dst);
                    } else if let Ok(node) = set.inode_mut(dst) {
                        node.nlink -= 1;
                        if node.nlink == 0 {
                            set.remove_inode(dst);
                        }
                    }
                }
                if let Ok(pf) = set.inode_mut(*from_parent) {
                    if let Ok(e) = pf.dir_entries_mut() {
                        e.remove(from_name);
                    }
                    pf.mtime = *tick;
                }
                if let Ok(pt) = set.inode_mut(*to_parent) {
                    if let Ok(e) = pt.dir_entries_mut() {
                        e.insert(to_name.clone(), src);
                    }
                    pt.mtime = *tick;
                }
                if src_is_dir && from_parent != to_parent {
                    if let Ok(pf) = set.inode_mut(*from_parent) {
                        pf.nlink -= 1;
                    }
                    if let Ok(pt) = set.inode_mut(*to_parent) {
                        pt.nlink += 1;
                    }
                    if let Ok(node) = set.inode_mut(src) {
                        if let NodeKind::Dir { parent, .. } = &mut node.kind {
                            *parent = *to_parent;
                        }
                    }
                }
                if let Ok(node) = set.inode_mut(src) {
                    node.ctime = *tick;
                }
                true
            }
            Record::Write {
                ino,
                offset,
                data,
                tick,
            } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                match &mut node.kind {
                    NodeKind::File(d) => {
                        let end = *offset as usize + data.len();
                        if d.len() < end {
                            d.resize(end, 0);
                        }
                        d[*offset as usize..end].copy_from_slice(data);
                        node.mtime = *tick;
                        true
                    }
                    _ => false,
                }
            }
            Record::SetContent { ino, data, tick } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                match &mut node.kind {
                    NodeKind::File(d) => {
                        *d = data.clone();
                        node.mtime = *tick;
                        true
                    }
                    _ => false,
                }
            }
            Record::Truncate { ino, len, tick } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                match &mut node.kind {
                    NodeKind::File(d) => {
                        d.resize(*len as usize, 0);
                        node.mtime = *tick;
                        true
                    }
                    _ => false,
                }
            }
            Record::SetMode { ino, mode, tick } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                node.mode = *mode;
                node.ctime = *tick;
                true
            }
            Record::SetOwner {
                ino,
                uid,
                gid,
                tick,
            } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                node.uid = *uid;
                node.gid = *gid;
                node.ctime = *tick;
                true
            }
            Record::SetAcl { ino, acl, tick } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                node.acl = acl.clone();
                node.ctime = *tick;
                true
            }
            Record::SetXattr {
                ino,
                name,
                value,
                tick,
            } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                node.xattrs.insert(name.clone(), value.clone());
                node.ctime = *tick;
                true
            }
            Record::RemoveXattr { ino, name, tick } => {
                let Ok(node) = set.inode_mut(*ino) else {
                    return false;
                };
                node.xattrs.remove(name);
                node.ctime = *tick;
                true
            }
            Record::Commit(subs) => {
                // All-or-nothing is a property of the *frame*: a Commit that
                // made it into the log is applied in full (decode already
                // rejected nesting, so recursion is one level deep).
                for s in subs {
                    self.apply_record_locked(set, s);
                }
                true
            }
            Record::Snapshot(_) => false, // handled by the restore driver
        }
    }

    /// Replay-side mirror of `remove_tree`: bottom-up subtree removal with
    /// the same link-count updates (open handles uniformly absent).
    fn replay_remove_tree(set: &mut ShardSet, ino: Ino) {
        let children: Vec<(String, Ino)> = set
            .inode(ino)
            .ok()
            .and_then(|n| n.dir_entries().ok())
            .map(|e| e.iter().map(|(n, i)| (n.clone(), *i)).collect())
            .unwrap_or_default();
        for (name, child) in children {
            let is_dir = set
                .inode(child)
                .map(|n| matches!(n.kind, NodeKind::Dir { .. }))
                .unwrap_or(false);
            if is_dir {
                Self::replay_remove_tree(set, child);
                set.remove_inode(child);
                if let Ok(node) = set.inode_mut(ino) {
                    node.nlink -= 1;
                    if let Ok(e) = node.dir_entries_mut() {
                        e.remove(&name);
                    }
                }
            } else {
                let keep = match set.inode_mut(child) {
                    Ok(cn) => {
                        cn.nlink = cn.nlink.saturating_sub(1);
                        cn.nlink > 0
                    }
                    Err(_) => false,
                };
                if !keep {
                    set.remove_inode(child);
                }
                if let Ok(node) = set.inode_mut(ino) {
                    if let Ok(e) = node.dir_entries_mut() {
                        e.remove(&name);
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Atomic batches (overlay copy-up chains and view commits)
// ----------------------------------------------------------------------

/// One path-level step of an atomic batch (see [`Filesystem::apply_batch`]).
/// Paths are underlying-fs absolute paths. Resolution inside a batch is
/// *lexical* — no symlink following, no `..` — because batches are
/// machine-generated plans over trees the planner has just walked.
#[derive(Debug, Clone)]
pub(crate) enum BatchOp {
    /// Create a directory (no-op when an identical-kind entry exists).
    /// Ownership and mode come from the plan, not the caller: copy-up
    /// mirrors the lower directory's identity, as kernel overlayfs does.
    Mkdir {
        path: VPath,
        mode: Mode,
        uid: Uid,
        gid: Gid,
        xattrs: Vec<(String, Vec<u8>)>,
    },
    /// Create or atomically replace a regular file. Replacement is
    /// unlink + create — rename-commit semantics: the replaced path gets a
    /// fresh inode, old hard links and open descriptors keep the old one.
    PutFile {
        path: VPath,
        data: Vec<u8>,
        mode: Mode,
        uid: Uid,
        gid: Gid,
        xattrs: Vec<(String, Vec<u8>)>,
        acl: Option<Acl>,
    },
    /// Create a symlink (the path must be absent; plans emit a
    /// [`BatchOp::Remove`] first when replacing).
    PutSymlink {
        path: VPath,
        target: String,
        uid: Uid,
        gid: Gid,
    },
    /// Remove a file, symlink or whole subtree (no-op when absent).
    Remove { path: VPath },
}

impl BatchOp {
    fn path(&self) -> &VPath {
        match self {
            BatchOp::Mkdir { path, .. }
            | BatchOp::PutFile { path, .. }
            | BatchOp::PutSymlink { path, .. }
            | BatchOp::Remove { path } => path,
        }
    }
}

/// Outcome of one applied batch.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchReport {
    /// Journal sub-records the batch produced.
    pub(crate) records: usize,
    /// File-content bytes written by `PutFile` steps.
    pub(crate) bytes: u64,
}

/// How a path looks mid-validation: present in the real tree, freshly
/// created (or removed) by an earlier step of the same batch, or absent.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BatchNode {
    Real(Ino, bool),
    Fresh(bool),
    Absent,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VirtKind {
    Dir,
    NonDir,
    Removed,
}

/// Lexical lookup in the locked tree: walk directory entries from the root,
/// no symlink expansion, `..` rejected.
fn batch_lookup(set: &ShardSet, path: &VPath) -> Option<(Ino, bool)> {
    let mut cur = ROOT_INO;
    for comp in path.components() {
        if comp == ".." {
            return None;
        }
        let node = set.inode(cur).ok()?;
        cur = *node.dir_entries().ok()?.get(comp)?;
    }
    let is_dir = set
        .inode(cur)
        .ok()
        .map(|n| matches!(n.kind, NodeKind::Dir { .. }))?;
    Some((cur, is_dir))
}

/// Lookup through the batch's virtual view: the longest pending-change
/// prefix (component-boundary aware) shadows the real tree, so a step sees
/// exactly the tree that earlier steps of its own batch will have built.
fn batch_stat(set: &ShardSet, virt: &HashMap<String, VirtKind>, path: &VPath) -> BatchNode {
    let s = path.as_str();
    let mut best: Option<(&str, VirtKind)> = None;
    for (p, k) in virt {
        let covered = s == p.as_str()
            || (s.starts_with(p.as_str()) && s.as_bytes().get(p.len()) == Some(&b'/'));
        if covered && best.map(|(b, _)| p.len() > b.len()).unwrap_or(true) {
            best = Some((p, *k));
        }
    }
    match best {
        Some((_, VirtKind::Removed)) => BatchNode::Absent,
        Some((p, k)) if p == s => BatchNode::Fresh(k == VirtKind::Dir),
        // A fresh directory has only batch-made children, and those would
        // have matched as a longer prefix; anything else under it is absent.
        Some((_, _)) => BatchNode::Absent,
        None => match batch_lookup(set, path) {
            Some((ino, d)) => BatchNode::Real(ino, d),
            None => BatchNode::Absent,
        },
    }
}

impl Filesystem {
    /// Apply a plan of path-level steps as **one transaction**: everything
    /// is validated first (permissions, conflicts — any failure leaves the
    /// tree untouched), then applied under a single `lock_all` acquisition
    /// — the linearization point — through the same
    /// [`Filesystem::apply_record_locked`] path replay uses, and journaled
    /// as a single [`Record::Commit`] frame. A crash therefore replays the
    /// batch fully-applied or fully-absent, never partially.
    ///
    /// This is the engine under overlay copy-up and atomic view commit.
    /// Each step is charged one syscall token against the calling uid
    /// *before* application (`EAGAIN` aborts the whole batch), and each
    /// produced record is tallied in the syscall counters, so copy-up
    /// costs land on the writer.
    ///
    /// `enforce` controls the write-permission check on real parent
    /// directories. View commit passes `true` — the batch *is* the
    /// authority boundary between a tenant and the base tree. Copy-up and
    /// whiteout plans pass `false`: they mirror objects the caller already
    /// reached through the overlay, and the overlay checked the merged
    /// directory's permissions before planning (the upper tree's ancestor
    /// chain mirrors lower ownership, which would otherwise wrongly deny
    /// e.g. writing a caller-writable file inside a root-owned directory).
    pub(crate) fn apply_batch(
        &self,
        ops: &[BatchOp],
        creds: &Credentials,
        enforce: bool,
    ) -> VfsResult<BatchReport> {
        let mut set = self.tables.lock_all();

        // -------- validate: pure pass, nothing mutated on any error -----
        let mut virt: HashMap<String, VirtKind> = HashMap::new();
        for op in ops {
            let path = op.path();
            let name = match path.file_name() {
                Some(n) if valid_name(n) => n,
                _ => return err(Errno::EINVAL, path.as_str()),
            };
            let _ = name;
            let target = batch_stat(&set, &virt, path);
            let noop = match op {
                BatchOp::Mkdir { .. } => {
                    matches!(target, BatchNode::Real(_, true) | BatchNode::Fresh(true))
                }
                BatchOp::Remove { .. } => matches!(target, BatchNode::Absent),
                _ => false,
            };
            if noop {
                continue;
            }
            let parent = path.parent();
            match batch_stat(&set, &virt, &parent) {
                BatchNode::Fresh(true) => {} // created earlier in this batch
                BatchNode::Real(pino, true) => {
                    if enforce {
                        let p = set.inode(pino)?;
                        let ok = check_access(
                            creds,
                            p.uid,
                            p.gid,
                            p.mode,
                            p.acl.as_ref(),
                            Access::Write,
                        ) && check_access(
                            creds,
                            p.uid,
                            p.gid,
                            p.mode,
                            p.acl.as_ref(),
                            Access::Exec,
                        );
                        if !ok {
                            return err(Errno::EACCES, parent.as_str());
                        }
                    }
                }
                BatchNode::Real(_, false) | BatchNode::Fresh(false) => {
                    return err(Errno::ENOTDIR, parent.as_str());
                }
                BatchNode::Absent => return err(Errno::ENOENT, parent.as_str()),
            }
            match op {
                BatchOp::Mkdir { .. } => match target {
                    BatchNode::Absent => {
                        virt.insert(path.as_str().to_string(), VirtKind::Dir);
                    }
                    _ => return err(Errno::EEXIST, path.as_str()),
                },
                BatchOp::PutFile { .. } => match target {
                    BatchNode::Real(_, true) | BatchNode::Fresh(true) => {
                        return err(Errno::EISDIR, path.as_str());
                    }
                    _ => {
                        virt.insert(path.as_str().to_string(), VirtKind::NonDir);
                    }
                },
                BatchOp::PutSymlink { .. } => match target {
                    BatchNode::Absent => {
                        virt.insert(path.as_str().to_string(), VirtKind::NonDir);
                    }
                    _ => return err(Errno::EEXIST, path.as_str()),
                },
                BatchOp::Remove { .. } => {
                    virt.insert(path.as_str().to_string(), VirtKind::Removed);
                }
            }
        }

        // -------- charge the writer: the quota gate precedes mutation ---
        if creds.uid.0 != 0 && !HookDepth::active() && !ProcDepth::active() {
            for op in ops {
                self.rctl()
                    .charge_syscall(creds.uid.0, op.path().as_str())?;
            }
        }

        // -------- apply: build records, mutate via the replay path ------
        let mut records: Vec<Record> = Vec::new();
        let mut events: Vec<(EventKind, VPath, Option<String>)> = Vec::new();
        let mut bytes = 0u64;
        for op in ops {
            let path = op.path();
            let name = path.file_name().unwrap_or("").to_string();
            let parent = path.parent();
            match op {
                BatchOp::Mkdir {
                    mode,
                    uid,
                    gid,
                    xattrs,
                    ..
                } => {
                    if matches!(batch_lookup(&set, path), Some((_, true))) {
                        continue;
                    }
                    let Some((pino, true)) = batch_lookup(&set, &parent) else {
                        continue;
                    };
                    let ino = self.tables.alloc_ino();
                    let rec = Record::Mkdir {
                        parent: pino,
                        name: name.clone(),
                        ino,
                        mode: Mode(mode.0 & 0o7777),
                        uid: *uid,
                        gid: *gid,
                        tick: self.clock.tick(),
                    };
                    self.apply_record_locked(&mut set, &rec);
                    records.push(rec);
                    for (k, v) in xattrs {
                        let rec = Record::SetXattr {
                            ino,
                            name: k.clone(),
                            value: v.clone(),
                            tick: self.clock.tick(),
                        };
                        self.apply_record_locked(&mut set, &rec);
                        records.push(rec);
                    }
                    self.bump_gen(pino);
                    events.push((EventKind::Create, path.clone(), Some(name)));
                }
                BatchOp::PutFile {
                    data,
                    mode,
                    uid,
                    gid,
                    xattrs,
                    acl,
                    ..
                } => {
                    let Some((pino, true)) = batch_lookup(&set, &parent) else {
                        continue;
                    };
                    if let Some((_, is_dir)) = batch_lookup(&set, path) {
                        if is_dir {
                            continue;
                        }
                        let rec = Record::Unlink {
                            parent: pino,
                            name: name.clone(),
                            tick: self.clock.tick(),
                        };
                        self.apply_record_locked(&mut set, &rec);
                        records.push(rec);
                        events.push((EventKind::Delete, path.clone(), Some(name.clone())));
                    }
                    let ino = self.tables.alloc_ino();
                    let rec = Record::Create {
                        parent: pino,
                        name: name.clone(),
                        ino,
                        uid: *uid,
                        gid: *gid,
                        data: data.clone(),
                        tick: self.clock.tick(),
                    };
                    self.apply_record_locked(&mut set, &rec);
                    records.push(rec);
                    bytes += data.len() as u64;
                    if *mode != Mode::FILE_DEFAULT {
                        let rec = Record::SetMode {
                            ino,
                            mode: Mode(mode.0 & 0o7777),
                            tick: self.clock.tick(),
                        };
                        self.apply_record_locked(&mut set, &rec);
                        records.push(rec);
                    }
                    for (k, v) in xattrs {
                        let rec = Record::SetXattr {
                            ino,
                            name: k.clone(),
                            value: v.clone(),
                            tick: self.clock.tick(),
                        };
                        self.apply_record_locked(&mut set, &rec);
                        records.push(rec);
                    }
                    if acl.is_some() {
                        let rec = Record::SetAcl {
                            ino,
                            acl: acl.clone(),
                            tick: self.clock.tick(),
                        };
                        self.apply_record_locked(&mut set, &rec);
                        records.push(rec);
                    }
                    self.bump_gen(pino);
                    events.push((EventKind::Create, path.clone(), Some(name.clone())));
                    events.push((EventKind::CloseWrite, path.clone(), Some(name)));
                }
                BatchOp::PutSymlink {
                    target, uid, gid, ..
                } => {
                    let Some((pino, true)) = batch_lookup(&set, &parent) else {
                        continue;
                    };
                    if batch_lookup(&set, path).is_some() {
                        continue; // validated absent; defensive
                    }
                    let ino = self.tables.alloc_ino();
                    let rec = Record::Symlink {
                        parent: pino,
                        name: name.clone(),
                        ino,
                        target: target.clone(),
                        uid: *uid,
                        gid: *gid,
                        tick: self.clock.tick(),
                    };
                    self.apply_record_locked(&mut set, &rec);
                    records.push(rec);
                    self.bump_gen(pino);
                    events.push((EventKind::Create, path.clone(), Some(name)));
                }
                BatchOp::Remove { .. } => {
                    let Some((ino, is_dir)) = batch_lookup(&set, path) else {
                        continue;
                    };
                    let Some((pino, _)) = batch_lookup(&set, &parent) else {
                        continue;
                    };
                    let tick = self.clock.tick();
                    let rec = if is_dir {
                        Record::RmTree {
                            parent: pino,
                            name: name.clone(),
                            tick,
                        }
                    } else {
                        Record::Unlink {
                            parent: pino,
                            name: name.clone(),
                            tick,
                        }
                    };
                    self.apply_record_locked(&mut set, &rec);
                    records.push(rec);
                    self.bump_gen(pino);
                    if is_dir {
                        self.bump_gen(ino);
                    }
                    events.push((EventKind::Delete, path.clone(), Some(name)));
                }
            }
        }
        let report = BatchReport {
            records: records.len(),
            bytes,
        };
        if !records.is_empty() {
            for r in &records {
                if let Some(op) = r.op_kind() {
                    self.count(op, "");
                }
            }
            if self.journal.is_enabled() && !ProcDepth::active() {
                self.journal.append_record(&Record::Commit(records));
            }
        }
        drop(set);
        self.notify().emit_batch(&events);
        Ok(report)
    }
}

fn rec_tick(rec: &Record) -> Option<Timestamp> {
    Some(match rec {
        Record::Mkdir { tick, .. }
        | Record::Create { tick, .. }
        | Record::Symlink { tick, .. }
        | Record::Link { tick, .. }
        | Record::Unlink { tick, .. }
        | Record::Rmdir { tick, .. }
        | Record::RmTree { tick, .. }
        | Record::Rename { tick, .. }
        | Record::Write { tick, .. }
        | Record::SetContent { tick, .. }
        | Record::Truncate { tick, .. }
        | Record::SetMode { tick, .. }
        | Record::SetOwner { tick, .. }
        | Record::SetAcl { tick, .. }
        | Record::SetXattr { tick, .. }
        | Record::RemoveXattr { tick, .. } => *tick,
        Record::Commit(subs) => return subs.last().and_then(rec_tick),
        Record::Snapshot(_) => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Credentials;

    #[test]
    fn record_roundtrip() {
        let recs = vec![
            Record::Mkdir {
                parent: Ino(1),
                name: "a".into(),
                ino: Ino(2),
                mode: Mode(0o755),
                uid: Uid(0),
                gid: Gid(0),
                tick: Timestamp(7),
            },
            Record::Write {
                ino: Ino(2),
                offset: 3,
                data: vec![1, 2, 3],
                tick: Timestamp(9),
            },
            Record::SetAcl {
                ino: Ino(2),
                acl: Some({
                    let mut a = Acl::new();
                    a.set_user(Uid(5), 0o6);
                    a.set_mask(0o7);
                    a
                }),
                tick: Timestamp(11),
            },
        ];
        for r in &recs {
            let enc = encode_record(r);
            assert_eq!(decode_record(&enc).as_ref(), Some(r));
        }
    }

    #[test]
    fn torn_tail_is_invisible() {
        let fs = Filesystem::builder().shards(1).build();
        fs.enable_journal();
        let root = Credentials::root();
        fs.mkdir("/a", Mode::DIR_DEFAULT, &root).unwrap();
        fs.write_file("/a/x", b"hello", &root).unwrap();
        let bytes = fs.journal_bytes();
        let frames = scan_frames(&bytes);
        assert!(frames.len() >= 3); // anchor snapshot + mkdir + create + write
                                    // Cutting one byte into the last frame must hide it entirely.
        let cut = frames[frames.len() - 1].start + 1;
        let visible = scan_frames(&bytes[..cut]);
        assert_eq!(visible.len(), frames.len() - 1);
        assert_eq!(visible.last().unwrap().end, frames[frames.len() - 1].start);
    }

    #[test]
    fn restore_matches_live_digest() {
        let fs = Filesystem::builder().shards(1).build();
        fs.enable_journal();
        let root = Credentials::root();
        fs.mkdir_all("/a/b", Mode::DIR_DEFAULT, &root).unwrap();
        fs.write_file("/a/b/x", b"data", &root).unwrap();
        fs.symlink("/a/b/x", "/a/lnk", &root).unwrap();
        fs.link("/a/b/x", "/a/hard", &root).unwrap();
        fs.chmod("/a/b/x", Mode(0o600), &root).unwrap();
        fs.set_xattr("/a/b/x", "user.k", b"v", &root).unwrap();
        fs.rename("/a/b/x", "/a/b/y", &root).unwrap();
        let (restored, report) =
            Filesystem::restore_from_journal(&fs.journal_bytes(), Limits::default(), 1, true);
        assert!(report.snapshot_used);
        assert_eq!(report.records_skipped, 0);
        assert_eq!(restored.tree_digest(), fs.tree_digest());
        restored.check_invariants().unwrap();
    }

    #[test]
    fn compaction_drops_only_covered_bytes() {
        let fs = Filesystem::builder().shards(1).build();
        fs.enable_journal();
        let root = Credentials::root();
        for i in 0..10 {
            fs.write_file(&format!("/f{i}"), b"x", &root).unwrap();
        }
        fs.journal_snapshot();
        fs.write_file("/tail", b"y", &root).unwrap();
        let before = fs.journal_stats().bytes;
        let dropped = fs.journal_compact();
        assert!(dropped > 0);
        assert_eq!(fs.journal_stats().bytes, before - dropped);
        let (restored, _) =
            Filesystem::restore_from_journal(&fs.journal_bytes(), Limits::default(), 1, true);
        assert_eq!(restored.tree_digest(), fs.tree_digest());
    }
}
