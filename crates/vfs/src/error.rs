//! Errno-style error type for the virtual file system.
//!
//! yanc's premise is that network state is manipulated through *ordinary file
//! I/O*, so the error vocabulary applications see must be the POSIX one: a
//! flow write that races with a switch removal fails with `ENOENT`, an
//! unauthorized app reading a protected switch gets `EACCES`, and pointing a
//! `peer` symlink at a non-port is `EINVAL` — exactly as the paper describes.

use std::fmt;

/// POSIX-style error numbers used by [`crate::Filesystem`] operations.
///
/// Only the subset that a file-system API can actually produce is modelled;
/// the numeric values match Linux on x86-64 so logs read familiarly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted (ownership/capability checks).
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// I/O error (internal inconsistency surfaced to the caller).
    EIO = 5,
    /// Bad file handle (stale or closed descriptor).
    EBADF = 9,
    /// Resource temporarily unavailable (syscall-rate token bucket empty).
    EAGAIN = 11,
    /// Permission denied (mode/ACL checks).
    EACCES = 13,
    /// File exists.
    EEXIST = 17,
    /// Cross-device link (rename/link across mounts).
    EXDEV = 18,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument (also used for semantic-schema violations).
    EINVAL = 22,
    /// File table overflow / too many open handles.
    ENFILE = 23,
    /// Per-process (per-uid) open-handle limit reached.
    EMFILE = 24,
    /// No space left on device (quota exceeded).
    ENOSPC = 28,
    /// Read-only file system (or read-only bind mount / view).
    EROFS = 30,
    /// Too many links (hard-link count limit).
    EMLINK = 31,
    /// File name too long.
    ENAMETOOLONG = 36,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Too many levels of symbolic links.
    ELOOP = 40,
    /// No data available (missing extended attribute).
    ENODATA = 61,
    /// Function not implemented.
    ENOSYS = 38,
    /// Operation not supported (e.g. xattr on a symlink).
    ENOTSUP = 95,
    /// Disk quota exceeded (per-directory entry limits).
    EDQUOT = 122,
}

impl Errno {
    /// Short upper-case symbolic name, e.g. `"ENOENT"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::EAGAIN => "EAGAIN",
            Errno::EACCES => "EACCES",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::ENOSPC => "ENOSPC",
            Errno::EROFS => "EROFS",
            Errno::EMLINK => "EMLINK",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ELOOP => "ELOOP",
            Errno::ENODATA => "ENODATA",
            Errno::ENOSYS => "ENOSYS",
            Errno::ENOTSUP => "ENOTSUP",
            Errno::EDQUOT => "EDQUOT",
        }
    }

    /// Human-readable description, matching `strerror(3)` phrasing.
    pub fn description(self) -> &'static str {
        match self {
            Errno::EPERM => "Operation not permitted",
            Errno::ENOENT => "No such file or directory",
            Errno::EIO => "Input/output error",
            Errno::EBADF => "Bad file descriptor",
            Errno::EAGAIN => "Resource temporarily unavailable",
            Errno::EACCES => "Permission denied",
            Errno::EEXIST => "File exists",
            Errno::EXDEV => "Invalid cross-device link",
            Errno::ENOTDIR => "Not a directory",
            Errno::EISDIR => "Is a directory",
            Errno::EINVAL => "Invalid argument",
            Errno::ENFILE => "Too many open files in system",
            Errno::EMFILE => "Too many open files",
            Errno::ENOSPC => "No space left on device",
            Errno::EROFS => "Read-only file system",
            Errno::EMLINK => "Too many links",
            Errno::ENAMETOOLONG => "File name too long",
            Errno::ENOTEMPTY => "Directory not empty",
            Errno::ELOOP => "Too many levels of symbolic links",
            Errno::ENODATA => "No data available",
            Errno::ENOSYS => "Function not implemented",
            Errno::ENOTSUP => "Operation not supported",
            Errno::EDQUOT => "Disk quota exceeded",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.description())
    }
}

/// Error returned by every [`crate::Filesystem`] operation: an errno plus the
/// path (or handle) the operation was applied to, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsError {
    /// The POSIX error code.
    pub errno: Errno,
    /// Path or other operand the failing operation referenced.
    pub operand: String,
}

impl VfsError {
    /// Construct an error for `errno` at `operand`.
    pub fn new(errno: Errno, operand: impl Into<String>) -> Self {
        VfsError {
            errno,
            operand: operand.into(),
        }
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.operand, self.errno)
    }
}

impl std::error::Error for VfsError {}

/// Result alias used throughout the vfs.
pub type VfsResult<T> = Result<T, VfsError>;

/// Shorthand constructor used pervasively inside the crate.
pub(crate) fn err<T>(errno: Errno, operand: impl Into<String>) -> VfsResult<T> {
    Err(VfsError::new(errno, operand))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names_roundtrip_with_description() {
        let all = [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::EIO,
            Errno::EBADF,
            Errno::EAGAIN,
            Errno::EACCES,
            Errno::EEXIST,
            Errno::EXDEV,
            Errno::ENOTDIR,
            Errno::EISDIR,
            Errno::EINVAL,
            Errno::ENFILE,
            Errno::EMFILE,
            Errno::ENOSPC,
            Errno::EROFS,
            Errno::EMLINK,
            Errno::ENAMETOOLONG,
            Errno::ENOTEMPTY,
            Errno::ELOOP,
            Errno::ENODATA,
            Errno::ENOSYS,
            Errno::ENOTSUP,
            Errno::EDQUOT,
        ];
        for e in all {
            assert!(!e.name().is_empty());
            assert!(!e.description().is_empty());
            assert!(e.to_string().contains(e.name()));
        }
    }

    #[test]
    fn numeric_values_match_linux() {
        assert_eq!(Errno::ENOENT as i32, 2);
        assert_eq!(Errno::EACCES as i32, 13);
        assert_eq!(Errno::ENOTEMPTY as i32, 39);
        assert_eq!(Errno::ELOOP as i32, 40);
    }

    #[test]
    fn vfs_error_display_includes_operand() {
        let e = VfsError::new(Errno::ENOENT, "/net/switches/sw9");
        let s = e.to_string();
        assert!(s.contains("/net/switches/sw9"));
        assert!(s.contains("ENOENT"));
    }
}
