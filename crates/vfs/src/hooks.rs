//! Semantic-directory hooks (paper §3.1).
//!
//! "With yanc, directories and files contain semantic information. Each
//! directory which contains a list of objects automatically creates an
//! object of the appropriate type on a `mkdir()` or `create()` system call."
//!
//! The vfs itself stays policy-free; a schema layer (the `yanc` crate)
//! registers a [`SemanticHook`] that is consulted *around* mutating
//! operations:
//!
//! * after `mkdir`, to populate the new object (e.g. a new view gets
//!   `hosts/`, `switches/`, `views/`; a new flow gets a `version` file),
//! * before `rmdir`, to permit recursive removal for object directories
//!   (switch `rmdir` "is automatically recursive"),
//! * before `symlink`, to validate schema-constrained links (a port's `peer`
//!   may only point at another port),
//! * before `create`/`write`, to reject files that don't belong in the
//!   schema at all.
//!
//! Hooks run *without* the filesystem lock held, and any follow-up
//! operations a hook performs use the normal public API with
//! depth-guarded re-entry so a hook's own mkdirs don't recurse into
//! hooks forever.

use std::cell::Cell;

use crate::error::VfsResult;
use crate::path::VPath;
use crate::types::Credentials;
use crate::Filesystem;

/// Policy callbacks consulted by the filesystem around mutations.
///
/// All methods have do-nothing defaults so implementors only override what
/// their schema needs.
pub trait SemanticHook: Send + Sync {
    /// Called after a directory was created at `path`. The hook may create
    /// the object's standard children through `fs` (its calls will not
    /// re-trigger hooks).
    fn post_mkdir(&self, fs: &Filesystem, path: &VPath, creds: &Credentials) {
        let _ = (fs, path, creds);
    }

    /// Called after a regular file was created at `path` (via `open` with
    /// `create` or an explicit create).
    fn post_create(&self, fs: &Filesystem, path: &VPath, creds: &Credentials) {
        let _ = (fs, path, creds);
    }

    /// Whether `rmdir(path)` should recursively remove the subtree instead
    /// of failing with `ENOTEMPTY`. The paper makes switch removal
    /// recursive; other directories keep POSIX behaviour.
    fn rmdir_recursive(&self, path: &VPath) -> bool {
        let _ = path;
        false
    }

    /// Validate a symlink about to be created at `path` pointing to
    /// `target`. Return an error to reject it (the paper: "it is currently
    /// an error to point this symbolic link at anything other than a port").
    fn validate_symlink(&self, fs: &Filesystem, path: &VPath, target: &str) -> VfsResult<()> {
        let _ = (fs, path, target);
        Ok(())
    }

    /// Validate a regular-file create at `path` (schema layers can reject
    /// names that mean nothing, e.g. `match.bogus_field`).
    fn validate_create(&self, fs: &Filesystem, path: &VPath) -> VfsResult<()> {
        let _ = (fs, path);
        Ok(())
    }

    /// Called after a writable handle on `path` was closed — the natural
    /// point to react to a completed multi-write update.
    fn post_close_write(&self, fs: &Filesystem, path: &VPath, creds: &Credentials) {
        let _ = (fs, path, creds);
    }

    /// Called before `path` is observed (stat/open/readdir), letting a hook
    /// materialise or refresh content lazily — this is how `/net/.proc`
    /// files stay current without a background updater.
    fn pre_access(&self, fs: &Filesystem, path: &VPath) {
        let _ = (fs, path);
    }

    /// Validate any mutation (create, write-open, unlink, rename, chmod, …)
    /// of `path`. Return an error to veto it; proc mounts use this to stay
    /// read-only (`EROFS`).
    fn validate_mutate(&self, fs: &Filesystem, path: &VPath) -> VfsResult<()> {
        let _ = (fs, path);
        Ok(())
    }
}

thread_local! {
    static HOOK_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard marking "we are inside a hook" for the current thread, so
/// filesystem calls the hook makes skip hook dispatch (but still emit
/// notify events and count syscalls).
pub(crate) struct HookDepth;

impl HookDepth {
    pub(crate) fn enter() -> HookDepth {
        HOOK_DEPTH.with(|d| d.set(d.get() + 1));
        HookDepth
    }

    pub(crate) fn active() -> bool {
        HOOK_DEPTH.with(|d| d.get() > 0)
    }
}

impl Drop for HookDepth {
    fn drop(&mut self) {
        HOOK_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hook_depth_nests() {
        assert!(!HookDepth::active());
        {
            let _g1 = HookDepth::enter();
            assert!(HookDepth::active());
            {
                let _g2 = HookDepth::enter();
                assert!(HookDepth::active());
            }
            assert!(HookDepth::active());
        }
        assert!(!HookDepth::active());
    }

    struct Nop;
    impl SemanticHook for Nop {}

    #[test]
    fn default_hook_methods_are_permissive() {
        let h = Nop;
        assert!(!h.rmdir_recursive(&VPath::new("/x")));
        // validate_* defaults return Ok — exercised via a real fs in fs.rs
        // tests; here we only check rmdir policy default.
    }
}
