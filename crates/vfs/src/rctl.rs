//! cgroup-style per-process resource controls, enforced at the vfs boundary.
//!
//! The paper's position (§2, §5.3) is that network applications are ordinary
//! OS processes — and ordinary processes can be *confined*: a misbehaving
//! tenant app must not be able to monopolise the controller by spinning on
//! syscalls, leaking file handles, or flooding flow tables. This module is
//! the accounting half of that story. Each supervised process (identified by
//! the uid its [`crate::Credentials`] carry) gets an [`AppLimits`] record;
//! every counted filesystem operation charges a token, every `open` charges a
//! handle slot, and the schema layer charges flow-table slots. When a budget
//! is exhausted the operation fails with the POSIX errno a Linux process
//! would see (`EAGAIN`, `EMFILE`, `EDQUOT`) instead of silently degrading
//! everyone else.
//!
//! Token refill is **explicit** ([`RctlTable::refill_all`]) rather than
//! wall-clock driven: the supervisor refills once per scheduler tick, which
//! keeps throttling deterministic under the virtual clock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::error::{err, Errno, VfsResult};

/// Resource limits for one supervised process (keyed by uid). `None` means
/// unlimited for that axis; the global [`crate::Limits`] still apply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppLimits {
    /// Syscall token-bucket capacity per refill window. Each counted vfs
    /// operation consumes one token; an empty bucket yields `EAGAIN`.
    pub syscall_tokens: Option<u64>,
    /// Maximum simultaneously open file handles (`EMFILE` beyond it).
    pub max_open_handles: Option<u64>,
    /// Maximum active notify watch descriptors (`EMFILE` beyond it).
    pub max_watches: Option<u64>,
    /// Maximum queued-but-unread events per watch; excess is tail-dropped.
    pub notify_queue_max: Option<u64>,
    /// Maximum concurrently installed flows charged to this process
    /// (`EDQUOT` beyond it) — enforced by the schema layer.
    pub max_flows: Option<u64>,
}

impl AppLimits {
    /// Limits with every axis unlimited.
    pub fn unlimited() -> Self {
        AppLimits::default()
    }
}

/// Point-in-time usage/throttle figures for one uid, for `.proc` rendering.
#[derive(Debug, Clone, Copy, Default)]
pub struct RctlUsage {
    /// Tokens remaining in the current refill window.
    pub tokens_left: u64,
    /// Counted operations charged since the limits were installed.
    pub charged: u64,
    /// Operations rejected with `EAGAIN`.
    pub throttled: u64,
    /// Handles currently open.
    pub open_handles: u64,
    /// Flows currently charged.
    pub flows: u64,
}

struct Entry {
    limits: AppLimits,
    tokens: AtomicU64,
    charged: AtomicU64,
    throttled: AtomicU64,
    open_handles: AtomicU64,
    flows: AtomicU64,
}

impl Entry {
    fn new(limits: AppLimits) -> Self {
        Entry {
            tokens: AtomicU64::new(limits.syscall_tokens.unwrap_or(0)),
            limits,
            charged: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            open_handles: AtomicU64::new(0),
            flows: AtomicU64::new(0),
        }
    }
}

/// The per-filesystem table of process resource controls.
pub struct RctlTable {
    entries: RwLock<HashMap<u32, Entry>>,
    refills: AtomicU64,
    throttled_total: AtomicU64,
}

impl Default for RctlTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RctlTable {
    /// An empty table: nobody is limited.
    pub fn new() -> Self {
        RctlTable {
            entries: RwLock::new(HashMap::new()),
            refills: AtomicU64::new(0),
            throttled_total: AtomicU64::new(0),
        }
    }

    /// Install (or replace) the limits for `uid`. Usage counters reset; the
    /// token bucket starts full.
    pub fn set_limits(&self, uid: u32, limits: AppLimits) {
        self.entries.write().insert(uid, Entry::new(limits));
    }

    /// Remove the limits for `uid` (it becomes unconfined). Returns whether
    /// an entry existed.
    pub fn clear_limits(&self, uid: u32) -> bool {
        self.entries.write().remove(&uid).is_some()
    }

    /// The limits installed for `uid`, if any.
    pub fn limits(&self, uid: u32) -> Option<AppLimits> {
        self.entries.read().get(&uid).map(|e| e.limits)
    }

    /// Usage figures for `uid`, if limited.
    pub fn usage(&self, uid: u32) -> Option<RctlUsage> {
        self.entries.read().get(&uid).map(|e| RctlUsage {
            tokens_left: e.tokens.load(Ordering::Relaxed),
            charged: e.charged.load(Ordering::Relaxed),
            throttled: e.throttled.load(Ordering::Relaxed),
            open_handles: e.open_handles.load(Ordering::Relaxed),
            flows: e.flows.load(Ordering::Relaxed),
        })
    }

    /// Uids with limits installed, sorted (deterministic iteration).
    pub fn limited_uids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.entries.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Refill every token bucket to capacity. Called by the supervisor once
    /// per scheduler tick, so "syscalls per tick" is the enforced rate.
    pub fn refill_all(&self) {
        let es = self.entries.read();
        for e in es.values() {
            if let Some(cap) = e.limits.syscall_tokens {
                e.tokens.store(cap, Ordering::Relaxed);
            }
        }
        self.refills.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of refill windows elapsed.
    pub fn refills(&self) -> u64 {
        self.refills.load(Ordering::Relaxed)
    }

    /// Total `EAGAIN` rejections across all uids.
    pub fn throttled_total(&self) -> u64 {
        self.throttled_total.load(Ordering::Relaxed)
    }

    /// Consume one syscall token for `uid`. Unlimited uids always succeed.
    pub fn charge_syscall(&self, uid: u32, operand: &str) -> VfsResult<()> {
        let es = self.entries.read();
        let e = match es.get(&uid) {
            Some(e) => e,
            None => return Ok(()),
        };
        if e.limits.syscall_tokens.is_none() {
            e.charged.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let took = e
            .tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| t.checked_sub(1))
            .is_ok();
        if took {
            e.charged.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            e.throttled.fetch_add(1, Ordering::Relaxed);
            self.throttled_total.fetch_add(1, Ordering::Relaxed);
            err(Errno::EAGAIN, operand)
        }
    }

    /// Charge one open handle to `uid` (`EMFILE` past the cap).
    pub fn charge_open(&self, uid: u32, operand: &str) -> VfsResult<()> {
        let es = self.entries.read();
        let e = match es.get(&uid) {
            Some(e) => e,
            None => return Ok(()),
        };
        // Increment-if-below-cap in one atomic step: a separate load+add
        // would let two concurrent opens both pass the check at cap-1 and
        // overshoot the budget.
        match e.limits.max_open_handles {
            Some(cap) => {
                let took = e
                    .open_handles
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                        if c >= cap {
                            None
                        } else {
                            Some(c + 1)
                        }
                    })
                    .is_ok();
                if took {
                    Ok(())
                } else {
                    err(Errno::EMFILE, operand)
                }
            }
            None => {
                e.open_handles.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    /// Release one open handle charged to `uid`.
    pub fn release_open(&self, uid: u32) {
        if let Some(e) = self.entries.read().get(&uid) {
            let _ = e
                .open_handles
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| t.checked_sub(1));
        }
    }

    /// Charge one installed flow to `uid` (`EDQUOT` past the quota).
    pub fn charge_flow(&self, uid: u32, operand: &str) -> VfsResult<()> {
        let es = self.entries.read();
        let e = match es.get(&uid) {
            Some(e) => e,
            None => return Ok(()),
        };
        // Same single-step increment-if-below-cap as `charge_open`.
        match e.limits.max_flows {
            Some(cap) => {
                let took = e
                    .flows
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                        if c >= cap {
                            None
                        } else {
                            Some(c + 1)
                        }
                    })
                    .is_ok();
                if took {
                    Ok(())
                } else {
                    err(Errno::EDQUOT, operand)
                }
            }
            None => {
                e.flows.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    /// Release one flow charged to `uid`.
    pub fn release_flow(&self, uid: u32) {
        if let Some(e) = self.entries.read().get(&uid) {
            let _ = e
                .flows
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| t.checked_sub(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_uid_never_throttles() {
        let t = RctlTable::new();
        for _ in 0..10_000 {
            t.charge_syscall(7, "/x").unwrap();
        }
        assert_eq!(t.throttled_total(), 0);
    }

    #[test]
    fn token_bucket_throttles_then_refills() {
        let t = RctlTable::new();
        t.set_limits(
            5,
            AppLimits {
                syscall_tokens: Some(3),
                ..Default::default()
            },
        );
        assert!(t.charge_syscall(5, "/a").is_ok());
        assert!(t.charge_syscall(5, "/b").is_ok());
        assert!(t.charge_syscall(5, "/c").is_ok());
        let e = t.charge_syscall(5, "/d").unwrap_err();
        assert_eq!(e.errno, Errno::EAGAIN);
        assert_eq!(t.usage(5).unwrap().throttled, 1);
        t.refill_all();
        assert!(t.charge_syscall(5, "/e").is_ok());
        assert_eq!(t.usage(5).unwrap().charged, 4);
    }

    #[test]
    fn handle_cap_is_emfile_and_releases() {
        let t = RctlTable::new();
        t.set_limits(
            9,
            AppLimits {
                max_open_handles: Some(2),
                ..Default::default()
            },
        );
        t.charge_open(9, "/f").unwrap();
        t.charge_open(9, "/f").unwrap();
        assert_eq!(t.charge_open(9, "/f").unwrap_err().errno, Errno::EMFILE);
        t.release_open(9);
        t.charge_open(9, "/f").unwrap();
    }

    #[test]
    fn flow_quota_is_edquot() {
        let t = RctlTable::new();
        t.set_limits(
            4,
            AppLimits {
                max_flows: Some(1),
                ..Default::default()
            },
        );
        t.charge_flow(4, "f1").unwrap();
        assert_eq!(t.charge_flow(4, "f2").unwrap_err().errno, Errno::EDQUOT);
        t.release_flow(4);
        t.charge_flow(4, "f2").unwrap();
    }

    #[test]
    fn clear_limits_unconfines() {
        let t = RctlTable::new();
        t.set_limits(
            2,
            AppLimits {
                syscall_tokens: Some(0),
                ..Default::default()
            },
        );
        assert!(t.charge_syscall(2, "/x").is_err());
        assert!(t.clear_limits(2));
        assert!(t.charge_syscall(2, "/x").is_ok());
    }
}
