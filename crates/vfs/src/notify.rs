//! File-system change notification (paper §5.2).
//!
//! yanc applications are event loops blocked on the Linux fsnotify APIs:
//! a driver watches `flows/*/version` to learn when a flow is committed, a
//! topology daemon watches `switches/` for new switches, and so on. This
//! module reproduces both flavours the paper names:
//!
//! * **inotify-like watches** on a single file or directory
//!   ([`NotifyHub::watch_path`]), delivering events for that object and — for
//!   directories — its direct children, and
//! * **fanotify-like subtree watches** ([`NotifyHub::watch_subtree`]),
//!   delivering events for everything beneath a path prefix, which is what a
//!   distributed-fs replicator or an auditor wants.
//!
//! Events are delivered over unbounded crossbeam channels so emitters never
//! block; "use of the *notify systems comes free" (§5.2) — the filesystem
//! emits events from every mutating operation with no cooperation needed
//! from applications.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::path::VPath;

/// What happened to a watched object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A directory entry was created (file, dir, or symlink).
    Create,
    /// A directory entry was removed.
    Delete,
    /// File contents changed (write or truncate).
    Modify,
    /// A writable handle was closed — the paper's commit point for
    /// multi-write updates.
    CloseWrite,
    /// Metadata changed (chmod/chown/xattr).
    Attrib,
    /// An entry was renamed away from this name.
    MovedFrom,
    /// An entry was renamed to this name.
    MovedTo,
    /// The watched object itself was deleted.
    DeleteSelf,
}

/// Bitmask of [`EventKind`]s a watch is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(pub u16);

impl EventMask {
    /// Subscribe to every event kind.
    pub const ALL: EventMask = EventMask(0xffff);
    /// Creation and deletion only — the "watch a collection" mask.
    pub const CHILDREN: EventMask =
        EventMask(1 << EventKind::Create as u16 | 1 << EventKind::Delete as u16);
    /// Content-change events only.
    pub const MODIFY: EventMask =
        EventMask(1 << EventKind::Modify as u16 | 1 << EventKind::CloseWrite as u16);

    /// Mask containing exactly `kind`.
    pub fn only(kind: EventKind) -> EventMask {
        EventMask(1 << kind as u16)
    }

    /// Union of two masks.
    pub fn or(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// Whether `kind` is included.
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << kind as u16) != 0
    }
}

/// Identifier of an active watch, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WatchId(pub u64);

/// A delivered notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The watch this event matched.
    pub watch: WatchId,
    /// What happened.
    pub kind: EventKind,
    /// Full path of the affected object.
    pub path: VPath,
    /// For directory-scope events: the name of the affected child.
    pub name: Option<String>,
}

enum Scope {
    /// Matches the path itself and its direct children.
    Path(VPath),
    /// Matches the path itself and all descendants.
    Subtree(VPath),
}

struct Watch {
    id: WatchId,
    scope: Scope,
    mask: EventMask,
    owner: Option<u32>,
    tx: Sender<Event>,
    /// Serializes the quota check with the enqueue for THIS watch: without
    /// it, two concurrent emitters could both observe `len == quota - 1` and
    /// both send, overshooting the tail-drop cap. One mutex per watch keeps
    /// the critical section per-consumer — emitters to different watches
    /// never contend.
    gate: Mutex<()>,
}

/// Registry of watches; one per [`crate::Filesystem`].
pub struct NotifyHub {
    watches: RwLock<Vec<Watch>>,
    next_id: AtomicU64,
    /// Per-uid cap on a watch's queued-but-unread events; excess is dropped.
    quotas: RwLock<HashMap<u32, usize>>,
    dropped: AtomicU64,
    delivered: AtomicU64,
}

impl Default for NotifyHub {
    fn default() -> Self {
        Self::new()
    }
}

impl NotifyHub {
    /// An empty hub.
    pub fn new() -> Self {
        NotifyHub {
            watches: RwLock::new(Vec::new()),
            next_id: AtomicU64::new(1),
            quotas: RwLock::new(HashMap::new()),
            dropped: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        }
    }

    fn add(&self, scope: Scope, mask: EventMask, owner: Option<u32>) -> (WatchId, Receiver<Event>) {
        let (tx, rx) = unbounded();
        let id = WatchId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.watches.write().push(Watch {
            id,
            scope,
            mask,
            owner,
            tx,
            gate: Mutex::new(()),
        });
        (id, rx)
    }

    /// inotify-style: watch `path` and (if a directory) its direct children.
    pub fn watch_path(&self, path: &VPath, mask: EventMask) -> (WatchId, Receiver<Event>) {
        self.add(Scope::Path(path.clone()), mask, None)
    }

    /// fanotify-style: watch the whole subtree rooted at `path`.
    pub fn watch_subtree(&self, path: &VPath, mask: EventMask) -> (WatchId, Receiver<Event>) {
        self.add(Scope::Subtree(path.clone()), mask, None)
    }

    /// [`Self::watch_path`] with the watch descriptor charged to `owner`, so
    /// the supervisor can reclaim it when the owning process is killed.
    pub fn watch_path_owned(
        &self,
        path: &VPath,
        mask: EventMask,
        owner: u32,
    ) -> (WatchId, Receiver<Event>) {
        self.add(Scope::Path(path.clone()), mask, Some(owner))
    }

    /// [`Self::watch_subtree`] with the watch descriptor charged to `owner`.
    pub fn watch_subtree_owned(
        &self,
        path: &VPath,
        mask: EventMask,
        owner: u32,
    ) -> (WatchId, Receiver<Event>) {
        self.add(Scope::Subtree(path.clone()), mask, Some(owner))
    }

    /// Cancel a watch. Returns whether it existed.
    pub fn unwatch(&self, id: WatchId) -> bool {
        let mut ws = self.watches.write();
        let n = ws.len();
        ws.retain(|w| w.id != id);
        ws.len() != n
    }

    /// Remove every watch descriptor charged to `owner` (process teardown).
    /// Returns the number of descriptors reclaimed.
    pub fn unwatch_owner(&self, owner: u32) -> usize {
        let mut ws = self.watches.write();
        let n = ws.len();
        ws.retain(|w| w.owner != Some(owner));
        n - ws.len()
    }

    /// Number of active watches (disconnected receivers are reaped lazily).
    pub fn watch_count(&self) -> usize {
        self.watches.read().len()
    }

    /// Active watches charged to `owner`.
    pub fn watches_of(&self, owner: u32) -> usize {
        self.watches
            .read()
            .iter()
            .filter(|w| w.owner == Some(owner))
            .count()
    }

    /// Set or clear the queued-event quota for watches owned by `owner`.
    pub fn set_queue_quota(&self, owner: u32, quota: Option<usize>) {
        let mut q = self.quotas.write();
        match quota {
            Some(v) => {
                q.insert(owner, v);
            }
            None => {
                q.remove(&owner);
            }
        }
    }

    /// Events discarded because an owner's queue quota was exhausted.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events successfully enqueued to a watch channel since startup.
    /// With [`Self::dropped_events`], every matched event is accounted for
    /// exactly once: matched = delivered + dropped (the no-loss/no-dup law
    /// the property suite checks across batch drains).
    pub fn delivered_events(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Events delivered but not yet consumed, summed over every watch's
    /// channel — the introspection tree's "queue depth" figure.
    pub fn queued_events(&self) -> usize {
        self.watches.read().iter().map(|w| w.tx.len()).sum()
    }

    /// Deliver `kind` at `path` to every matching watch. Never blocks.
    pub fn emit(&self, kind: EventKind, path: &VPath, name: Option<&str>) {
        self.emit_batch(&[(kind, path.clone(), name.map(str::to_string))]);
    }

    /// Deliver a batch of events — everything one filesystem operation
    /// produced — to every matching watch. Called by the filesystem after
    /// releasing its shard locks, so watchers never serialize writers.
    ///
    /// Per watch, the whole batch is delivered under that watch's queue
    /// gate: the tail-drop quota check and the enqueue are one atomic step,
    /// and one lock acquisition covers the batch. Watches whose receiver has
    /// been dropped are reaped after the pass. Internal proc-mount
    /// maintenance (refresh writes) is silent: those mutations are not
    /// observable state.
    pub fn emit_batch(&self, events: &[(EventKind, VPath, Option<String>)]) {
        if events.is_empty() || crate::proc::ProcDepth::active() {
            return;
        }
        let mut dead: Vec<WatchId> = Vec::new();
        {
            let ws = self.watches.read();
            for w in ws.iter() {
                let matched: Vec<&(EventKind, VPath, Option<String>)> = events
                    .iter()
                    .filter(|(kind, path, _)| {
                        w.mask.contains(*kind)
                            && match &w.scope {
                                // A path watch sees events on the object itself
                                // and events whose subject sits directly
                                // inside it.
                                Scope::Path(p) => path == p || path.parent() == *p,
                                Scope::Subtree(p) => path.starts_with(p),
                            }
                    })
                    .collect();
                if matched.is_empty() {
                    continue;
                }
                let quota = w
                    .owner
                    .and_then(|uid| self.quotas.read().get(&uid).copied());
                let _gate = w.gate.lock();
                for (kind, path, name) in matched {
                    if let Some(q) = quota {
                        if w.tx.len() >= q {
                            // Queue quota exhausted: tail-drop rather than
                            // let a slow consumer grow the queue without
                            // bound.
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                    let ev = Event {
                        watch: w.id,
                        kind: *kind,
                        path: path.clone(),
                        name: name.clone(),
                    };
                    if w.tx.send(ev).is_err() {
                        dead.push(w.id);
                        break;
                    }
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if !dead.is_empty() {
            self.watches.write().retain(|w| !dead.contains(&w.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::new(s)
    }

    #[test]
    fn path_watch_sees_self_and_children_only() {
        let hub = NotifyHub::new();
        let (_id, rx) = hub.watch_path(&p("/net/switches"), EventMask::ALL);
        hub.emit(EventKind::Create, &p("/net/switches/sw1"), Some("sw1"));
        hub.emit(
            EventKind::Create,
            &p("/net/switches/sw1/flows/f1"),
            Some("f1"),
        );
        hub.emit(EventKind::Attrib, &p("/net/switches"), None);
        let evs: Vec<Event> = rx.try_iter().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Create);
        assert_eq!(evs[0].name.as_deref(), Some("sw1"));
        assert_eq!(evs[1].kind, EventKind::Attrib);
    }

    #[test]
    fn subtree_watch_sees_descendants() {
        let hub = NotifyHub::new();
        let (_id, rx) = hub.watch_subtree(&p("/net"), EventMask::ALL);
        hub.emit(
            EventKind::Modify,
            &p("/net/switches/sw1/flows/f1/version"),
            None,
        );
        hub.emit(EventKind::Modify, &p("/etc/other"), None);
        let evs: Vec<Event> = rx.try_iter().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path.as_str(), "/net/switches/sw1/flows/f1/version");
    }

    #[test]
    fn mask_filters_kinds() {
        let hub = NotifyHub::new();
        let (_id, rx) = hub.watch_path(&p("/d"), EventMask::only(EventKind::CloseWrite));
        hub.emit(EventKind::Modify, &p("/d/f"), Some("f"));
        hub.emit(EventKind::CloseWrite, &p("/d/f"), Some("f"));
        let evs: Vec<Event> = rx.try_iter().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::CloseWrite);
    }

    #[test]
    fn unwatch_stops_delivery() {
        let hub = NotifyHub::new();
        let (id, rx) = hub.watch_path(&p("/d"), EventMask::ALL);
        assert!(hub.unwatch(id));
        assert!(!hub.unwatch(id));
        hub.emit(EventKind::Create, &p("/d/f"), Some("f"));
        assert!(rx.try_iter().next().is_none());
        assert_eq!(hub.watch_count(), 0);
    }

    #[test]
    fn dropped_receiver_does_not_poison_other_watches() {
        let hub = NotifyHub::new();
        let (_a, rx_a) = hub.watch_path(&p("/d"), EventMask::ALL);
        let (_b, rx_b) = hub.watch_path(&p("/d"), EventMask::ALL);
        drop(rx_a);
        hub.emit(EventKind::Create, &p("/d/f"), Some("f"));
        assert_eq!(rx_b.try_iter().count(), 1);
        // The dead watch was reaped during emit.
        assert_eq!(hub.watch_count(), 1);
    }

    #[test]
    fn batch_delivery_accounts_every_event_once() {
        let hub = NotifyHub::new();
        let (_id, rx) = hub.watch_subtree(&p("/net"), EventMask::ALL);
        hub.emit_batch(&[
            (EventKind::Create, p("/net/a"), Some("a".to_string())),
            (EventKind::Modify, p("/net/a"), None),
            (EventKind::Delete, p("/elsewhere"), None), // outside the scope
        ]);
        let evs: Vec<Event> = rx.try_iter().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(hub.delivered_events(), 2);
        assert_eq!(hub.dropped_events(), 0);
    }

    #[test]
    fn queue_quota_tail_drop_is_atomic_under_contention() {
        use std::sync::Arc;
        // Pins the fix for the check-then-act race: quota check and enqueue
        // now happen under the watch's gate, so concurrent emitters can
        // never overshoot the cap, and matched = delivered + dropped holds
        // exactly.
        let hub = Arc::new(NotifyHub::new());
        hub.set_queue_quota(7, Some(4));
        let (_id, rx) = hub.watch_path_owned(&p("/d"), EventMask::ALL, 7);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = hub.clone();
                std::thread::spawn(move || {
                    for _ in 0..64 {
                        h.emit(EventKind::Create, &p("/d/f"), Some("f"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let queued = rx.try_iter().count() as u64;
        assert!(queued <= 4, "queue overshot its quota: {queued}");
        assert_eq!(queued, hub.delivered_events());
        assert_eq!(hub.delivered_events() + hub.dropped_events(), 4 * 64);
    }

    #[test]
    fn masks_compose() {
        let m = EventMask::CHILDREN.or(EventMask::MODIFY);
        assert!(m.contains(EventKind::Create));
        assert!(m.contains(EventKind::Modify));
        assert!(!m.contains(EventKind::Attrib));
    }
}
