//! Core value types: inode numbers, file modes, credentials, timestamps.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An inode number. `Ino(1)` is always the root directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ino(pub u64);

/// The root directory's inode number.
pub const ROOT_INO: Ino = Ino(1);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// Kind of file-system object an inode represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileType {
    /// The character `ls -l` would print in the mode column.
    pub fn ls_char(self) -> char {
        match self {
            FileType::Regular => '-',
            FileType::Directory => 'd',
            FileType::Symlink => 'l',
        }
    }
}

/// Unix permission bits (the low 12 bits: setuid/setgid/sticky + rwxrwxrwx).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode(pub u16);

impl Mode {
    /// `0o644` — the default for regular files.
    pub const FILE_DEFAULT: Mode = Mode(0o644);
    /// `0o755` — the default for directories.
    pub const DIR_DEFAULT: Mode = Mode(0o755);
    /// `0o777` — symlink modes are ignored but stored for completeness.
    pub const SYMLINK: Mode = Mode(0o777);

    /// Owner read/write/execute triplet (bits 8..6).
    pub fn owner(self) -> u8 {
        ((self.0 >> 6) & 0o7) as u8
    }
    /// Group triplet (bits 5..3).
    pub fn group(self) -> u8 {
        ((self.0 >> 3) & 0o7) as u8
    }
    /// Other triplet (bits 2..0).
    pub fn other(self) -> u8 {
        (self.0 & 0o7) as u8
    }
    /// Sticky bit (0o1000) — on directories, restricts deletion to owners.
    pub fn sticky(self) -> bool {
        self.0 & 0o1000 != 0
    }

    /// Render as the nine `rwx` characters of `ls -l`.
    pub fn ls_string(self) -> String {
        let mut s = String::with_capacity(9);
        for trip in [self.owner(), self.group(), self.other()] {
            s.push(if trip & 0o4 != 0 { 'r' } else { '-' });
            s.push(if trip & 0o2 != 0 { 'w' } else { '-' });
            s.push(if trip & 0o1 != 0 { 'x' } else { '-' });
        }
        s
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

/// Access being requested of an object, for permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read file contents or list a directory.
    Read,
    /// Modify file contents or create/remove directory entries.
    Write,
    /// Execute a file or traverse a directory.
    Exec,
}

impl Access {
    /// The permission bit within an rwx triplet.
    pub fn bit(self) -> u8 {
        match self {
            Access::Read => 0o4,
            Access::Write => 0o2,
            Access::Exec => 0o1,
        }
    }
}

/// User id. `Uid(0)` is root and bypasses permission checks (but not
/// read-only mounts), exactly as on Linux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

/// Group id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gid(pub u32);

/// The identity a file-system operation runs as.
///
/// yanc applications are separate processes with their own credentials; the
/// administrator uses plain `chmod`/`chown`/ACLs to decide which application
/// may touch which switch or flow (paper §5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Effective user id.
    pub uid: Uid,
    /// Effective primary group id.
    pub gid: Gid,
    /// Supplementary groups.
    pub groups: Vec<Gid>,
    /// `CAP_DAC_OVERRIDE`: bypass file permission checks while keeping a
    /// non-zero uid. This is how supervised yanc processes get their own
    /// identity for resource accounting (rctl buckets, handle/watch
    /// ownership) without being locked out of the root-owned `/net` tree —
    /// the same split Linux makes between capabilities and uids. Dropping
    /// the capability (plus a namespace) yields a fully confined process.
    pub dac_override: bool,
}

impl Credentials {
    /// The superuser: passes all permission checks.
    pub fn root() -> Self {
        Credentials {
            uid: Uid(0),
            gid: Gid(0),
            groups: Vec::new(),
            dac_override: false,
        }
    }

    /// An unprivileged user with the given uid/gid.
    pub fn user(uid: u32, gid: u32) -> Self {
        Credentials {
            uid: Uid(uid),
            gid: Gid(gid),
            groups: Vec::new(),
            dac_override: false,
        }
    }

    /// Grant `CAP_DAC_OVERRIDE` (builder form).
    pub fn with_dac_override(mut self) -> Self {
        self.dac_override = true;
        self
    }

    /// Whether these credentials are the superuser.
    pub fn is_root(&self) -> bool {
        self.uid == Uid(0)
    }

    /// Whether `gid` is the primary or a supplementary group.
    pub fn in_group(&self, gid: Gid) -> bool {
        self.gid == gid || self.groups.contains(&gid)
    }
}

/// A logical timestamp.
///
/// The vfs has no wall clock (experiments must be deterministic); instead a
/// global monotonic counter is bumped on every mutation, giving `ctime`/
/// `mtime` values that order events exactly like real timestamps do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// Monotonic source of [`Timestamp`]s shared by a filesystem instance.
#[derive(Debug, Default)]
pub struct Clock(AtomicU64);

impl Clock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Clock(AtomicU64::new(0))
    }

    /// Advance and return the new timestamp.
    pub fn tick(&self) -> Timestamp {
        Timestamp(self.0.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Current timestamp without advancing.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.0.load(Ordering::Relaxed))
    }

    /// Move the clock forward to at least `t` (never backwards). Journal
    /// restore uses this so a rebuilt filesystem resumes ticking *after*
    /// the last replayed mutation, keeping timestamps monotonic across the
    /// crash boundary.
    pub fn advance_to(&self, t: Timestamp) {
        self.0.fetch_max(t.0, Ordering::Relaxed);
    }
}

/// Stat-like metadata snapshot returned by [`crate::Filesystem::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: Ino,
    /// Object kind.
    pub file_type: FileType,
    /// Permission bits.
    pub mode: Mode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Content size in bytes (for directories: number of entries).
    pub size: u64,
    /// Hard-link count.
    pub nlink: u32,
    /// Last content modification.
    pub mtime: Timestamp,
    /// Last metadata change.
    pub ctime: Timestamp,
}

impl FileStat {
    /// True when the object is a directory.
    pub fn is_dir(&self) -> bool {
        self.file_type == FileType::Directory
    }
    /// True when the object is a regular file.
    pub fn is_file(&self) -> bool {
        self.file_type == FileType::Regular
    }
    /// True when the object is a symlink.
    pub fn is_symlink(&self) -> bool {
        self.file_type == FileType::Symlink
    }
}

/// One entry of a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Name within the parent directory.
    pub name: String,
    /// Inode the name refers to.
    pub ino: Ino,
    /// Kind of the target.
    pub file_type: FileType,
}

/// Flags for [`crate::Filesystem::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// With `create`: fail with `EEXIST` if the file already exists.
    pub excl: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// All writes go to the end of the file.
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }
    /// `O_WRONLY | O_CREAT | O_TRUNC` — the classic "write a file" open.
    pub fn write_create() -> Self {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..Default::default()
        }
    }
    /// `O_WRONLY | O_CREAT | O_APPEND`.
    pub fn append_create() -> Self {
        OpenFlags {
            write: true,
            create: true,
            append: true,
            ..Default::default()
        }
    }
    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }
}

/// An open-file handle returned by [`crate::Filesystem::open`].
///
/// Handles are plain ids into the filesystem's open-file table; they are
/// `Copy` so applications can model `dup()` trivially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_triplets_and_ls_string() {
        let m = Mode(0o754);
        assert_eq!(m.owner(), 0o7);
        assert_eq!(m.group(), 0o5);
        assert_eq!(m.other(), 0o4);
        assert_eq!(m.ls_string(), "rwxr-xr--");
        assert_eq!(Mode(0o000).ls_string(), "---------");
        assert_eq!(Mode(0o777).ls_string(), "rwxrwxrwx");
    }

    #[test]
    fn mode_sticky_bit() {
        assert!(Mode(0o1777).sticky());
        assert!(!Mode(0o777).sticky());
    }

    #[test]
    fn credentials_group_membership() {
        let mut c = Credentials::user(1000, 1000);
        assert!(c.in_group(Gid(1000)));
        assert!(!c.in_group(Gid(5)));
        c.groups.push(Gid(5));
        assert!(c.in_group(Gid(5)));
        assert!(!c.is_root());
        assert!(Credentials::root().is_root());
    }

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn access_bits() {
        assert_eq!(Access::Read.bit(), 4);
        assert_eq!(Access::Write.bit(), 2);
        assert_eq!(Access::Exec.bit(), 1);
    }

    #[test]
    fn file_type_ls_chars() {
        assert_eq!(FileType::Directory.ls_char(), 'd');
        assert_eq!(FileType::Regular.ls_char(), '-');
        assert_eq!(FileType::Symlink.ls_char(), 'l');
    }
}
