//! # Overlay (union) mounts: copy-on-write views with atomic commit
//!
//! Linux-overlayfs semantics built *on top of* the plain tree (paper §3.4,
//! §5.3): one or more **read-only lower layers** and a **writable upper
//! layer** are merged into a single view. Reads fall through to the
//! topmost layer that has the object; the first write **copies up** the
//! object (and its directory chain) into the upper layer; deletes leave a
//! **whiteout** (`.wh.<name>`) in the upper layer; a directory that must
//! stop merging with its lower twins carries the **opaque** xattr.
//!
//! The layers are ordinary directories of the one [`Filesystem`], so every
//! mechanism from earlier PRs composes by construction rather than by
//! special case:
//!
//! * **dcache** — lookups inside a view hit real per-layer inodes, so the
//!   cache keys are `(layer dir ino, name)`: already layer-aware. A
//!   whiteout is a *positive* entry for `.wh.x`, not a negative entry for
//!   `x`, and commit mutates the real base/upper dirs, bumping their
//!   generations — stale merged answers are impossible.
//! * **journal** — copy-up chains and view commits go through
//!   [`Filesystem::apply_batch`], which journals the whole plan as one
//!   `Commit` frame. A crash replays a copy-up or a view commit
//!   fully-applied or fully-absent, never half.
//! * **rctl** — every batched step is charged to the *writer's* uid before
//!   application, so copy-up cost lands on the tenant who wrote.
//! * **notify** — upper-layer paths are private to the view, so watching
//!   the upper tree observes exactly this view's writes and nothing else.
//!
//! **Atomic view commit** generalises the paper's rename-commit: the app
//! stages edits in its upper layer, validates them, then
//! [`Overlay::commit`] computes a diff plan (upserts for upper objects,
//! removes for whiteouts) *plus* the clearing of the upper layer, and
//! applies all of it as one `apply_batch` transaction — a single
//! linearization point under `lock_all`, one journal frame, permission-
//! checked against the base tree (per-tenant authority enforced at the
//! filesystem boundary, not in every app).
//!
//! Documented deviations from kernel overlayfs: directory renames return
//! `EXDEV` (as overlayfs itself does without `redirect_dir`), file renames
//! materialise as create+delete in the event stream, and resolution that
//! passes *through* a lower-layer symlink pointing outside the copied-up
//! region delegates into the lower tree, where writes fail with `EROFS`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::acl::{check_access, Acl};
use crate::error::{err, Errno, VfsResult};
use crate::fs::{Filesystem, WatchBuilder};
use crate::journal::{BatchOp, BatchReport};
use crate::path::VPath;
use crate::types::{
    Access, Credentials, DirEntry, Fd, FileStat, FileType, Gid, Mode, OpenFlags, Uid,
};

/// Prefix marking a whiteout entry in an upper layer: `.wh.<name>` hides
/// `<name>` in every lower layer. Names with this prefix are reserved —
/// the overlay rejects them with `EINVAL`, exactly like kernel overlayfs.
pub const WHITEOUT_PREFIX: &str = ".wh.";

/// Xattr marking an upper directory *opaque*: lower directories of the
/// same name are not merged through it.
pub const OPAQUE_XATTR: &str = "trusted.overlay.opaque";

/// Maximum symlink hops [`Overlay`] itself follows while locating a
/// write target (each hop re-resolves through the merged view).
const MAX_OVERLAY_HOPS: u32 = 8;

#[derive(Debug, Default)]
struct Counters {
    copy_ups: AtomicU64,
    copy_up_bytes: AtomicU64,
    whiteouts: AtomicU64,
    opaques: AtomicU64,
    commits: AtomicU64,
    commit_records: AtomicU64,
}

/// Point-in-time snapshot of one overlay's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Objects copied from a lower layer into the upper layer.
    pub copy_ups: u64,
    /// File-content bytes moved by those copy-ups.
    pub copy_up_bytes: u64,
    /// Whiteout entries created (deletes of lower-layer objects).
    pub whiteouts: u64,
    /// Directories marked opaque.
    pub opaques: u64,
    /// Successful [`Overlay::commit`] calls.
    pub commits: u64,
    /// Journal sub-records produced by those commits.
    pub commit_records: u64,
}

/// Outcome of one atomic view commit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitReport {
    /// Journal sub-records in the single `Commit` frame.
    pub records: usize,
    /// File-content bytes written into the base tree.
    pub bytes: u64,
    /// Whiteouts translated into base-tree removals.
    pub whiteouts: usize,
    /// Top-level upper-layer entries cleared by the same transaction.
    pub cleared: usize,
}

/// A copy-on-write union view over directories of one [`Filesystem`].
///
/// Cloning is cheap and shares the counters; the layers themselves live in
/// the filesystem, so a clone is another handle onto the same view.
#[derive(Clone)]
pub struct Overlay {
    fs: Arc<Filesystem>,
    lowers: Vec<VPath>,
    upper: VPath,
    counters: Arc<Counters>,
}

/// Where a merged-view path resolved to.
enum Loc {
    /// Resolution passed through a non-directory intermediate and was
    /// rebased wholly into one layer; the bool says it was the upper
    /// (writable) layer.
    Delegate(VPath, bool),
    /// Normal case: per-layer knowledge about the final component.
    Merged(Merged),
}

/// Per-layer state of one merged path's final component.
struct Merged {
    /// The (possibly not-yet-existing) upper-layer path.
    up: VPath,
    /// `lstat` of `up` when it exists.
    up_st: Option<FileStat>,
    /// A whiteout in the upper parent hides all lower objects.
    wh: bool,
    /// Topmost surviving lower object.
    low: Option<(VPath, FileStat)>,
    /// Every lower directory merged at this path, in priority order
    /// (empty when hidden by a whiteout or an opaque upper directory).
    low_dirs: Vec<VPath>,
}

impl Merged {
    /// The layer object the merged view presents here, if any.
    fn visible(&self) -> Option<(&VPath, &FileStat)> {
        if let Some(st) = &self.up_st {
            return Some((&self.up, st));
        }
        if self.wh {
            return None;
        }
        self.low.as_ref().map(|(p, s)| (p, s))
    }
}

/// `.wh.<name>`.
fn wh_name(name: &str) -> String {
    format!("{WHITEOUT_PREFIX}{name}")
}

/// The whiteout path shadowing `upper_path`.
fn wh_path(upper_path: &VPath) -> VPath {
    let name = upper_path.file_name().unwrap_or("");
    upper_path.parent().join(&wh_name(name))
}

/// Lexically squash an overlay-relative path into components: `.` drops,
/// `..` pops (the overlay root is its own parent, as for a chroot), and
/// reserved whiteout names are rejected.
fn squash(path: &str) -> VfsResult<Vec<String>> {
    let vp = VPath::new(path);
    let mut out: Vec<String> = Vec::new();
    for c in vp.components() {
        match c {
            "." => {}
            ".." => {
                out.pop();
            }
            _ if c.starts_with(WHITEOUT_PREFIX) => return err(Errno::EINVAL, path),
            _ => out.push(c.to_string()),
        }
    }
    Ok(out)
}

/// Join the remaining components onto a layer path.
fn join_rest(base: &VPath, rest: &[String]) -> VPath {
    let mut p = base.clone();
    for c in rest {
        p = p.join(c);
    }
    p
}

/// Overlay-relative absolute path from squashed components.
fn opath(comps: &[String]) -> VPath {
    join_rest(&VPath::root(), comps)
}

impl Overlay {
    /// Build a view: `lowers` are merged top-first (index 0 wins), `upper`
    /// receives all writes. The layer directories need not exist yet; see
    /// [`Overlay::ensure_upper`].
    ///
    /// # Panics
    /// When `lowers` is empty — a union of nothing is a plain directory,
    /// use a bind mount for that.
    pub fn new(fs: Arc<Filesystem>, lowers: &[&str], upper: &str) -> Overlay {
        assert!(!lowers.is_empty(), "overlay needs at least one lower layer");
        Overlay {
            fs,
            lowers: lowers.iter().map(|p| VPath::new(p)).collect(),
            upper: VPath::new(upper),
            counters: Arc::new(Counters::default()),
        }
    }

    /// Create the upper directory (if missing) and hand it to `owner`, so
    /// an unprivileged tenant can write in its own view.
    pub fn ensure_upper(&self, owner: &Credentials) -> VfsResult<()> {
        let root = Credentials::root();
        self.fs
            .mkdir_all(self.upper.as_str(), Mode::DIR_DEFAULT, &root)?;
        if !owner.is_root() {
            self.fs
                .chown(self.upper.as_str(), Some(owner.uid), Some(owner.gid), &root)?;
        }
        Ok(())
    }

    /// The underlying filesystem.
    pub fn filesystem(&self) -> &Arc<Filesystem> {
        &self.fs
    }

    /// The writable upper layer's real path.
    pub fn upper_path(&self) -> &VPath {
        &self.upper
    }

    /// The read-only lower layers' real paths, topmost first.
    pub fn lower_paths(&self) -> &[VPath] {
        &self.lowers
    }

    /// Current activity counters.
    pub fn stats(&self) -> OverlayStats {
        let c = &self.counters;
        OverlayStats {
            copy_ups: c.copy_ups.load(Ordering::Relaxed),
            copy_up_bytes: c.copy_up_bytes.load(Ordering::Relaxed),
            whiteouts: c.whiteouts.load(Ordering::Relaxed),
            opaques: c.opaques.load(Ordering::Relaxed),
            commits: c.commits.load(Ordering::Relaxed),
            commit_records: c.commit_records.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Is this (existing) upper directory opaque?
    fn is_opaque(&self, upper_dir: &VPath, creds: &Credentials) -> bool {
        self.fs
            .get_xattr(upper_dir.as_str(), OPAQUE_XATTR, creds)
            .map(|v| v == b"y")
            .unwrap_or(false)
    }

    /// Resolve an overlay path against all layers. Intermediate symlinks
    /// *within one layer* are handled by delegation (the remainder of the
    /// path is rebased into that layer and the plain fs resolves it);
    /// final-component symlinks are reported as-is (lstat semantics).
    fn walk(&self, path: &str, creds: &Credentials) -> VfsResult<Loc> {
        let comps = squash(path)?;
        let mut upper_path = self.upper.clone();
        let mut upper_live = true;
        let mut lows: Vec<VPath> = self.lowers.clone();
        let n = comps.len();
        if n == 0 {
            let up_st = self.fs.lstat(upper_path.as_str(), creds).ok();
            let low = lows.first().and_then(|p| {
                self.fs
                    .lstat(p.as_str(), creds)
                    .ok()
                    .map(|st| (p.clone(), st))
            });
            return Ok(Loc::Merged(Merged {
                up: upper_path,
                up_st,
                wh: false,
                low,
                low_dirs: lows,
            }));
        }
        for (i, comp) in comps.iter().enumerate() {
            let last = i + 1 == n;
            let wh = upper_live
                && self
                    .fs
                    .exists(upper_path.join(&wh_name(comp)).as_str(), creds);
            let up_child_path = upper_path.join(comp);
            let up_child = if upper_live {
                self.fs.lstat(up_child_path.as_str(), creds).ok()
            } else {
                None
            };
            let mut low_children: Vec<(VPath, FileStat)> = Vec::new();
            if !wh {
                for lp in &lows {
                    let p = lp.join(comp);
                    if let Ok(st) = self.fs.lstat(p.as_str(), creds) {
                        low_children.push((p, st));
                    }
                }
            }
            if last {
                let opaque = matches!(&up_child, Some(st) if st.is_dir())
                    && self.is_opaque(&up_child_path, creds);
                let mut low_dirs = Vec::new();
                if !opaque {
                    for (p, st) in &low_children {
                        if st.is_dir() {
                            low_dirs.push(p.clone());
                        } else {
                            break; // a non-dir lower cuts deeper layers
                        }
                    }
                }
                let low = if opaque {
                    None
                } else {
                    low_children.into_iter().next()
                };
                return Ok(Loc::Merged(Merged {
                    up: up_child_path,
                    up_st: up_child,
                    wh,
                    low,
                    low_dirs,
                }));
            }
            match up_child {
                Some(st) if st.is_dir() => {
                    let opaque = self.is_opaque(&up_child_path, creds);
                    lows = if opaque {
                        Vec::new()
                    } else {
                        let mut v = Vec::new();
                        for (p, cst) in low_children {
                            if cst.is_dir() {
                                v.push(p);
                            } else {
                                break;
                            }
                        }
                        v
                    };
                    upper_path = up_child_path;
                }
                Some(_) => {
                    // A non-dir (symlink or file) mid-path in the upper
                    // layer: the plain fs finishes resolution inside it.
                    return Ok(Loc::Delegate(
                        join_rest(&up_child_path, &comps[i + 1..]),
                        true,
                    ));
                }
                None => {
                    upper_path = up_child_path;
                    if wh || low_children.is_empty() {
                        // Intermediate is missing entirely: the final
                        // component cannot exist in any layer.
                        return Ok(Loc::Merged(Merged {
                            up: join_rest(&upper_path, &comps[i + 1..]),
                            up_st: None,
                            wh: false,
                            low: None,
                            low_dirs: Vec::new(),
                        }));
                    }
                    upper_live = false;
                    let first_is_dir = low_children[0].1.is_dir();
                    if first_is_dir {
                        let mut v = Vec::new();
                        for (p, cst) in low_children {
                            if cst.is_dir() {
                                v.push(p);
                            } else {
                                break;
                            }
                        }
                        lows = v;
                    } else {
                        // Non-dir mid-path in the topmost lower layer:
                        // delegate the remainder into that layer.
                        let (p, _) = low_children.into_iter().next().unwrap();
                        return Ok(Loc::Delegate(join_rest(&p, &comps[i + 1..]), false));
                    }
                }
            }
        }
        unreachable!("loop returns on the last component")
    }

    /// Resolve to the visible layer path or `ENOENT`.
    fn visible_path(&self, path: &str, creds: &Credentials) -> VfsResult<VPath> {
        match self.walk(path, creds)? {
            Loc::Delegate(p, _) => Ok(p),
            Loc::Merged(m) => match m.visible() {
                Some((p, _)) => Ok(p.clone()),
                None => err(Errno::ENOENT, path),
            },
        }
    }

    // ------------------------------------------------------------------
    // Read side
    // ------------------------------------------------------------------

    /// `stat` through the merged view (follows a final symlink).
    pub fn stat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        let p = self.visible_path(path, creds)?;
        self.fs.stat(p.as_str(), creds)
    }

    /// `lstat` through the merged view.
    pub fn lstat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        let p = self.visible_path(path, creds)?;
        self.fs.lstat(p.as_str(), creds)
    }

    /// Does the path exist in the merged view?
    pub fn exists(&self, path: &str, creds: &Credentials) -> bool {
        self.stat(path, creds).is_ok()
    }

    /// Read a whole file through the merged view.
    pub fn read_file(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        let p = self.visible_path(path, creds)?;
        self.fs.read_file(p.as_str(), creds)
    }

    /// Read a whole file as UTF-8 through the merged view.
    pub fn read_to_string(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        let p = self.visible_path(path, creds)?;
        self.fs.read_to_string(p.as_str(), creds)
    }

    /// Read a symlink target through the merged view.
    pub fn readlink(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        let p = self.visible_path(path, creds)?;
        self.fs.readlink(p.as_str(), creds)
    }

    /// Read an extended attribute through the merged view.
    pub fn get_xattr(&self, path: &str, name: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        let p = self.visible_path(path, creds)?;
        self.fs.get_xattr(p.as_str(), name, creds)
    }

    /// Merged directory listing: lower layers bottom-up, upper layer last;
    /// whiteouts hide their lower twins and are themselves invisible.
    pub fn readdir(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<DirEntry>> {
        let m = match self.walk(path, creds)? {
            Loc::Delegate(p, _) => return self.fs.readdir(p.as_str(), creds),
            Loc::Merged(m) => m,
        };
        let Some((vp, vst)) = m.visible() else {
            return err(Errno::ENOENT, path);
        };
        if vst.is_symlink() {
            return self.fs.readdir(vp.as_str(), creds); // fs follows it
        }
        if !vst.is_dir() {
            return err(Errno::ENOTDIR, path);
        }
        let mut merged: BTreeMap<String, DirEntry> = BTreeMap::new();
        for lp in m.low_dirs.iter().rev() {
            for e in self.fs.readdir(lp.as_str(), creds)? {
                if e.name.starts_with(WHITEOUT_PREFIX) {
                    continue;
                }
                merged.insert(e.name.clone(), e);
            }
        }
        if m.up_st.as_ref().map(|s| s.is_dir()).unwrap_or(false) {
            let ups = self.fs.readdir(m.up.as_str(), creds)?;
            for e in &ups {
                if let Some(hidden) = e.name.strip_prefix(WHITEOUT_PREFIX) {
                    merged.remove(hidden);
                }
            }
            for e in ups {
                if e.name.starts_with(WHITEOUT_PREFIX) {
                    continue;
                }
                merged.insert(e.name.clone(), e);
            }
        }
        Ok(merged.into_values().collect())
    }

    /// Watch this view's writes. Upper-layer paths are private to the
    /// view, so events here are exactly this view's mutations — per-view
    /// notification routing with no filtering layer.
    pub fn watch(&self, path: &str) -> WatchBuilder<'_> {
        let comps = squash(path).unwrap_or_default();
        let p = join_rest(&self.upper, &comps);
        self.fs.watch(p.as_str())
    }

    // ------------------------------------------------------------------
    // Copy-up machinery
    // ------------------------------------------------------------------

    /// Collect xattrs (minus the opaque marker) and the ACL of a layer
    /// object, probed as root: the caller already passed the overlay's
    /// permission checks, and copy-up must preserve metadata it could not
    /// necessarily read.
    fn copy_meta(&self, layer_path: &VPath) -> (Vec<(String, Vec<u8>)>, Option<Acl>) {
        let root = Credentials::root();
        let mut xattrs = Vec::new();
        if let Ok(names) = self.fs.list_xattr(layer_path.as_str(), &root) {
            for n in names {
                if n == OPAQUE_XATTR {
                    continue;
                }
                if let Ok(v) = self.fs.get_xattr(layer_path.as_str(), &n, &root) {
                    xattrs.push((n, v));
                }
            }
        }
        let acl = self.fs.get_acl(layer_path.as_str(), &root).unwrap_or(None);
        (xattrs, acl)
    }

    /// Require write+search permission on the *merged* directory at
    /// `dir` — the overlay-level permission gate for create/delete, the
    /// same check kernel overlayfs makes against the merged dir.
    fn require_dir_write(&self, dir: &VPath, creds: &Credentials) -> VfsResult<()> {
        let (p, st) = match self.walk(dir.as_str(), creds)? {
            Loc::Delegate(p, _) => {
                let st = self.fs.stat(p.as_str(), creds)?;
                (p, st)
            }
            Loc::Merged(m) => match m.visible() {
                Some((p, st)) if st.is_symlink() => {
                    let followed = self.fs.stat(p.as_str(), creds)?;
                    (p.clone(), followed)
                }
                Some((p, st)) => (p.clone(), st.clone()),
                None => return err(Errno::ENOENT, dir.as_str()),
            },
        };
        if !st.is_dir() {
            return err(Errno::ENOTDIR, dir.as_str());
        }
        let acl = self
            .fs
            .get_acl(p.as_str(), &Credentials::root())
            .unwrap_or(None);
        let ok = check_access(creds, st.uid, st.gid, st.mode, acl.as_ref(), Access::Write)
            && check_access(creds, st.uid, st.gid, st.mode, acl.as_ref(), Access::Exec);
        if ok {
            Ok(())
        } else {
            err(Errno::EACCES, dir.as_str())
        }
    }

    /// Plan `Mkdir` steps for every upper-chain directory missing along
    /// `comps`, each mirroring the visible lower directory's identity.
    /// Returns the upper path of the last component.
    fn plan_upper_chain(
        &self,
        comps: &[String],
        creds: &Credentials,
        ops: &mut Vec<BatchOp>,
    ) -> VfsResult<VPath> {
        let mut up = self.upper.clone();
        for i in 0..comps.len() {
            let sub = opath(&comps[..=i]);
            let m = match self.walk(sub.as_str(), creds)? {
                Loc::Merged(m) => m,
                Loc::Delegate(..) => return err(Errno::ENOTDIR, sub.as_str()),
            };
            up = m.up.clone();
            match &m.up_st {
                Some(st) if st.is_dir() => {}
                Some(_) => return err(Errno::ENOTDIR, sub.as_str()),
                None => {
                    let low = if m.wh { None } else { m.low.clone() };
                    let Some((lp, lst)) = low else {
                        return err(Errno::ENOENT, sub.as_str());
                    };
                    if !lst.is_dir() {
                        return err(Errno::ENOTDIR, sub.as_str());
                    }
                    let (xattrs, _) = self.copy_meta(&lp);
                    ops.push(BatchOp::Mkdir {
                        path: m.up.clone(),
                        mode: lst.mode,
                        uid: lst.uid,
                        gid: lst.gid,
                        xattrs,
                    });
                }
            }
        }
        Ok(up)
    }

    /// Make `path` writable in the upper layer and return its upper path:
    /// already-upper is a no-op, a lower object is copied up (directory
    /// chain + full content + metadata) in one atomic batch, symlinks are
    /// followed through the merged view. With `create`, an absent path is
    /// prepared for creation (parent chain + whiteout clearing) after a
    /// write-permission check on the merged parent.
    fn prepare_write(&self, path: &str, creds: &Credentials, create: bool) -> VfsResult<VPath> {
        self.prepare_write_hops(path, creds, create, 0)
    }

    fn prepare_write_hops(
        &self,
        path: &str,
        creds: &Credentials,
        create: bool,
        hops: u32,
    ) -> VfsResult<VPath> {
        if hops > MAX_OVERLAY_HOPS {
            return err(Errno::ELOOP, path);
        }
        let comps = squash(path)?;
        let m = match self.walk(path, creds)? {
            Loc::Delegate(p, true) => return Ok(p),
            Loc::Delegate(_, false) => return err(Errno::EROFS, path),
            Loc::Merged(m) => m,
        };
        if let Some(st) = &m.up_st {
            if st.is_symlink() {
                let target = self.fs.readlink(m.up.as_str(), creds)?;
                let next = self.resolve_link(&comps, &target);
                return self.prepare_write_hops(next.as_str(), creds, create, hops + 1);
            }
            return Ok(m.up);
        }
        let low = if m.wh { None } else { m.low.clone() };
        match low {
            Some((lp, lst)) if lst.is_symlink() => {
                let target = self.fs.readlink(lp.as_str(), creds)?;
                let next = self.resolve_link(&comps, &target);
                self.prepare_write_hops(next.as_str(), creds, create, hops + 1)
            }
            Some((_, lst)) if lst.is_dir() => {
                // Directory copy-up (chmod/chown/xattr on a lower dir).
                let mut ops = Vec::new();
                self.plan_upper_chain(&comps, creds, &mut ops)?;
                if !ops.is_empty() {
                    self.fs.apply_batch(&ops, creds, false)?;
                    self.counters.copy_ups.fetch_add(1, Ordering::Relaxed);
                }
                Ok(m.up)
            }
            Some((lp, lst)) => {
                // Regular-file copy-up: chain + content + metadata, one
                // transaction. Content always comes along so a crash
                // between copy-up and the caller's write leaves the view
                // exactly as it was.
                let mut ops = Vec::new();
                self.plan_upper_chain(&comps[..comps.len() - 1], creds, &mut ops)?;
                let data = self.fs.read_file(lp.as_str(), &Credentials::root())?;
                let (xattrs, acl) = self.copy_meta(&lp);
                ops.push(BatchOp::PutFile {
                    path: m.up.clone(),
                    data,
                    mode: lst.mode,
                    uid: lst.uid,
                    gid: lst.gid,
                    xattrs,
                    acl,
                });
                let rep = self.fs.apply_batch(&ops, creds, false)?;
                self.counters.copy_ups.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .copy_up_bytes
                    .fetch_add(rep.bytes, Ordering::Relaxed);
                Ok(m.up)
            }
            None => {
                if !create {
                    return err(Errno::ENOENT, path);
                }
                if comps.is_empty() {
                    return err(Errno::EEXIST, path);
                }
                let parent = &comps[..comps.len() - 1];
                self.require_dir_write(&opath(parent), creds)?;
                let mut ops = Vec::new();
                self.plan_upper_chain(parent, creds, &mut ops)?;
                if m.wh {
                    ops.push(BatchOp::Remove {
                        path: wh_path(&m.up),
                    });
                }
                if !ops.is_empty() {
                    self.fs.apply_batch(&ops, creds, false)?;
                }
                Ok(m.up)
            }
        }
    }

    /// Where a symlink at `comps` points, as an overlay path: absolute
    /// targets restart at the overlay root, relative ones resolve against
    /// the link's parent.
    fn resolve_link(&self, comps: &[String], target: &str) -> VPath {
        if target.starts_with('/') {
            VPath::new(target)
        } else {
            let parent = if comps.is_empty() {
                VPath::root()
            } else {
                opath(&comps[..comps.len() - 1])
            };
            parent.join_path(target)
        }
    }

    // ------------------------------------------------------------------
    // Write side
    // ------------------------------------------------------------------

    /// Open a file in the view. Write-ish flags trigger copy-up (or
    /// creation) first; the descriptor then addresses the upper file.
    pub fn open(&self, path: &str, flags: OpenFlags, creds: &Credentials) -> VfsResult<Fd> {
        if !(flags.write || flags.create || flags.truncate || flags.append) {
            let p = self.visible_path(path, creds)?;
            return self.fs.open(p.as_str(), flags, creds);
        }
        if flags.create && flags.excl && self.exists(path, creds) {
            return err(Errno::EEXIST, path);
        }
        let up = self.prepare_write(path, creds, flags.create)?;
        self.fs.open(up.as_str(), flags, creds)
    }

    /// Create-or-truncate a file with `data` (copy-up first when needed).
    pub fn write_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        let up = self.prepare_write(path, creds, true)?;
        self.fs.write_file(up.as_str(), data, creds)
    }

    /// Append to a file (copy-up first when needed).
    pub fn append_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        let up = self.prepare_write(path, creds, true)?;
        self.fs.append_file(up.as_str(), data, creds)
    }

    /// Truncate a file in the view.
    pub fn truncate(&self, path: &str, len: u64, creds: &Credentials) -> VfsResult<()> {
        let up = self.prepare_write(path, creds, false)?;
        self.fs.truncate(up.as_str(), len, creds)
    }

    /// Change permission bits (copies the object up first).
    pub fn chmod(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        let up = self.prepare_write(path, creds, false)?;
        self.fs.chmod(up.as_str(), mode, creds)
    }

    /// Change ownership (copies the object up first).
    pub fn chown(
        &self,
        path: &str,
        uid: Option<Uid>,
        gid: Option<Gid>,
        creds: &Credentials,
    ) -> VfsResult<()> {
        let up = self.prepare_write(path, creds, false)?;
        self.fs.chown(up.as_str(), uid, gid, creds)
    }

    /// Replace the ACL (copies the object up first).
    pub fn set_acl(&self, path: &str, acl: Option<Acl>, creds: &Credentials) -> VfsResult<()> {
        let up = self.prepare_write(path, creds, false)?;
        self.fs.set_acl(up.as_str(), acl, creds)
    }

    /// Set an extended attribute (copies the object up first).
    pub fn set_xattr(
        &self,
        path: &str,
        name: &str,
        value: &[u8],
        creds: &Credentials,
    ) -> VfsResult<()> {
        let up = self.prepare_write(path, creds, false)?;
        self.fs.set_xattr(up.as_str(), name, value, creds)
    }

    /// Create a directory in the view. Over a whiteout, the new directory
    /// is marked opaque so the deleted lower contents stay hidden.
    pub fn mkdir(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        let comps = squash(path)?;
        if comps.is_empty() {
            return err(Errno::EEXIST, path);
        }
        let m = match self.walk(path, creds)? {
            Loc::Delegate(p, true) => return self.fs.mkdir(p.as_str(), mode, creds),
            Loc::Delegate(_, false) => return err(Errno::EROFS, path),
            Loc::Merged(m) => m,
        };
        if m.visible().is_some() {
            return err(Errno::EEXIST, path);
        }
        let parent = &comps[..comps.len() - 1];
        self.require_dir_write(&opath(parent), creds)?;
        let mut ops = Vec::new();
        self.plan_upper_chain(parent, creds, &mut ops)?;
        let mut xattrs = Vec::new();
        if m.wh {
            ops.push(BatchOp::Remove {
                path: wh_path(&m.up),
            });
            xattrs.push((OPAQUE_XATTR.to_string(), b"y".to_vec()));
        }
        ops.push(BatchOp::Mkdir {
            path: m.up.clone(),
            mode,
            uid: creds.uid,
            gid: creds.gid,
            xattrs,
        });
        self.fs.apply_batch(&ops, creds, false)?;
        if m.wh {
            self.counters.opaques.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// `mkdir -p` through the view.
    pub fn mkdir_all(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        let comps = squash(path)?;
        for i in 0..comps.len() {
            let sub = opath(&comps[..=i]);
            match self.stat(sub.as_str(), creds) {
                Ok(st) if st.is_dir() => {}
                Ok(_) => return err(Errno::ENOTDIR, sub.as_str()),
                Err(_) => self.mkdir(sub.as_str(), mode, creds)?,
            }
        }
        Ok(())
    }

    /// Unlink a file or symlink: an upper object is removed, a lower one
    /// is hidden behind a whiteout — both in one transaction.
    pub fn unlink(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        let comps = squash(path)?;
        if comps.is_empty() {
            return err(Errno::EISDIR, path);
        }
        let m = match self.walk(path, creds)? {
            Loc::Delegate(p, true) => return self.fs.unlink(p.as_str(), creds),
            Loc::Delegate(_, false) => return err(Errno::EROFS, path),
            Loc::Merged(m) => m,
        };
        let Some((_, st)) = m.visible() else {
            return err(Errno::ENOENT, path);
        };
        if st.is_dir() {
            return err(Errno::EISDIR, path);
        }
        let parent = &comps[..comps.len() - 1];
        self.require_dir_write(&opath(parent), creds)?;
        let mut ops = Vec::new();
        if m.up_st.is_some() {
            ops.push(BatchOp::Remove { path: m.up.clone() });
        }
        if m.low.is_some() {
            self.plan_upper_chain(parent, creds, &mut ops)?;
            ops.push(BatchOp::PutFile {
                path: wh_path(&m.up),
                data: Vec::new(),
                mode: Mode(0o000),
                uid: creds.uid,
                gid: creds.gid,
                xattrs: Vec::new(),
                acl: None,
            });
        }
        self.fs.apply_batch(&ops, creds, false)?;
        if m.low.is_some() {
            self.counters.whiteouts.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Remove an empty (in the merged view) directory.
    pub fn rmdir(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        let comps = squash(path)?;
        if comps.is_empty() {
            return err(Errno::EINVAL, path);
        }
        let m = match self.walk(path, creds)? {
            Loc::Delegate(p, true) => return self.fs.rmdir(p.as_str(), creds),
            Loc::Delegate(_, false) => return err(Errno::EROFS, path),
            Loc::Merged(m) => m,
        };
        let Some((_, st)) = m.visible() else {
            return err(Errno::ENOENT, path);
        };
        if !st.is_dir() {
            return err(Errno::ENOTDIR, path);
        }
        if !self.readdir(path, creds)?.is_empty() {
            return err(Errno::ENOTEMPTY, path);
        }
        let parent = &comps[..comps.len() - 1];
        self.require_dir_write(&opath(parent), creds)?;
        let mut ops = Vec::new();
        if m.up_st.is_some() {
            // The physical upper dir may still hold whiteouts; Remove is
            // a subtree remove, which clears them with the dir.
            ops.push(BatchOp::Remove { path: m.up.clone() });
        }
        if m.low.is_some() {
            self.plan_upper_chain(parent, creds, &mut ops)?;
            ops.push(BatchOp::PutFile {
                path: wh_path(&m.up),
                data: Vec::new(),
                mode: Mode(0o000),
                uid: creds.uid,
                gid: creds.gid,
                xattrs: Vec::new(),
                acl: None,
            });
        }
        self.fs.apply_batch(&ops, creds, false)?;
        if m.low.is_some() {
            self.counters.whiteouts.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Create a symlink in the view.
    pub fn symlink(&self, target: &str, linkpath: &str, creds: &Credentials) -> VfsResult<()> {
        let comps = squash(linkpath)?;
        if comps.is_empty() {
            return err(Errno::EEXIST, linkpath);
        }
        let m = match self.walk(linkpath, creds)? {
            Loc::Delegate(p, true) => return self.fs.symlink(target, p.as_str(), creds),
            Loc::Delegate(_, false) => return err(Errno::EROFS, linkpath),
            Loc::Merged(m) => m,
        };
        if m.visible().is_some() {
            return err(Errno::EEXIST, linkpath);
        }
        let parent = &comps[..comps.len() - 1];
        self.require_dir_write(&opath(parent), creds)?;
        let mut ops = Vec::new();
        self.plan_upper_chain(parent, creds, &mut ops)?;
        if m.wh {
            ops.push(BatchOp::Remove {
                path: wh_path(&m.up),
            });
        }
        ops.push(BatchOp::PutSymlink {
            path: m.up.clone(),
            target: target.to_string(),
            uid: creds.uid,
            gid: creds.gid,
        });
        self.fs.apply_batch(&ops, creds, false)?;
        Ok(())
    }

    /// Rename within the view. Directories return `EXDEV` (as kernel
    /// overlayfs does without `redirect_dir`); files and symlinks are
    /// re-materialised at the destination and whiteouted at the source in
    /// one transaction, so the view never shows both or neither.
    pub fn rename(&self, from: &str, to: &str, creds: &Credentials) -> VfsResult<()> {
        let fc = squash(from)?;
        let tc = squash(to)?;
        if fc.is_empty() || tc.is_empty() {
            return err(Errno::EINVAL, from);
        }
        let fm = match self.walk(from, creds)? {
            Loc::Delegate(_, _) => return err(Errno::EXDEV, from),
            Loc::Merged(m) => m,
        };
        let (fp, fst) = match fm.visible() {
            Some((p, s)) => (p.clone(), s.clone()),
            None => return err(Errno::ENOENT, from),
        };
        if fc == tc {
            // POSIX: renaming a file onto itself succeeds and does nothing.
            return Ok(());
        }
        if fst.is_dir() {
            return err(Errno::EXDEV, from);
        }
        let tm = match self.walk(to, creds)? {
            Loc::Delegate(_, _) => return err(Errno::EXDEV, to),
            Loc::Merged(m) => m,
        };
        if let Some((_, tst)) = tm.visible() {
            if tst.is_dir() {
                return err(Errno::EISDIR, to);
            }
        }
        self.require_dir_write(&opath(&fc[..fc.len() - 1]), creds)?;
        self.require_dir_write(&opath(&tc[..tc.len() - 1]), creds)?;
        let mut ops = Vec::new();
        self.plan_upper_chain(&tc[..tc.len() - 1], creds, &mut ops)?;
        if tm.wh {
            ops.push(BatchOp::Remove {
                path: wh_path(&tm.up),
            });
        }
        if tm.up_st.is_some() {
            ops.push(BatchOp::Remove {
                path: tm.up.clone(),
            });
        }
        if fst.is_symlink() {
            let target = self.fs.readlink(fp.as_str(), creds)?;
            ops.push(BatchOp::PutSymlink {
                path: tm.up.clone(),
                target,
                uid: fst.uid,
                gid: fst.gid,
            });
        } else {
            let data = self.fs.read_file(fp.as_str(), &Credentials::root())?;
            let (xattrs, acl) = self.copy_meta(&fp);
            ops.push(BatchOp::PutFile {
                path: tm.up.clone(),
                data,
                mode: fst.mode,
                uid: fst.uid,
                gid: fst.gid,
                xattrs,
                acl,
            });
        }
        if fm.up_st.is_some() {
            ops.push(BatchOp::Remove {
                path: fm.up.clone(),
            });
        }
        if fm.low.is_some() {
            self.plan_upper_chain(&fc[..fc.len() - 1], creds, &mut ops)?;
            ops.push(BatchOp::PutFile {
                path: wh_path(&fm.up),
                data: Vec::new(),
                mode: Mode(0o000),
                uid: creds.uid,
                gid: creds.gid,
                xattrs: Vec::new(),
                acl: None,
            });
        }
        self.fs.apply_batch(&ops, creds, false)?;
        if fm.low.is_some() {
            self.counters.whiteouts.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Atomic view commit
    // ------------------------------------------------------------------

    /// Commit the staged upper layer into the (single) lower base tree
    /// and clear the upper layer, all as **one transaction**: upserts for
    /// upper objects, removals for whiteouts, opaque directories replace
    /// their base twins wholesale, and the upper layer's top-level entries
    /// are removed in the same batch. One `lock_all` acquisition is the
    /// linearization point; one journal `Commit` frame makes the whole
    /// thing replay all-or-nothing. Permissions are enforced against the
    /// base tree (`enforce = true`): a tenant can only commit what its
    /// credentials could have written directly — and a denial leaves both
    /// base and staging untouched.
    ///
    /// Committed files get fresh inodes (rename-commit semantics): open
    /// descriptors and watches on old base files keep the old objects.
    /// Requires exactly one lower layer (`EINVAL` otherwise).
    pub fn commit(&self, creds: &Credentials) -> VfsResult<CommitReport> {
        if self.lowers.len() != 1 {
            return err(Errno::EINVAL, self.upper.as_str());
        }
        let base = self.lowers[0].clone();
        let mut ops = Vec::new();
        let mut whiteouts = 0usize;
        self.plan_commit_dir(&VPath::root(), &base, creds, &mut ops, &mut whiteouts)?;
        let mut cleared = 0usize;
        if let Ok(entries) = self.fs.readdir(self.upper.as_str(), creds) {
            for e in entries {
                ops.push(BatchOp::Remove {
                    path: self.upper.join(&e.name),
                });
                cleared += 1;
            }
        }
        let rep: BatchReport = self.fs.apply_batch(&ops, creds, true)?;
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        self.counters
            .commit_records
            .fetch_add(rep.records as u64, Ordering::Relaxed);
        Ok(CommitReport {
            records: rep.records,
            bytes: rep.bytes,
            whiteouts,
            cleared,
        })
    }

    /// Recursively translate one upper directory into base-tree batch ops.
    fn plan_commit_dir(
        &self,
        rel: &VPath,
        base: &VPath,
        creds: &Credentials,
        ops: &mut Vec<BatchOp>,
        whiteouts: &mut usize,
    ) -> VfsResult<()> {
        let updir = rel
            .rebase(&VPath::root(), &self.upper)
            .unwrap_or_else(|| self.upper.clone());
        let basedir = rel
            .rebase(&VPath::root(), base)
            .unwrap_or_else(|| base.clone());
        let entries = match self.fs.readdir(updir.as_str(), creds) {
            Ok(e) => e,
            Err(e) if e.errno == Errno::ENOENT => return Ok(()), // empty staging
            Err(e) => return Err(e),
        };
        for e in entries {
            if let Some(hidden) = e.name.strip_prefix(WHITEOUT_PREFIX) {
                ops.push(BatchOp::Remove {
                    path: basedir.join(hidden),
                });
                *whiteouts += 1;
                continue;
            }
            let upath = updir.join(&e.name);
            let bpath = basedir.join(&e.name);
            let st = self.fs.lstat(upath.as_str(), creds)?;
            let bst = self.fs.lstat(bpath.as_str(), &Credentials::root()).ok();
            match e.file_type {
                FileType::Directory => {
                    let opaque = self.is_opaque(&upath, creds);
                    let base_is_dir = bst.as_ref().map(|s| s.is_dir()).unwrap_or(false);
                    if opaque || (bst.is_some() && !base_is_dir) {
                        ops.push(BatchOp::Remove {
                            path: bpath.clone(),
                        });
                    }
                    if opaque || !base_is_dir {
                        let (xattrs, _) = self.copy_meta(&upath);
                        ops.push(BatchOp::Mkdir {
                            path: bpath,
                            mode: st.mode,
                            uid: st.uid,
                            gid: st.gid,
                            xattrs,
                        });
                    }
                    self.plan_commit_dir(&rel.join(&e.name), base, creds, ops, whiteouts)?;
                }
                FileType::Regular => {
                    if bst.as_ref().map(|s| s.is_dir()).unwrap_or(false) {
                        ops.push(BatchOp::Remove {
                            path: bpath.clone(),
                        });
                    }
                    let data = self.fs.read_file(upath.as_str(), creds)?;
                    let (xattrs, acl) = self.copy_meta(&upath);
                    ops.push(BatchOp::PutFile {
                        path: bpath,
                        data,
                        mode: st.mode,
                        uid: st.uid,
                        gid: st.gid,
                        xattrs,
                        acl,
                    });
                }
                FileType::Symlink => {
                    if bst.is_some() {
                        ops.push(BatchOp::Remove {
                            path: bpath.clone(),
                        });
                    }
                    let target = self.fs.readlink(upath.as_str(), creds)?;
                    ops.push(BatchOp::PutSymlink {
                        path: bpath,
                        target,
                        uid: st.uid,
                        gid: st.gid,
                    });
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Overlay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Overlay")
            .field("lowers", &self.lowers)
            .field("upper", &self.upper)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Filesystem>, Overlay, Credentials) {
        let fs = Arc::new(Filesystem::builder().shards(1).build());
        let root = Credentials::root();
        fs.mkdir_all("/base/sw1/flows", Mode::DIR_DEFAULT, &root)
            .unwrap();
        fs.write_file("/base/sw1/flows/f1", b"match=*;act=drop\n", &root)
            .unwrap();
        fs.write_file("/base/sw1/ver", b"1\n", &root).unwrap();
        let ov = Overlay::new(fs.clone(), &["/base"], "/views/t1");
        ov.ensure_upper(&root).unwrap();
        (fs, ov, root)
    }

    #[test]
    fn read_through_and_copy_up() {
        let (fs, ov, root) = setup();
        assert_eq!(ov.read_to_string("/sw1/ver", &root).unwrap(), "1\n");
        assert_eq!(ov.stats().copy_ups, 0);

        ov.write_file("/sw1/ver", b"2\n", &root).unwrap();
        assert_eq!(ov.stats().copy_ups, 1);
        // base untouched, view updated
        assert_eq!(fs.read_to_string("/base/sw1/ver", &root).unwrap(), "1\n");
        assert_eq!(ov.read_to_string("/sw1/ver", &root).unwrap(), "2\n");
        // the copied-up chain mirrors the base dirs
        assert!(fs.exists("/views/t1/sw1/ver", &root));
    }

    #[test]
    fn whiteout_hides_lower_and_merged_readdir() {
        let (fs, ov, root) = setup();
        ov.unlink("/sw1/flows/f1", &root).unwrap();
        assert_eq!(ov.stats().whiteouts, 1);
        assert!(!ov.exists("/sw1/flows/f1", &root));
        assert!(fs.exists("/base/sw1/flows/f1", &root));
        assert!(fs.exists("/views/t1/sw1/flows/.wh.f1", &root));
        // merged readdir: whiteout invisible, f1 hidden
        let names: Vec<String> = ov
            .readdir("/sw1/flows", &root)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.is_empty(), "{names:?}");
        // re-create over the whiteout
        ov.write_file("/sw1/flows/f1", b"new\n", &root).unwrap();
        assert_eq!(ov.read_to_string("/sw1/flows/f1", &root).unwrap(), "new\n");
        assert!(!fs.exists("/views/t1/sw1/flows/.wh.f1", &root));
    }

    #[test]
    fn opaque_dir_stops_merging() {
        let (_fs, ov, root) = setup();
        // delete the dir, then recreate it: must come back empty (opaque)
        ov.unlink("/sw1/flows/f1", &root).unwrap();
        ov.rmdir("/sw1/flows", &root).unwrap();
        assert!(!ov.exists("/sw1/flows", &root));
        ov.mkdir("/sw1/flows", Mode::DIR_DEFAULT, &root).unwrap();
        assert_eq!(ov.stats().opaques, 1);
        assert!(ov.readdir("/sw1/flows", &root).unwrap().is_empty());
    }

    #[test]
    fn whiteout_names_are_reserved() {
        let (_fs, ov, root) = setup();
        assert_eq!(
            ov.write_file("/sw1/.wh.x", b"no", &root).unwrap_err().errno,
            Errno::EINVAL
        );
        assert_eq!(
            ov.mkdir("/sw1/.wh.d", Mode::DIR_DEFAULT, &root)
                .unwrap_err()
                .errno,
            Errno::EINVAL
        );
    }

    #[test]
    fn rename_file_is_atomic_dirs_are_exdev() {
        let (_fs, ov, root) = setup();
        ov.rename("/sw1/flows/f1", "/sw1/flows/f2", &root).unwrap();
        assert!(!ov.exists("/sw1/flows/f1", &root));
        assert_eq!(
            ov.read_to_string("/sw1/flows/f2", &root).unwrap(),
            "match=*;act=drop\n"
        );
        assert_eq!(
            ov.rename("/sw1/flows", "/sw1/flows2", &root)
                .unwrap_err()
                .errno,
            Errno::EXDEV
        );
        // POSIX: self-rename is a successful no-op, never a delete.
        ov.rename("/sw1/flows/f2", "/sw1/flows/f2", &root).unwrap();
        assert_eq!(
            ov.read_to_string("/sw1/flows/f2", &root).unwrap(),
            "match=*;act=drop\n"
        );
        assert_eq!(
            ov.rename("/sw1/flows/nope", "/sw1/flows/nope", &root)
                .unwrap_err()
                .errno,
            Errno::ENOENT
        );
    }

    #[test]
    fn commit_is_atomic_and_clears_staging() {
        let (fs, ov, root) = setup();
        ov.write_file("/sw1/ver", b"2\n", &root).unwrap();
        ov.write_file("/sw1/flows/f9", b"match=ip;act=fwd\n", &root)
            .unwrap();
        ov.unlink("/sw1/flows/f1", &root).unwrap();
        let rep = ov.commit(&root).unwrap();
        assert!(rep.records > 0);
        assert_eq!(rep.whiteouts, 1);
        // base now shows the staged state
        assert_eq!(fs.read_to_string("/base/sw1/ver", &root).unwrap(), "2\n");
        assert!(fs.exists("/base/sw1/flows/f9", &root));
        assert!(!fs.exists("/base/sw1/flows/f1", &root));
        // staging cleared, view == base again
        assert!(fs.readdir("/views/t1", &root).unwrap().is_empty());
        assert_eq!(ov.read_to_string("/sw1/ver", &root).unwrap(), "2\n");
        assert_eq!(ov.stats().commits, 1);
    }

    #[test]
    fn commit_enforces_base_permissions() {
        let (fs, ov, root) = setup();
        let tenant = Credentials::user(7, 7);
        // tenant owns its upper layer but not the base tree
        ov.ensure_upper(&tenant).unwrap();
        fs.chmod("/views/t1", Mode(0o755), &root).unwrap();
        // make base world-readable but not writable; let tenant stage
        fs.chmod("/base/sw1", Mode(0o755), &root).unwrap();
        fs.chmod("/base/sw1/ver", Mode(0o644), &root).unwrap();
        // staging works: copy-up into tenant-owned upper
        assert_eq!(
            ov.write_file("/sw1/newfile", b"x\n", &tenant)
                .unwrap_err()
                .errno,
            Errno::EACCES,
            "creating in a root-owned merged dir must be denied"
        );
        // stage a legal edit path: give tenant a writable base subdir
        fs.mkdir("/base/tenant7", Mode(0o755), &root).unwrap();
        fs.chown("/base/tenant7", Some(Uid(7)), Some(Gid(7)), &root)
            .unwrap();
        ov.write_file("/tenant7/cfg", b"a\n", &tenant).unwrap();
        // but also stage an illegal edit by writing into upper directly as
        // root (simulating a bypass attempt), then commit as tenant
        fs.mkdir_all("/views/t1/sw1", Mode::DIR_DEFAULT, &root)
            .unwrap();
        fs.write_file("/views/t1/sw1/ver", b"9\n", &root).unwrap();
        let e = ov.commit(&tenant).unwrap_err();
        assert_eq!(e.errno, Errno::EACCES);
        // denial left the base untouched — atomicity of the refusal
        assert_eq!(fs.read_to_string("/base/sw1/ver", &root).unwrap(), "1\n");
        assert!(!fs.exists("/base/tenant7/cfg", &root));
    }

    #[test]
    fn multi_lower_merging_and_priority() {
        let fs = Arc::new(Filesystem::builder().shards(1).build());
        let root = Credentials::root();
        fs.mkdir_all("/l0/d", Mode::DIR_DEFAULT, &root).unwrap();
        fs.mkdir_all("/l1/d", Mode::DIR_DEFAULT, &root).unwrap();
        fs.write_file("/l0/d/both", b"top\n", &root).unwrap();
        fs.write_file("/l1/d/both", b"bottom\n", &root).unwrap();
        fs.write_file("/l1/d/only1", b"deep\n", &root).unwrap();
        let ov = Overlay::new(fs.clone(), &["/l0", "/l1"], "/up");
        ov.ensure_upper(&root).unwrap();
        assert_eq!(ov.read_to_string("/d/both", &root).unwrap(), "top\n");
        assert_eq!(ov.read_to_string("/d/only1", &root).unwrap(), "deep\n");
        let names: Vec<String> = ov
            .readdir("/d", &root)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["both".to_string(), "only1".to_string()]);
        // commit requires a single lower
        assert_eq!(ov.commit(&root).unwrap_err().errno, Errno::EINVAL);
    }

    #[test]
    fn copy_up_charges_the_writer() {
        let (fs, ov, root) = setup();
        let tenant = Credentials::user(9, 9);
        fs.rctl().set_limits(
            9,
            crate::rctl::AppLimits {
                syscall_tokens: Some(10_000),
                ..Default::default()
            },
        );
        ov.ensure_upper(&tenant).unwrap();
        fs.chmod("/base/sw1/ver", Mode(0o666), &root).unwrap();
        fs.chmod("/base/sw1", Mode(0o777), &root).unwrap();
        fs.chmod("/base", Mode(0o777), &root).unwrap();
        let before = fs.rctl().usage(9).map(|u| u.charged).unwrap_or(0);
        ov.write_file("/sw1/ver", b"2\n", &tenant).unwrap();
        let after = fs.rctl().usage(9).map(|u| u.charged).unwrap_or(0);
        assert!(
            after > before,
            "copy-up syscalls must land on the writer's uid"
        );
    }
}
