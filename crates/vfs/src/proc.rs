//! `/proc`-style read-only introspection mounts (the `/net/.proc` tree).
//!
//! A proc mount is an ordinary directory subtree whose files are
//! *rendered*: each registered file carries a closure producing its current
//! content, and the content is refreshed lazily whenever the file is about
//! to be observed (stat/open/readdir). Like Linux `debugfs`, the tree is
//! out-of-band with respect to accounting:
//!
//! * operations on proc paths are **not** tallied in [`SyscallCounters`] or
//!   the [`crate::metrics::MetricsRegistry`] — so `cat
//!   /net/.proc/vfs/syscalls/total` returns exactly the value the counters
//!   held, undisturbed by the `cat` itself,
//! * refresh writes do **not** emit notify events or trigger semantic
//!   hooks, and
//! * external mutation of anything under a proc mount fails with `EROFS`.
//!
//! The read-only and refresh behaviours are enforced through the existing
//! [`SemanticHook`] mechanism: mounting installs a [`ProcHook`] whose
//! `pre_access`/`validate_mutate` callbacks the filesystem consults like
//! any other hook.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{err, Errno, VfsResult};
use crate::hooks::{HookDepth, SemanticHook};
use crate::path::VPath;
use crate::Filesystem;

/// A render closure producing the current content of one proc file.
pub type ProcRender = Arc<dyn Fn() -> String + Send + Sync>;

thread_local! {
    static PROC_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard marking "we are performing internal proc maintenance" for the
/// current thread: filesystem calls made under it skip syscall accounting,
/// notify emission and the proc read-only check.
pub(crate) struct ProcDepth;

impl ProcDepth {
    pub(crate) fn enter() -> ProcDepth {
        PROC_DEPTH.with(|d| d.set(d.get() + 1));
        ProcDepth
    }

    pub(crate) fn active() -> bool {
        PROC_DEPTH.with(|d| d.get() > 0)
    }
}

impl Drop for ProcDepth {
    fn drop(&mut self) {
        PROC_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

#[derive(Default)]
struct ProcState {
    mounts: Vec<String>,
    files: HashMap<String, ProcRender>,
    /// Per-namespace mount-table renderers (`vfs/mounts`), keyed by the
    /// name the namespace registered under.
    mount_tables: HashMap<String, ProcRender>,
}

/// Registry of proc mounts and their rendered files; one per
/// [`Filesystem`].
#[derive(Default)]
pub struct ProcRegistry {
    state: RwLock<ProcState>,
}

/// Whether `path` lies at or below `prefix` (component-boundary aware).
fn under(path: &str, prefix: &str) -> bool {
    path == prefix || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

impl ProcRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any mount covers `path`.
    pub fn covers(&self, path: &str) -> bool {
        let state = self.state.read();
        if state.mounts.is_empty() {
            return false;
        }
        state.mounts.iter().any(|m| under(path, m))
    }

    /// Whether `prefix` is already a registered mount.
    pub fn has_mount(&self, prefix: &str) -> bool {
        self.state.read().mounts.iter().any(|m| m == prefix)
    }

    /// Whether any mount is registered at all.
    pub fn mounted(&self) -> bool {
        !self.state.read().mounts.is_empty()
    }

    /// Registered mount prefixes.
    pub fn mounts(&self) -> Vec<String> {
        self.state.read().mounts.clone()
    }

    pub(crate) fn add_mount(&self, prefix: &str) {
        let mut state = self.state.write();
        if !state.mounts.iter().any(|m| m == prefix) {
            state.mounts.push(prefix.trim_end_matches('/').to_string());
        }
    }

    pub(crate) fn register(&self, path: &str, render: ProcRender) {
        self.state.write().files.insert(path.to_string(), render);
    }

    /// The render closure for `path`, if one is registered.
    pub fn render(&self, path: &str) -> Option<ProcRender> {
        self.state.read().files.get(path).cloned()
    }

    /// Register (or replace) a namespace's mount-table renderer under
    /// `name`; it becomes a section of the `vfs/mounts` proc file.
    pub fn register_mount_table(&self, name: &str, render: ProcRender) {
        self.state
            .write()
            .mount_tables
            .insert(name.to_string(), render);
    }

    /// Render every registered mount table, sorted by namespace name,
    /// each row prefixed with that name.
    pub fn render_mount_tables(&self) -> String {
        let tables: Vec<(String, ProcRender)> = {
            let state = self.state.read();
            let mut v: Vec<_> = state
                .mount_tables
                .iter()
                .map(|(k, r)| (k.clone(), r.clone()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let mut out = String::new();
        for (name, render) in tables {
            for line in render().lines() {
                out.push_str(&name);
                out.push(' ');
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Registered file paths, sorted.
    pub fn files(&self) -> Vec<String> {
        let mut v: Vec<String> = self.state.read().files.keys().cloned().collect();
        v.sort();
        v
    }
}

/// The [`SemanticHook`] that gives proc mounts their semantics: lazy
/// refresh before reads, `EROFS` on external mutation.
pub struct ProcHook {
    registry: Arc<ProcRegistry>,
}

impl ProcHook {
    /// A hook over `registry`.
    pub fn new(registry: Arc<ProcRegistry>) -> Self {
        ProcHook { registry }
    }
}

impl SemanticHook for ProcHook {
    fn pre_access(&self, fs: &Filesystem, path: &VPath) {
        let p = path.as_str();
        if let Some(render) = self.registry.render(p) {
            let content = render();
            let _h = HookDepth::enter();
            let _p = ProcDepth::enter();
            let _ = fs.write_file(p, content.as_bytes(), &crate::Credentials::root());
        }
    }

    fn validate_mutate(&self, _fs: &Filesystem, path: &VPath) -> VfsResult<()> {
        if !ProcDepth::active() && self.registry.covers(path.as_str()) {
            return err(Errno::EROFS, path.as_str());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_depth_nests() {
        assert!(!ProcDepth::active());
        {
            let _g1 = ProcDepth::enter();
            let _g2 = ProcDepth::enter();
            assert!(ProcDepth::active());
        }
        assert!(!ProcDepth::active());
    }

    #[test]
    fn coverage_respects_component_boundaries() {
        let r = ProcRegistry::new();
        assert!(!r.covers("/net/.proc/x"));
        r.add_mount("/net/.proc");
        assert!(r.covers("/net/.proc"));
        assert!(r.covers("/net/.proc/vfs/syscalls/total"));
        assert!(!r.covers("/net/.process"));
        assert!(!r.covers("/net"));
        assert!(r.has_mount("/net/.proc"));
        assert!(!r.has_mount("/net"));
    }

    #[test]
    fn register_and_render() {
        let r = ProcRegistry::new();
        r.add_mount("/p");
        r.register("/p/answer", Arc::new(|| "42\n".to_string()));
        assert_eq!(r.render("/p/answer").unwrap()(), "42\n");
        assert!(r.render("/p/other").is_none());
        assert_eq!(r.files(), vec!["/p/answer".to_string()]);
    }
}
