//! Sharded inode/handle tables with canonical-order lock acquisition.
//!
//! The filesystem's state is split across `N` lock shards, keyed by inode
//! number (and file-descriptor number for the open-handle table, which
//! lives in the same shards). This reproduces, in-process, the property the
//! paper borrows from the kernel VFS: independent objects are protected by
//! independent locks, so concurrent applications touching different parts
//! of the `/net` tree never serialize on a global lock.
//!
//! Two access disciplines keep the design deadlock-free:
//!
//! * **Hop-by-hop reads** ([`Tables::with_inode`]): path resolution takes
//!   one shard read-lock at a time, copying out what it needs per hop and
//!   releasing before the next hop. At most one lock is ever held.
//! * **Canonical-order writes** ([`Tables::lock`]): a mutation computes the
//!   set of shards it will touch (parent directory, target inode, newly
//!   allocated inode, handle slot), then acquires their write locks in
//!   ascending shard-index order. Every multi-shard writer uses the same
//!   order, so no cycle of waiters can form. Because the world may change
//!   between resolution and locking, mutations re-verify the directory
//!   entry they resolved ([`ShardSet::entry_is`]) and retry from resolution
//!   when it moved — optimistic concurrency exactly like `rename()`'s
//!   lookup/lock/recheck dance in the kernel.
//!
//! A third discipline rides on top of these (PR 8, DESIGN.md §12):
//!
//! * **Optimistic lock-free reads** ([`crate::readpath`]): each shard
//!   carries a seqlock counter, bumped to odd by every write-lock
//!   acquisition and back to even on release. Hot read paths serve
//!   published attribute/handle blocks with **zero** table locks and
//!   validate the counter afterwards, falling back to the locked path on
//!   any conflict. [`Tables::lock_acquisition_count`] makes the win
//!   deterministic ("0 locks per warm stat", E25).
//!
//! With `shards = 1` the table degenerates to the old single global lock
//! and every operation is serialized — the deterministic mode the pinned
//! experiment tables (E4/E5/E19) run under.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::acl::Acl;
use crate::error::{err, Errno, VfsError, VfsResult};
use crate::path::VPath;
use crate::types::{FileType, Gid, Ino, Mode, OpenFlags, Timestamp, Uid};

/// Default shard count: enough to spread an 8–16-thread control plane,
/// small enough that lock-all operations (recursive rmdir, reclaim) stay
/// cheap.
pub(crate) const DEFAULT_SHARDS: usize = 8;

#[derive(Debug)]
pub(crate) enum NodeKind {
    File(Vec<u8>),
    Dir {
        entries: BTreeMap<String, Ino>,
        parent: Ino,
    },
    Symlink(String),
}

#[derive(Debug)]
pub(crate) struct Inode {
    pub kind: NodeKind,
    pub mode: Mode,
    pub uid: Uid,
    pub gid: Gid,
    pub nlink: u32,
    pub mtime: Timestamp,
    pub ctime: Timestamp,
    pub xattrs: BTreeMap<String, Vec<u8>>,
    pub acl: Option<Acl>,
    pub open_count: u32,
}

impl Inode {
    pub fn file_type(&self) -> FileType {
        match self.kind {
            NodeKind::File(_) => FileType::Regular,
            NodeKind::Dir { .. } => FileType::Directory,
            NodeKind::Symlink(_) => FileType::Symlink,
        }
    }

    pub fn size(&self) -> u64 {
        match &self.kind {
            NodeKind::File(d) => d.len() as u64,
            NodeKind::Dir { entries, .. } => entries.len() as u64,
            NodeKind::Symlink(t) => t.len() as u64,
        }
    }

    pub fn dir_entries(&self) -> VfsResult<&BTreeMap<String, Ino>> {
        match &self.kind {
            NodeKind::Dir { entries, .. } => Ok(entries),
            _ => err(Errno::ENOTDIR, ""),
        }
    }

    pub fn dir_entries_mut(&mut self) -> VfsResult<&mut BTreeMap<String, Ino>> {
        match &mut self.kind {
            NodeKind::Dir { entries, .. } => Ok(entries),
            _ => err(Errno::ENOTDIR, ""),
        }
    }
}

pub(crate) struct OpenFile {
    pub ino: Ino,
    pub flags: OpenFlags,
    pub offset: u64,
    pub path: VPath,
    pub wrote: bool,
    /// Uid the handle is charged to; reclaim closes every handle owned by a
    /// killed process.
    pub owner: Uid,
}

/// One lock shard: a slice of the inode table plus a slice of the
/// open-handle table.
#[derive(Default)]
pub(crate) struct Shard {
    pub inodes: HashMap<u64, Inode>,
    pub handles: HashMap<u64, OpenFile>,
}

/// The sharded tables. Ids are allocated from atomics (never reused), so an
/// inode or fd number identifies its shard for its whole lifetime.
pub(crate) struct Tables {
    shards: Box<[RwLock<Shard>]>,
    /// Per-shard sequence counters (seqlock discipline): **odd while a
    /// writer holds the shard's write lock, even otherwise**. [`Tables::lock`]
    /// / [`Tables::lock_all`] bump each acquired shard's counter to odd;
    /// dropping the [`ShardSet`] bumps it back to even *before* the write
    /// guards release. An optimistic reader (see [`crate::readpath`])
    /// snapshots the counter, reads published data without any lock, and
    /// validates that the counter is still the same even value — any
    /// intervening write-lock acquisition is therefore detected, even if the
    /// writer mutated nothing. Counters start at 2 so that 0 can serve as a
    /// never-published sentinel in readpath stamps.
    seqs: Box<[AtomicU64]>,
    next_ino: AtomicU64,
    next_fd: AtomicU64,
    /// Open handles across all shards, maintained at insert/remove time so
    /// the global `max_open_files` check needs no cross-shard pass.
    handle_count: AtomicUsize,
    /// Inode read-lock acquisitions via [`Tables::with_inode`] — the
    /// deterministic cost metric behind the E22 dcache claim (a warm cached
    /// walk takes far fewer of these than a cold hop-by-hop one).
    inode_reads: AtomicU64,
    /// Every shard-lock acquisition on these tables: one per
    /// [`Tables::with_inode`] / [`Tables::with_handle`] /
    /// [`Tables::read_shard`] call and one per shard write-locked by
    /// [`Tables::lock`] / [`Tables::lock_all`]. This is the deterministic
    /// cost metric behind the E25 lock-free read path ("0 locks per warm
    /// stat"); dcache-internal stripe locks and rctl bucket locks are
    /// deliberately excluded — the contended scaling wall is here.
    lock_acquisitions: AtomicU64,
}

impl Tables {
    pub fn new(shards: usize) -> Tables {
        let n = shards.max(1);
        Tables {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            seqs: (0..n).map(|_| AtomicU64::new(2)).collect(),
            next_ino: AtomicU64::new(2),
            next_fd: AtomicU64::new(3),
            handle_count: AtomicUsize::new(0),
            inode_reads: AtomicU64::new(0),
            lock_acquisitions: AtomicU64::new(0),
        }
    }

    /// Total [`Tables::with_inode`] read-lock acquisitions so far.
    pub fn inode_read_count(&self) -> u64 {
        self.inode_reads.load(Ordering::Relaxed)
    }

    /// Total shard-lock acquisitions (read + write) so far.
    pub fn lock_acquisition_count(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Current seqlock value of the shard covering `ino`. Even = no writer
    /// holds the shard; odd = a write-locked mutation is in flight.
    /// `SeqCst` so an optimistic reader's snapshot/validate pair can never
    /// be reordered around its lock-free data reads.
    #[inline]
    pub fn seq_of_ino(&self, ino: Ino) -> u64 {
        self.seqs[self.shard_of_ino(ino)].load(Ordering::SeqCst)
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    pub fn shard_of_ino(&self, ino: Ino) -> usize {
        (ino.0 as usize) % self.shards.len()
    }

    #[inline]
    pub fn shard_of_fd(&self, fd: u64) -> usize {
        (fd as usize) % self.shards.len()
    }

    /// Allocate a fresh inode number (never reused).
    pub fn alloc_ino(&self) -> Ino {
        Ino(self.next_ino.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocate a fresh fd number (never reused).
    pub fn alloc_fd(&self) -> u64 {
        self.next_fd.fetch_add(1, Ordering::Relaxed)
    }

    /// Raise the inode allocator so the next [`Tables::alloc_ino`] returns
    /// at least `floor`. Journal restore installs inodes under their
    /// *original* numbers; advancing the allocator past them keeps the
    /// never-reused guarantee across the crash boundary.
    pub fn ensure_ino_floor(&self, floor: u64) {
        self.next_ino.fetch_max(floor, Ordering::Relaxed);
    }

    /// Raise the fd allocator to at least `floor`. A restored filesystem
    /// starts with an empty handle table; keeping fd numbering past the
    /// pre-crash watermark means a stale descriptor can never alias a new
    /// open — it fails `EBADF` forever.
    pub fn ensure_fd_floor(&self, floor: u64) {
        self.next_fd.fetch_max(floor, Ordering::Relaxed);
    }

    /// Current inode-allocator watermark (the next number to be handed out).
    pub fn ino_watermark(&self) -> u64 {
        self.next_ino.load(Ordering::Relaxed)
    }

    /// Current fd-allocator watermark.
    pub fn fd_watermark(&self) -> u64 {
        self.next_fd.load(Ordering::Relaxed)
    }

    /// Open handles across all shards (exact: maintained atomically at
    /// insert/remove).
    pub fn handle_count(&self) -> usize {
        self.handle_count.load(Ordering::Relaxed)
    }

    /// Reserve one handle slot against `cap`; the caller must either commit
    /// the slot by inserting a handle through a [`ShardSet`] (which does NOT
    /// re-increment) or release it. Returns false when the table is full.
    pub fn try_reserve_handle(&self, cap: usize) -> bool {
        self.handle_count
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                if c >= cap {
                    None
                } else {
                    Some(c + 1)
                }
            })
            .is_ok()
    }

    /// Release a reserved (or freed) handle slot.
    pub fn release_handle_slot(&self) {
        self.handle_count.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn read_shard(&self, idx: usize) -> RwLockReadGuard<'_, Shard> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.shards[idx].read()
    }

    /// Copy data out of one inode under its shard's read lock. The closure
    /// MUST NOT take any other lock. `EIO` when the inode is gone.
    pub fn with_inode<R>(&self, ino: Ino, f: impl FnOnce(&Inode) -> R) -> VfsResult<R> {
        self.with_inode_at(ino, |n, _| f(n))
    }

    /// [`Tables::with_inode`], also handing the closure the shard's current
    /// seqlock value. While the read lock is held no writer can hold the
    /// shard, so the value is even and stable for the whole closure — it is
    /// the stamp an optimistic-cache fill publishes under (see
    /// [`crate::readpath`]): the filled block stays valid exactly until the
    /// next write-lock acquisition bumps the counter.
    pub fn with_inode_at<R>(&self, ino: Ino, f: impl FnOnce(&Inode, u64) -> R) -> VfsResult<R> {
        self.inode_reads.fetch_add(1, Ordering::Relaxed);
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        let idx = self.shard_of_ino(ino);
        let shard = self.shards[idx].read();
        let seq = self.seqs[idx].load(Ordering::SeqCst);
        match shard.inodes.get(&ino.0) {
            Some(n) => Ok(f(n, seq)),
            None => Err(VfsError::new(Errno::EIO, format!("{ino}"))),
        }
    }

    /// Copy data out of one open handle under its shard's read lock.
    pub fn with_handle<R>(&self, fd: u64, f: impl FnOnce(&OpenFile) -> R) -> Option<R> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[self.shard_of_fd(fd)].read();
        shard.handles.get(&fd).map(f)
    }

    /// Write-lock the shards covering `keys`, in ascending shard order
    /// (the canonical order — every multi-shard writer uses it, so no
    /// deadlock is possible). Each acquired shard's seqlock is bumped to
    /// odd; dropping the returned set bumps it back to even before the
    /// guards release.
    pub fn lock(&self, keys: &[LockKey]) -> ShardSet<'_> {
        let mut idxs: Vec<usize> = keys
            .iter()
            .map(|k| match *k {
                LockKey::Ino(i) => self.shard_of_ino(i),
                LockKey::Fd(f) => self.shard_of_fd(f),
            })
            .collect();
        idxs.sort_unstable();
        idxs.dedup();
        let guards = idxs
            .into_iter()
            .map(|i| {
                self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                let g = self.shards[i].write();
                self.seqs[i].fetch_add(1, Ordering::SeqCst); // → odd: writer in
                (i, g)
            })
            .collect();
        ShardSet {
            tables: self,
            guards,
        }
    }

    /// Write-lock every shard, ascending — for whole-tree operations
    /// (recursive rmdir, reclaim, invariant checking).
    pub fn lock_all(&self) -> ShardSet<'_> {
        ShardSet {
            tables: self,
            guards: (0..self.shards.len())
                .map(|i| {
                    self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                    let g = self.shards[i].write();
                    self.seqs[i].fetch_add(1, Ordering::SeqCst); // → odd
                    (i, g)
                })
                .collect(),
        }
    }
}

/// What a [`Tables::lock`] set must cover.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LockKey {
    Ino(Ino),
    Fd(u64),
}

/// A set of write-locked shards, acquired in canonical (ascending) order.
/// All inode/handle access inside a mutation's critical section goes
/// through this, which routes each id to its held guard.
pub(crate) struct ShardSet<'a> {
    tables: &'a Tables,
    guards: Vec<(usize, RwLockWriteGuard<'a, Shard>)>,
}

impl Drop for ShardSet<'_> {
    fn drop(&mut self) {
        // Writer out: restore each shard's seqlock to even while the write
        // guards are still held (the guards in `self.guards` drop after this
        // body), so an odd counter always means "write lock held" and a
        // counter observed even at two points brackets a writer-free window.
        for (i, _) in &self.guards {
            self.tables.seqs[*i].fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl ShardSet<'_> {
    fn guard(&self, idx: usize) -> VfsResult<&Shard> {
        match self.guards.binary_search_by_key(&idx, |(i, _)| *i) {
            Ok(pos) => Ok(&self.guards[pos].1),
            Err(_) => err(Errno::EIO, "shard not locked"),
        }
    }

    fn guard_mut(&mut self, idx: usize) -> VfsResult<&mut Shard> {
        match self.guards.binary_search_by_key(&idx, |(i, _)| *i) {
            Ok(pos) => Ok(&mut self.guards[pos].1),
            Err(_) => err(Errno::EIO, "shard not locked"),
        }
    }

    pub fn inode(&self, ino: Ino) -> VfsResult<&Inode> {
        self.guard(self.tables.shard_of_ino(ino))?
            .inodes
            .get(&ino.0)
            .ok_or_else(|| VfsError::new(Errno::EIO, format!("{ino}")))
    }

    pub fn inode_mut(&mut self, ino: Ino) -> VfsResult<&mut Inode> {
        let idx = self.tables.shard_of_ino(ino);
        self.guard_mut(idx)?
            .inodes
            .get_mut(&ino.0)
            .ok_or_else(|| VfsError::new(Errno::EIO, format!("{ino}")))
    }

    pub fn insert_inode(&mut self, ino: Ino, inode: Inode) {
        let idx = self.tables.shard_of_ino(ino);
        self.guard_mut(idx)
            .expect("new inode's shard must be locked")
            .inodes
            .insert(ino.0, inode);
    }

    pub fn remove_inode(&mut self, ino: Ino) -> Option<Inode> {
        let idx = self.tables.shard_of_ino(ino);
        self.guard_mut(idx).ok()?.inodes.remove(&ino.0)
    }

    pub fn handle(&self, fd: u64) -> Option<&OpenFile> {
        self.guard(self.tables.shard_of_fd(fd))
            .ok()?
            .handles
            .get(&fd)
    }

    pub fn handle_mut(&mut self, fd: u64) -> Option<&mut OpenFile> {
        let idx = self.tables.shard_of_fd(fd);
        self.guard_mut(idx).ok()?.handles.get_mut(&fd)
    }

    /// Insert a handle whose slot was already reserved via
    /// [`Tables::try_reserve_handle`] (does not bump the global count).
    pub fn insert_handle_reserved(&mut self, fd: u64, h: OpenFile) {
        let idx = self.tables.shard_of_fd(fd);
        self.guard_mut(idx)
            .expect("new handle's shard must be locked")
            .handles
            .insert(fd, h);
    }

    /// Remove a handle, releasing its global slot.
    pub fn remove_handle(&mut self, fd: u64) -> Option<OpenFile> {
        let idx = self.tables.shard_of_fd(fd);
        let h = self.guard_mut(idx).ok()?.handles.remove(&fd);
        if h.is_some() {
            self.tables.release_handle_slot();
        }
        h
    }

    /// Optimistic-concurrency check: does `parent` still hold exactly the
    /// directory-entry binding the caller resolved before locking? When this
    /// returns false the caller must drop the set and retry from resolution.
    pub fn entry_is(&self, parent: Ino, name: &str, expect: Option<Ino>) -> bool {
        match self.inode(parent) {
            Ok(node) => match &node.kind {
                NodeKind::Dir { entries, .. } => entries.get(name).copied() == expect,
                _ => false,
            },
            Err(_) => false,
        }
    }

    /// Every fd owned by `uid`, across all locked shards, sorted. Only
    /// meaningful on a [`Tables::lock_all`] set.
    pub fn fds_of(&self, uid: Uid) -> Vec<u64> {
        let mut fds: Vec<u64> = self
            .guards
            .iter()
            .flat_map(|(_, s)| {
                s.handles
                    .iter()
                    .filter(|(_, h)| h.owner == uid)
                    .map(|(fd, _)| *fd)
            })
            .collect();
        fds.sort_unstable();
        fds
    }

    /// Every inode id present, sorted. Only meaningful on a lock-all set.
    pub fn all_inos(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .guards
            .iter()
            .flat_map(|(_, s)| s.inodes.keys().copied())
            .collect();
        v.sort_unstable();
        v
    }

    /// Total open handles present. Only meaningful on a lock-all set.
    pub fn total_handles(&self) -> usize {
        self.guards.iter().map(|(_, s)| s.handles.len()).sum()
    }

    /// The target inode of every open handle, one entry per handle. Only
    /// meaningful on a lock-all set.
    pub fn handle_targets(&self) -> Vec<Ino> {
        self.guards
            .iter()
            .flat_map(|(_, s)| s.handles.values().map(|h| h.ino))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inode() -> Inode {
        Inode {
            kind: NodeKind::File(Vec::new()),
            mode: Mode::FILE_DEFAULT,
            uid: Uid(0),
            gid: Gid(0),
            nlink: 1,
            mtime: Timestamp(0),
            ctime: Timestamp(0),
            xattrs: BTreeMap::new(),
            acl: None,
            open_count: 0,
        }
    }

    #[test]
    fn ids_route_to_stable_shards() {
        let t = Tables::new(4);
        for raw in 1..64u64 {
            assert_eq!(t.shard_of_ino(Ino(raw)), (raw % 4) as usize);
            assert_eq!(t.shard_of_fd(raw), (raw % 4) as usize);
        }
        assert_eq!(Tables::new(0).shard_count(), 1); // clamped
    }

    #[test]
    fn lock_orders_and_dedupes() {
        let t = Tables::new(8);
        let set = t.lock(&[
            LockKey::Ino(Ino(13)),
            LockKey::Ino(Ino(5)),
            LockKey::Fd(13),
            LockKey::Ino(Ino(21)),
        ]);
        let idxs: Vec<usize> = set.guards.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![5]); // 13%8, 5%8, 21%8 all == 5
        drop(set);
        let set = t.lock(&[LockKey::Ino(Ino(7)), LockKey::Ino(Ino(2))]);
        let idxs: Vec<usize> = set.guards.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![2, 7]);
    }

    #[test]
    fn shardset_rejects_unlocked_shard() {
        let t = Tables::new(8);
        let set = t.lock(&[LockKey::Ino(Ino(1))]);
        assert_eq!(set.inode(Ino(2)).unwrap_err().errno, Errno::EIO);
    }

    #[test]
    fn handle_slot_reservation_is_exact() {
        let t = Tables::new(2);
        assert!(t.try_reserve_handle(2));
        assert!(t.try_reserve_handle(2));
        assert!(!t.try_reserve_handle(2));
        t.release_handle_slot();
        assert!(t.try_reserve_handle(2));
        assert_eq!(t.handle_count(), 2);
    }

    #[test]
    fn seqlock_is_odd_exactly_while_write_locked() {
        let t = Tables::new(4);
        let ino = Ino(6); // shard 2
        let s0 = t.seq_of_ino(ino);
        assert_eq!(s0 % 2, 0, "quiescent seq must be even");
        assert_eq!(s0, 2, "seqs start at 2 (0 = never-published sentinel)");
        {
            let set = t.lock(&[LockKey::Ino(ino)]);
            assert_eq!(t.seq_of_ino(ino), s0 + 1, "odd while write-locked");
            // Untouched shards keep their counters.
            assert_eq!(t.seq_of_ino(Ino(7)), 2);
            drop(set);
        }
        assert_eq!(t.seq_of_ino(ino), s0 + 2, "even again after drop");
        // lock_all bumps every shard once (odd), drop restores all.
        drop(t.lock_all());
        for raw in 0..4u64 {
            assert_eq!(t.seq_of_ino(Ino(raw)) % 2, 0);
        }
    }

    #[test]
    fn lock_acquisitions_count_reads_and_per_shard_writes() {
        let t = Tables::new(4);
        let base = t.lock_acquisition_count();
        let ino = t.alloc_ino();
        {
            let mut set = t.lock(&[LockKey::Ino(ino)]);
            set.insert_inode(ino, inode());
        }
        assert_eq!(t.lock_acquisition_count(), base + 1); // one shard write
        t.with_inode(ino, |_| ()).unwrap();
        assert_eq!(t.lock_acquisition_count(), base + 2);
        let _ = t.with_handle(99, |_| ());
        assert_eq!(t.lock_acquisition_count(), base + 3);
        // A two-shard write set is two acquisitions; lock_all is one per shard.
        drop(t.lock(&[LockKey::Ino(Ino(4)), LockKey::Ino(Ino(5))]));
        assert_eq!(t.lock_acquisition_count(), base + 5);
        drop(t.lock_all());
        assert_eq!(t.lock_acquisition_count(), base + 9);
    }

    #[test]
    fn with_inode_at_sees_a_stable_even_seq() {
        let t = Tables::new(2);
        let ino = t.alloc_ino();
        {
            let mut set = t.lock(&[LockKey::Ino(ino)]);
            set.insert_inode(ino, inode());
        }
        let outside = t.seq_of_ino(ino);
        let inside = t.with_inode_at(ino, |_, seq| seq).unwrap();
        assert_eq!(inside, outside);
        assert_eq!(inside % 2, 0);
    }

    #[test]
    fn insert_and_entry_check() {
        let t = Tables::new(4);
        let ino = t.alloc_ino();
        {
            let mut set = t.lock(&[LockKey::Ino(ino)]);
            set.insert_inode(ino, inode());
            assert!(set.inode(ino).is_ok());
        }
        let got = t.with_inode(ino, |n| n.nlink).unwrap();
        assert_eq!(got, 1);
    }
}
