//! # yanc-vfs — the virtual file system substrate
//!
//! An in-memory, POSIX-style virtual file system that stands in for
//! Linux VFS + FUSE in the yanc reproduction (*Applying Operating System
//! Principles to SDN Controller Design*, HotNets 2013). The paper's whole
//! thesis is that a file system — with its permissions, notification,
//! namespaces and tooling — is already most of an SDN controller; this
//! crate supplies that file system as a deterministic, embeddable library:
//!
//! * **inodes, directories, symlinks, hard links** with POSIX lookup
//!   semantics (`..` resolution, `ELOOP` limits, sticky bits, atomic
//!   rename-with-replace),
//! * **unix permissions + POSIX.1e-style ACLs + extended attributes**
//!   (paper §5.1),
//! * **inotify/fanotify-style change notification** over crossbeam channels
//!   (paper §5.2),
//! * **mount namespaces / bind mounts** for view isolation (paper §5.3),
//! * **semantic-directory hooks** so a schema layer can auto-populate
//!   objects on `mkdir` and make object removal recursive (paper §3.1),
//! * **per-operation syscall counters**, the measurement instrument for the
//!   paper's §8.1 context-switch-cost argument,
//! * **deterministic latency metrics + `/proc`-style introspection mounts**
//!   ([`metrics`], [`proc`]): a virtual-clock cost model feeds per-operation
//!   histograms, and `mount_proc` exposes counters/histograms/notify state
//!   as readable files under e.g. `/net/.proc`.
//!
//! ```
//! use std::sync::Arc;
//! use yanc_vfs::{Filesystem, Credentials, Mode, EventMask};
//!
//! let fs = Arc::new(Filesystem::new());
//! let creds = Credentials::root();
//! fs.mkdir_all("/net/switches/sw1/ports/p2", Mode::DIR_DEFAULT, &creds).unwrap();
//! let watch = fs.watch("/net").subtree().mask(EventMask::ALL).register().unwrap();
//!
//! // Bring a port down exactly as the paper does: echo 1 > config.port_down
//! fs.write_file("/net/switches/sw1/ports/p2/config.port_down", b"1\n", &creds).unwrap();
//!
//! assert_eq!(fs.read_to_string("/net/switches/sw1/ports/p2/config.port_down",
//!                              &creds).unwrap(), "1\n");
//! assert!(watch.receiver().try_iter().count() > 0); // a driver would react
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acl;
pub mod counter;
pub mod dcache;
pub mod error;
pub mod fs;
pub mod hooks;
pub mod journal;
pub mod metrics;
pub mod namespace;
pub mod notify;
pub mod overlay;
pub mod path;
pub mod poll;
pub mod proc;
pub mod rctl;
mod readpath;
mod shard;
pub mod types;

pub use acl::{check_access, Acl, AclEntry};
pub use counter::{CounterSnapshot, OpKind, SyscallCounters};
pub use dcache::DcacheStats;
pub use error::{Errno, VfsError, VfsResult};
pub use fs::{
    FdInfo, Filesystem, FsBuilder, FsCheckReport, Limits, ReclaimReport, WatchBuilder, WatchGuard,
    MAX_SYMLINK_HOPS,
};
pub use hooks::SemanticHook;
pub use journal::{scan_frames, FrameInfo, JournalStats, ReplayReport, JOURNAL_VERSION};
pub use metrics::{op_cost_ns, LatencyHistogram, MetricsRegistry};
pub use namespace::{MountInfo, Namespace};
pub use notify::{Event, EventKind, EventMask, NotifyHub, WatchId};
pub use overlay::{CommitReport, Overlay, OverlayStats, OPAQUE_XATTR, WHITEOUT_PREFIX};
pub use path::{valid_name, VPath, NAME_MAX, PATH_MAX};
pub use poll::{Interest, PollEvent, PollSet, PollSource, PollToken};
pub use proc::{ProcHook, ProcRegistry, ProcRender};
pub use rctl::{AppLimits, RctlTable, RctlUsage};
pub use readpath::ReadPathStats;
pub use types::{
    Access, Clock, Credentials, DirEntry, Fd, FileStat, FileType, Gid, Ino, Mode, OpenFlags,
    Timestamp, Uid, ROOT_INO,
};
