//! Virtual path handling.
//!
//! Paths in the vfs are always absolute, `/`-separated, and independent of
//! the host platform. [`VPath`] stores a normalized form (no `.` segments,
//! no doubled slashes, no trailing slash except for the root itself);
//! `..` is preserved textually and resolved during lookup, because POSIX
//! resolves `..` against the *symlink-resolved* parent, not lexically.

use std::fmt;

/// Maximum length of a single path component.
pub const NAME_MAX: usize = 255;
/// Maximum length of a whole path.
pub const PATH_MAX: usize = 4096;

/// An absolute, normalized virtual path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VPath(String);

impl VPath {
    /// The root path `/`.
    pub fn root() -> VPath {
        VPath("/".to_string())
    }

    /// Normalize `s` into an absolute path. Relative input is interpreted
    /// against the root (the vfs has no per-process cwd; the coreutils layer
    /// adds one on top).
    pub fn new(s: &str) -> VPath {
        let mut out = String::with_capacity(s.len() + 1);
        out.push('/');
        for comp in s.split('/') {
            if comp.is_empty() || comp == "." {
                continue;
            }
            if !out.ends_with('/') {
                out.push('/');
            }
            out.push_str(comp);
        }
        VPath(out)
    }

    /// The path as a string, always beginning with `/`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this is the root directory.
    pub fn is_root(&self) -> bool {
        self.0 == "/"
    }

    /// Iterator over the path's components (excluding the root).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.components().count()
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.0.rsplit('/').next()
        }
    }

    /// The parent directory; the root's parent is the root.
    pub fn parent(&self) -> VPath {
        if self.is_root() {
            return self.clone();
        }
        match self.0.rfind('/') {
            Some(0) | None => VPath::root(),
            Some(i) => VPath(self.0[..i].to_string()),
        }
    }

    /// Append a single component. `name` must not contain `/`.
    pub fn join(&self, name: &str) -> VPath {
        debug_assert!(!name.contains('/'), "join takes a single component");
        if self.is_root() {
            VPath(format!("/{name}"))
        } else {
            VPath(format!("{}/{name}", self.0))
        }
    }

    /// Append a (possibly multi-component, possibly absolute) suffix.
    pub fn join_path(&self, rel: &str) -> VPath {
        if rel.starts_with('/') {
            VPath::new(rel)
        } else {
            VPath::new(&format!("{}/{rel}", self.0))
        }
    }

    /// Whether `self` equals `prefix` or lies strictly beneath it.
    pub fn starts_with(&self, prefix: &VPath) -> bool {
        if prefix.is_root() {
            return true;
        }
        self.0 == prefix.0
            || (self.0.starts_with(&prefix.0)
                && self.0.as_bytes().get(prefix.0.len()) == Some(&b'/'))
    }

    /// Strip `prefix`, returning the remainder as a relative string
    /// (empty when `self == prefix`). `None` when `self` is not under it.
    pub fn strip_prefix(&self, prefix: &VPath) -> Option<&str> {
        if !self.starts_with(prefix) {
            return None;
        }
        if prefix.is_root() {
            return Some(self.0.trim_start_matches('/'));
        }
        let rest = &self.0[prefix.0.len()..];
        Some(rest.trim_start_matches('/'))
    }

    /// Re-root: replace the `from` prefix with `to`. `None` when `self` is
    /// not under `from`. Used by bind mounts and view translation.
    pub fn rebase(&self, from: &VPath, to: &VPath) -> Option<VPath> {
        let rest = self.strip_prefix(from)?;
        Some(if rest.is_empty() {
            to.clone()
        } else {
            to.join_path(rest)
        })
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for VPath {
    fn from(s: &str) -> Self {
        VPath::new(s)
    }
}

impl From<String> for VPath {
    fn from(s: String) -> Self {
        VPath::new(&s)
    }
}

/// Validate a single directory-entry name: non-empty, no `/` or NUL, not
/// `.`/`..`, and within [`NAME_MAX`].
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= NAME_MAX
        && name != "."
        && name != ".."
        && !name.contains('/')
        && !name.contains('\0')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(VPath::new("/a//b/./c/").as_str(), "/a/b/c");
        assert_eq!(VPath::new("a/b").as_str(), "/a/b");
        assert_eq!(VPath::new("").as_str(), "/");
        assert_eq!(VPath::new("/").as_str(), "/");
        assert_eq!(VPath::new("////").as_str(), "/");
        // `..` is preserved for lookup-time resolution.
        assert_eq!(VPath::new("/a/../b").as_str(), "/a/../b");
    }

    #[test]
    fn parent_and_file_name() {
        let p = VPath::new("/net/switches/sw1");
        assert_eq!(p.file_name(), Some("sw1"));
        assert_eq!(p.parent().as_str(), "/net/switches");
        assert_eq!(VPath::new("/x").parent().as_str(), "/");
        assert_eq!(VPath::root().parent().as_str(), "/");
        assert_eq!(VPath::root().file_name(), None);
    }

    #[test]
    fn join_and_depth() {
        let p = VPath::root().join("net").join("switches");
        assert_eq!(p.as_str(), "/net/switches");
        assert_eq!(p.depth(), 2);
        assert_eq!(VPath::root().depth(), 0);
        assert_eq!(p.join_path("sw1/ports").as_str(), "/net/switches/sw1/ports");
        assert_eq!(p.join_path("/abs").as_str(), "/abs");
    }

    #[test]
    fn prefix_relations() {
        let a = VPath::new("/net/switches");
        let b = VPath::new("/net/switches/sw1/flows");
        let c = VPath::new("/net/switchesX");
        assert!(b.starts_with(&a));
        assert!(a.starts_with(&a));
        assert!(!c.starts_with(&a));
        assert!(a.starts_with(&VPath::root()));
        assert_eq!(b.strip_prefix(&a), Some("sw1/flows"));
        assert_eq!(a.strip_prefix(&a), Some(""));
        assert_eq!(c.strip_prefix(&a), None);
        assert_eq!(
            b.strip_prefix(&VPath::root()),
            Some("net/switches/sw1/flows")
        );
    }

    #[test]
    fn rebase_for_binds() {
        let p = VPath::new("/net/views/v1/switches/sw1");
        let from = VPath::new("/net/views/v1");
        let to = VPath::new("/net");
        assert_eq!(p.rebase(&from, &to).unwrap().as_str(), "/net/switches/sw1");
        assert_eq!(from.rebase(&from, &to).unwrap().as_str(), "/net");
        assert!(VPath::new("/etc").rebase(&from, &to).is_none());
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("sw1"));
        assert!(valid_name("match.dl_type"));
        assert!(!valid_name(""));
        assert!(!valid_name("."));
        assert!(!valid_name(".."));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a\0b"));
        assert!(!valid_name(&"x".repeat(NAME_MAX + 1)));
    }
}
