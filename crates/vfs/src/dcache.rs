//! Sharded dentry cache (dcache) with generation-validated lookups.
//!
//! Path resolution is the hottest code in the system: every path-addressed
//! `open`/`stat`/`write` walks from the root hop by hop, taking one shard
//! read-lock per component. The dcache memoises those hops exactly the way
//! the Linux dcache does — a hash table keyed `(parent_ino, component)`
//! whose entries remember the child inode and its kind — so a warm walk is
//! O(components) hash hits with **zero** inode-table locks.
//!
//! ## Generation protocol (coherence)
//!
//! Correctness rides on a seqlock-style generation scheme instead of eager
//! invalidation:
//!
//! * every inode maps onto one of [`GEN_SLOTS`] striped `AtomicU64`
//!   generation counters (`ino % GEN_SLOTS`),
//! * a *reader* filling the cache loads the parent's generation **before**
//!   its live inode-table read and stores that pre-read value in the entry,
//! * every *mutation* of a directory (create/unlink/rmdir/link/rename into
//!   or out of it, chmod/chown/ACL change on it) bumps the directory's
//!   generation **inside** the shard write-lock critical section,
//! * a cached entry is honoured only while `entry.gen` equals the parent's
//!   current generation.
//!
//! Any mutation that commits after a reader's generation load therefore
//! invalidates that reader's fill before it can ever be used: stale entries
//! are dropped lazily on the next lookup (validate-on-use — there is never
//! a global flush). Slot collisions between inodes only ever cause extra
//! conservative invalidation, never false validity.
//!
//! ## Negative entries
//!
//! A lookup that finds no child caches that absence (`child: None`), so
//! watch-heavy pollers probing not-yet-created paths get their `ENOENT`
//! from one hash hit. The parent's next mutation bumps its generation and
//! retires the negative entry like any other.
//!
//! ## Overlay layers are cached correctly for free
//!
//! [`crate::overlay`] mounts never touch the dcache directly, and never
//! need to: an overlay resolves by probing *real per-layer paths* (upper,
//! then each lower), so every cached hop is keyed by a real layer
//! directory's inode — the key is layer-aware by construction. A whiteout
//! is a *positive* entry for the literal name `.wh.x` in the upper dir,
//! not a negative entry for `x`; deleting or re-creating through the view
//! mutates the upper dir and bumps its generation, and an atomic view
//! commit mutates the real base/upper directories under `lock_all`,
//! bumping each touched directory's generation inside the critical
//! section. A merged lookup therefore can never be served a stale positive
//! or stale negative from before a commit.
//!
//! ## Permissions are revalidated on every hit
//!
//! Each entry snapshots the parent directory's `(uid, gid, mode, acl)` at
//! fill time, and [`crate::check_access`] runs against the *caller's*
//! credentials on every hit. A hit can therefore never widen access: the
//! snapshot is only as old as the directory's generation (chmod/chown/ACL
//! changes bump it), and the caller-specific check is never skipped.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::acl::Acl;
use crate::types::{Gid, Ino, Mode, Uid};

/// Striped generation slots. Collisions are safe (conservative
/// over-invalidation), so this only trades memory against false sharing of
/// generations between unrelated directories.
const GEN_SLOTS: usize = 4096;

/// Entries per cache shard before the shard is wholesale cleared. The cap
/// bounds memory on pathological workloads; a clear costs one refill pass
/// and is counted in `evictions`.
const SHARD_CAP: usize = 16_384;

/// What a positive dentry remembers about the child inode.
///
/// An inode's kind is immutable for the lifetime of its number (nothing
/// converts a file into a directory in place, and symlink targets are
/// write-once), so caching it is always safe while the entry validates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CachedKind {
    /// Child is a directory.
    Dir,
    /// Child is a regular file.
    File,
    /// Child is a symlink with this target.
    Symlink(String),
}

/// Snapshot of the permission-relevant attributes of the *parent*
/// directory, taken at fill time and re-checked against the caller's
/// credentials on every hit.
#[derive(Debug, Clone)]
pub(crate) struct ParentPerm {
    pub uid: Uid,
    pub gid: Gid,
    pub mode: Mode,
    pub acl: Option<Acl>,
}

/// One cached resolution hop: `(parent_ino, component) → child`.
#[derive(Debug, Clone)]
pub(crate) struct Dentry {
    /// `Some((ino, kind))` for a positive entry, `None` for a cached
    /// `ENOENT` (negative entry).
    pub child: Option<(Ino, CachedKind)>,
    /// Parent generation observed *before* the live read that produced
    /// this entry; the entry validates only while it still matches.
    pub gen: u64,
    /// Parent attributes for the per-hit access check.
    pub perm: ParentPerm,
}

/// Counter snapshot of the dentry cache, as exposed at
/// `/net/.proc/vfs/dcache` and by [`crate::Filesystem::dcache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DcacheStats {
    /// Positive hits: a cached hop resolved a component without touching
    /// the inode table.
    pub hits: u64,
    /// Misses: the component had no valid entry and resolution fell back
    /// to the live hop-by-hop read.
    pub misses: u64,
    /// Negative hits: a cached `ENOENT` answered the lookup.
    pub negative_hits: u64,
    /// Generation bumps performed by directory mutations.
    pub invalidations: u64,
    /// Entries inserted (positive and negative).
    pub inserts: u64,
    /// Shard clears forced by the per-shard capacity cap.
    pub evictions: u64,
}

/// One lock-striped slice of the dentry table, keyed by
/// `(parent ino, component name)`.
type DentryShard = RwLock<HashMap<(u64, String), Dentry>>;

/// The sharded dentry cache. One per [`crate::Filesystem`]; shard count
/// mirrors the inode-table shard count so lock-striping decisions stay in
/// one place.
pub(crate) struct Dcache {
    enabled: bool,
    shards: Box<[DentryShard]>,
    gens: Box<[AtomicU64]>,
    hits: AtomicU64,
    misses: AtomicU64,
    negative_hits: AtomicU64,
    invalidations: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl Dcache {
    /// A cache with `shards` shards. When `enabled` is false every lookup
    /// misses and every insert is dropped — resolution behaves exactly as
    /// it did before the cache existed (the coherence suites replay
    /// histories in this mode as the reference).
    pub fn new(shards: usize, enabled: bool) -> Dcache {
        let shards = shards.max(1);
        Dcache {
            enabled,
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            gens: (0..GEN_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            negative_hits: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether the cache participates in resolution at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn slot(&self, ino: Ino) -> &AtomicU64 {
        &self.gens[(ino.0 as usize) % GEN_SLOTS]
    }

    #[inline]
    fn shard(&self, parent: Ino) -> &RwLock<HashMap<(u64, String), Dentry>> {
        &self.shards[(parent.0 as usize) % self.shards.len()]
    }

    /// The current generation of `ino`. Fill paths must load this *before*
    /// their live inode-table read.
    pub fn gen(&self, ino: Ino) -> u64 {
        self.slot(ino).load(Ordering::Acquire)
    }

    /// Bump `ino`'s generation, retiring every cached entry under it (and,
    /// conservatively, under any inode sharing its slot). Mutators call
    /// this while still holding the shard write locks of the mutation, so
    /// a concurrent fill that read pre-mutation state can never validate.
    /// `quiet` suppresses the invalidation *counter* (internal proc
    /// maintenance must not disturb what it measures) but never the bump.
    pub fn bump(&self, ino: Ino, quiet: bool) {
        if !self.enabled {
            return;
        }
        self.slot(ino).fetch_add(1, Ordering::Release);
        if !quiet {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Look up `(parent, component)`. Returns a dentry only if its stored
    /// generation still matches the parent's current one; stale entries
    /// are dropped on the way out (validate-on-use).
    pub fn lookup(&self, parent: Ino, key: &(u64, String)) -> Option<Dentry> {
        if !self.enabled {
            return None;
        }
        let shard = self.shard(parent);
        let found = shard.read().get(key).cloned();
        match found {
            Some(d) if d.gen == self.gen(parent) => {
                if d.child.is_some() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.negative_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(d)
            }
            Some(_) => {
                // Stale: retire it. A racing fresh insert may be removed
                // too — conservative, the next miss refills it.
                shard.write().remove(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a fill. `d.gen` must be the generation loaded before the
    /// live read; if the parent has moved on since, the entry describes
    /// possibly pre-mutation state and is silently dropped.
    pub fn insert(&self, parent: Ino, key: (u64, String), d: Dentry) {
        if !self.enabled || d.gen != self.gen(parent) {
            return;
        }
        let mut map = self.shard(parent).write();
        if map.len() >= SHARD_CAP {
            map.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        map.insert(key, d);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn stats(&self) -> DcacheStats {
        DcacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Live entry count across all shards (positive + negative).
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm() -> ParentPerm {
        ParentPerm {
            uid: Uid(0),
            gid: Gid(0),
            mode: Mode(0o755),
            acl: None,
        }
    }

    #[test]
    fn hit_miss_and_negative_counters() {
        let d = Dcache::new(4, true);
        let parent = Ino(7);
        let key = (7u64, "x".to_string());
        assert!(d.lookup(parent, &key).is_none());
        let g = d.gen(parent);
        d.insert(
            parent,
            key.clone(),
            Dentry {
                child: Some((Ino(9), CachedKind::File)),
                gen: g,
                perm: perm(),
            },
        );
        assert!(d.lookup(parent, &key).is_some());
        let neg = (7u64, "missing".to_string());
        d.insert(
            parent,
            neg.clone(),
            Dentry {
                child: None,
                gen: g,
                perm: perm(),
            },
        );
        let hit = d.lookup(parent, &neg).unwrap();
        assert!(hit.child.is_none());
        let s = d.stats();
        assert_eq!((s.hits, s.misses, s.negative_hits), (1, 1, 1));
        assert_eq!(s.inserts, 2);
        assert_eq!(d.entries(), 2);
    }

    #[test]
    fn bump_invalidates_lazily() {
        let d = Dcache::new(4, true);
        let parent = Ino(3);
        let key = (3u64, "a".to_string());
        let g = d.gen(parent);
        d.insert(
            parent,
            key.clone(),
            Dentry {
                child: Some((Ino(4), CachedKind::Dir)),
                gen: g,
                perm: perm(),
            },
        );
        d.bump(parent, false);
        // The entry is still physically present but no longer validates.
        assert_eq!(d.entries(), 1);
        assert!(d.lookup(parent, &key).is_none());
        // …and the failed validation dropped it.
        assert_eq!(d.entries(), 0);
        assert_eq!(d.stats().invalidations, 1);
    }

    #[test]
    fn stale_gen_fill_is_dropped() {
        let d = Dcache::new(4, true);
        let parent = Ino(5);
        let g = d.gen(parent);
        d.bump(parent, true); // a mutation lands between read and insert
        d.insert(
            parent,
            (5, "x".to_string()),
            Dentry {
                child: Some((Ino(6), CachedKind::File)),
                gen: g,
                perm: perm(),
            },
        );
        assert_eq!(d.entries(), 0);
        // quiet bump still bumped the generation but not the counter.
        assert_eq!(d.stats().invalidations, 0);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let d = Dcache::new(4, false);
        let parent = Ino(2);
        d.insert(
            parent,
            (2, "x".to_string()),
            Dentry {
                child: None,
                gen: 0,
                perm: perm(),
            },
        );
        assert!(d.lookup(parent, &(2, "x".to_string())).is_none());
        assert_eq!(d.entries(), 0);
        assert_eq!(d.stats(), DcacheStats::default());
    }

    #[test]
    fn cap_forces_shard_clear() {
        let d = Dcache::new(1, true);
        let parent = Ino(1);
        let g = d.gen(parent);
        for i in 0..SHARD_CAP {
            d.insert(
                parent,
                (1, format!("f{i}")),
                Dentry {
                    child: None,
                    gen: g,
                    perm: perm(),
                },
            );
        }
        assert_eq!(d.entries(), SHARD_CAP);
        d.insert(
            parent,
            (1, "one-more".to_string()),
            Dentry {
                child: None,
                gen: g,
                perm: perm(),
            },
        );
        assert_eq!(d.entries(), 1);
        assert_eq!(d.stats().evictions, 1);
    }
}
