//! Deterministic operation metrics: per-mount-scoped syscall counters and
//! virtual-clock latency histograms.
//!
//! The vfs is in-process, so wall-clock timings would be noisy and
//! machine-dependent. Instead every operation is charged a *virtual* cost
//! derived only from its kind and path depth ([`op_cost_ns`]), and those
//! costs feed log2-bucketed [`LatencyHistogram`]s. Two runs of the same
//! workload therefore produce bit-identical histograms — which is what lets
//! the `/net/.proc` introspection tree and the `BENCH_*.json` reports be
//! asserted on in regression tests.
//!
//! The [`MetricsRegistry`] extends the global [`SyscallCounters`] tally with
//! *named scopes*: a scope is a path prefix (typically a mount point such as
//! `/net`) with its own `SyscallCounters`, so experiments can ask "how many
//! syscalls landed under this mount" without diffing global snapshots.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::counter::{OpKind, SyscallCounters};

/// Number of log2 buckets: covers costs up to 2^31 ns (~2 s), far beyond
/// anything the cost model produces.
const N_BUCKETS: usize = 32;

/// Deterministic virtual cost of one operation, in nanoseconds.
///
/// The base charge per kind loosely mirrors relative Linux VFS costs
/// (directory mutation > file open > attribute read); each path component
/// adds a fixed lookup charge. The absolute numbers are arbitrary but
/// *stable*: tests and benchmarks depend on them not changing between runs.
pub fn op_cost_ns(op: OpKind, path: &str) -> u64 {
    let base = match op {
        OpKind::Stat => 1_300,
        OpKind::Open => 1_700,
        OpKind::Close => 900,
        OpKind::Read => 1_100,
        OpKind::Write => 1_600,
        OpKind::Mkdir => 2_100,
        OpKind::Rmdir => 1_900,
        OpKind::Unlink => 1_500,
        OpKind::Rename => 2_300,
        OpKind::Symlink => 1_400,
        OpKind::Readlink => 800,
        OpKind::Link => 1_200,
        OpKind::Readdir => 2_000,
        OpKind::Setattr => 1_000,
        OpKind::Xattr => 950,
        OpKind::Truncate => 1_250,
        // Descriptor-relative ops skip path resolution: cheaper than their
        // path-addressed counterparts at any depth.
        OpKind::Openat => 1_000,
        OpKind::Fstat => 700,
        OpKind::Fsync => 1_100,
        OpKind::Poll => 600,
    };
    let depth = path.split('/').filter(|c| !c.is_empty()).count() as u64;
    base + 150 * depth
}

/// Lock-free histogram over log2 buckets: bucket *i* counts samples whose
/// value `v` satisfies `floor(log2(v)) == i` (bucket 0 also takes `v == 0`).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (nanoseconds).
    pub fn record(&self, ns: u64) {
        let b = (64 - ns.max(1).leading_zeros() as usize - 1).min(N_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (ns).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile sample
    /// (`q` in 0..=100). Zero when empty.
    pub fn quantile(&self, q: u64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, clamped into [1, n].
        let rank = ((n * q).div_ceil(100)).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << N_BUCKETS
    }

    /// Upper bound (ns) of the highest occupied bucket. Zero when empty.
    pub fn max_bound(&self) -> u64 {
        for i in (0..N_BUCKETS).rev() {
            if self.buckets[i].load(Ordering::Relaxed) > 0 {
                return 1u64 << (i + 1);
            }
        }
        0
    }

    /// One-line deterministic summary, e.g.
    /// `count=12 sum_ns=45600 p50=2048 p90=4096 p99=4096 max=4096`.
    pub fn summary(&self) -> String {
        format!(
            "count={} sum_ns={} p50={} p90={} p99={} max={}",
            self.count(),
            self.sum(),
            self.quantile(50),
            self.quantile(90),
            self.quantile(99),
            self.max_bound()
        )
    }

    /// Reset to empty (benchmarks call this between phases).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

struct Scope {
    name: String,
    prefix: String,
    counters: Arc<SyscallCounters>,
}

/// Whether `path` lies at or below `prefix` (component-boundary aware).
fn under(path: &str, prefix: &str) -> bool {
    if prefix == "/" {
        return true;
    }
    path == prefix || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

/// Per-operation latency histograms plus named per-prefix counter scopes.
///
/// One registry per [`crate::Filesystem`]; the filesystem feeds it from the
/// same entry points that bump the global [`SyscallCounters`].
pub struct MetricsRegistry {
    hist: [LatencyHistogram; OpKind::COUNT],
    scopes: RwLock<Vec<Scope>>,
    /// Mirror of `scopes.len()`, readable without the lock: `record` is on
    /// every syscall's hot path and most filesystems have no scopes, so the
    /// common case must not touch the `RwLock` at all.
    scope_count: AtomicUsize,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            hist: std::array::from_fn(|_| LatencyHistogram::new()),
            scopes: RwLock::new(Vec::new()),
            scope_count: AtomicUsize::new(0),
        }
    }

    /// Record one operation on `path`: charges the virtual cost to the
    /// per-kind histogram and bumps every scope whose prefix covers `path`.
    pub fn record(&self, op: OpKind, path: &str) {
        self.hist[op as usize].record(op_cost_ns(op, path));
        if self.scope_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let scopes = self.scopes.read();
        for s in scopes.iter() {
            if under(path, &s.prefix) {
                s.counters.bump(op);
            }
        }
    }

    /// Register (or fetch) a named counter scope over `prefix`. Re-adding an
    /// existing name returns the existing counters (the prefix is not
    /// changed).
    pub fn add_scope(&self, name: &str, prefix: &str) -> Arc<SyscallCounters> {
        let mut scopes = self.scopes.write();
        if let Some(s) = scopes.iter().find(|s| s.name == name) {
            return s.counters.clone();
        }
        let counters = Arc::new(SyscallCounters::new());
        scopes.push(Scope {
            name: name.to_string(),
            prefix: prefix.trim_end_matches('/').to_string(),
            counters: counters.clone(),
        });
        self.scope_count.store(scopes.len(), Ordering::Release);
        counters
    }

    /// Counters of a named scope, if registered.
    pub fn scope(&self, name: &str) -> Option<Arc<SyscallCounters>> {
        self.scopes
            .read()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.counters.clone())
    }

    /// `(name, prefix)` of every registered scope, in registration order.
    pub fn scope_names(&self) -> Vec<(String, String)> {
        self.scopes
            .read()
            .iter()
            .map(|s| (s.name.clone(), s.prefix.clone()))
            .collect()
    }

    /// The latency histogram for one operation kind.
    pub fn histogram(&self, op: OpKind) -> &LatencyHistogram {
        &self.hist[op as usize]
    }

    /// Reset every histogram and scope counter.
    pub fn reset(&self) {
        for h in &self.hist {
            h.reset();
        }
        for s in self.scopes.read().iter() {
            s.counters.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_is_deterministic_and_depth_sensitive() {
        let a = op_cost_ns(OpKind::Stat, "/net/switches/sw1");
        assert_eq!(a, op_cost_ns(OpKind::Stat, "/net/switches/sw1"));
        assert!(op_cost_ns(OpKind::Stat, "/net/switches/sw1/flows") > a);
        assert!(op_cost_ns(OpKind::Rename, "/a") > op_cost_ns(OpKind::Close, "/a"));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        for _ in 0..9 {
            h.record(1_000); // bucket 9 (512..1024), bound 1024
        }
        h.record(1_000_000); // bucket 19, bound 2^20
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 9 * 1_000 + 1_000_000);
        assert_eq!(h.quantile(50), 1 << 10);
        assert_eq!(h.quantile(99), 1 << 20);
        assert_eq!(h.max_bound(), 1 << 20);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(50), 0);
    }

    #[test]
    fn zero_sample_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(50), 2);
    }

    #[test]
    fn scopes_only_see_their_prefix() {
        let m = MetricsRegistry::new();
        let net = m.add_scope("net", "/net");
        let all = m.add_scope("all", "/");
        m.record(OpKind::Stat, "/net/switches/sw1");
        m.record(OpKind::Stat, "/etc/other");
        m.record(OpKind::Stat, "/network"); // sibling, NOT under /net
        assert_eq!(net.total(), 1);
        assert_eq!(all.total(), 3);
        assert_eq!(m.histogram(OpKind::Stat).count(), 3);
        assert_eq!(m.scope("net").unwrap().total(), 1);
        assert!(m.scope("missing").is_none());
    }

    #[test]
    fn add_scope_is_idempotent_by_name() {
        let m = MetricsRegistry::new();
        let a = m.add_scope("s", "/a");
        let b = m.add_scope("s", "/b");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(m.scope_names(), vec![("s".to_string(), "/a".to_string())]);
    }
}
