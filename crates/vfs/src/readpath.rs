//! The optimistic lock-free read path (seqlock-validated attribute cache).
//!
//! ROADMAP item 5 / DESIGN.md §12: after the dcache removed the per-hop
//! inode-table reads from warm resolution (E22), every warm `stat` still
//! paid one shard read lock for the final attribute read, and every
//! descriptor op paid one for the fd→inode hop. On the multi-core hardware
//! items 3/4 target, those read locks are the scaling wall: they bounce a
//! cache line per acquisition even when nothing conflicts. This module
//! removes them:
//!
//! * **Attribute blocks** ([`AttrBlock`]): every scalar `stat` needs —
//!   mode, uid, gid, size, nlink, mtime, ctime, kind — packed into plain
//!   atomics, lazily filled by the *locked* fallback path and validated
//!   against the owning shard's seqlock (see [`crate::shard::Tables`]).
//!   A block is served only while `stamp == current shard seq` (even):
//!   since **every** write-lock acquisition on the shard bumps the seq,
//!   a served block is bit-identical to what the locked read would have
//!   returned at the instant the seq was sampled. Readers retry on a
//!   transient odd seq (writer in flight) up to [`ReadPath::RETRY_LIMIT`]
//!   times, then fall back to the locked path — the fallback *is* the
//!   fill, so a retry storm converges instead of spinning.
//! * **Handle blocks** ([`HandleBlock`]): an open descriptor's identity
//!   (target inode, owner, flags, open-time path) is immutable for the
//!   descriptor's lifetime and fd numbers are never reused, so these need
//!   no seqlock at all — just a monotonic `empty → open → closed` state
//!   published with release/acquire. Only the mutable offset stays behind
//!   the shard locks.
//!
//! Both tables are paged and indexed directly by id (ino / fd numbers are
//! allocated monotonically and never reused), so a lookup is two array
//! indexes — no hashing, no probing, no locks. Everything is counted:
//! `optimistic_hits`, `optimistic_retries`, `fallbacks` and the tables'
//! `lock_acquisitions` are surfaced under `<proc>/vfs/readpath/` and pinned
//! by E25 ("0 locks per warm stat") the same way E4/E5/E22 are pinned —
//! wall-clock on this 1-core host proves nothing; counters do.
//!
//! Safety note: this is a seqlock in *safe* Rust — readers never alias
//! writer-mutated memory. The mutable filesystem state (HashMaps, file
//! contents) is only ever touched under the shard locks; what readers see
//! lock-free is a redundant copy held entirely in atomics, and the seqlock
//! only decides whether that copy is current.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::shard::Tables;
use crate::types::{FileStat, FileType, Gid, Ino, Mode, OpenFlags, Timestamp, Uid};

/// Slots per lazily-allocated page.
const PAGE_SLOTS: u64 = 1024;
/// Pages per table: ids beyond `PAGE_SLOTS * MAX_PAGES` simply never get a
/// block and always take the locked path (graceful, not wrong).
const MAX_PAGES: u64 = 4096;

/// A lazily-paged, append-only slot table indexed directly by id. Pages
/// materialize on first publish; a slot, once allocated, lives for the
/// table's lifetime (ids are never reused, so there is nothing to evict —
/// stale blocks are simply never valid again).
struct SlotTable<T> {
    pages: Box<[OnceLock<Box<[T]>>]>,
}

impl<T: Default> SlotTable<T> {
    fn new() -> Self {
        SlotTable {
            pages: (0..MAX_PAGES).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The slot for `id`, if its page has ever been materialized.
    #[inline]
    fn get(&self, id: u64) -> Option<&T> {
        let page = self.pages.get((id / PAGE_SLOTS) as usize)?.get()?;
        Some(&page[(id % PAGE_SLOTS) as usize])
    }

    /// The slot for `id`, materializing its page. `None` only beyond the
    /// table's fixed id range. Page init may block briefly on a racing
    /// first touch; it takes no shard lock, so no lock-order interaction.
    #[inline]
    fn get_or_init(&self, id: u64) -> Option<&T> {
        let page = self.pages.get((id / PAGE_SLOTS) as usize)?;
        let page = page.get_or_init(|| (0..PAGE_SLOTS).map(|_| T::default()).collect());
        Some(&page[(id % PAGE_SLOTS) as usize])
    }
}

/// One inode's stat attributes as plain atomics, plus the two validation
/// words: `bseq` (per-block publish counter: odd while a fill is storing
/// fields, bumped by 2 per fill) and `stamp` (the owning shard's seqlock
/// value the fields were read under; 0 = never filled).
#[derive(Default)]
struct AttrBlock {
    bseq: AtomicU64,
    stamp: AtomicU64,
    mode: AtomicU64,
    uid: AtomicU64,
    gid: AtomicU64,
    size: AtomicU64,
    nlink: AtomicU64,
    mtime: AtomicU64,
    ctime: AtomicU64,
    /// Bits 0..2: file type (0 regular / 1 dir / 2 symlink); bit 2: the
    /// inode carries an ACL (non-scalar — perm-sensitive callers must take
    /// the locked path to consult it).
    kind_acl: AtomicU64,
}

fn kind_code(ft: FileType) -> u64 {
    match ft {
        FileType::Regular => 0,
        FileType::Directory => 1,
        FileType::Symlink => 2,
    }
}

fn code_kind(code: u64) -> FileType {
    match code {
        1 => FileType::Directory,
        2 => FileType::Symlink,
        _ => FileType::Regular,
    }
}

/// Immutable identity of an open descriptor, published once at open.
/// The mutable parts of a handle (offset, wrote) stay under the shard
/// locks and are not mirrored here.
pub(crate) struct HandleMeta {
    pub ino: Ino,
    pub owner: Uid,
    pub flags: OpenFlags,
    pub path: String,
}

/// `state` is monotonic — 0 empty, 1 publishing, 2 open, 3 closed — and fd
/// numbers are never reused, so a reader that observes `open` (acquire)
/// may use every field without further validation.
#[derive(Default)]
struct HandleBlock {
    state: AtomicU64,
    ino: AtomicU64,
    owner: AtomicU64,
    /// Bit 0 read, 1 write, 2 create, 3 excl, 4 truncate, 5 append.
    flags: AtomicU64,
    path: OnceLock<String>,
}

const H_EMPTY: u64 = 0;
const H_PUBLISHING: u64 = 1;
const H_OPEN: u64 = 2;
const H_CLOSED: u64 = 3;

fn pack_flags(f: OpenFlags) -> u64 {
    u64::from(f.read)
        | u64::from(f.write) << 1
        | u64::from(f.create) << 2
        | u64::from(f.excl) << 3
        | u64::from(f.truncate) << 4
        | u64::from(f.append) << 5
}

fn unpack_flags(bits: u64) -> OpenFlags {
    OpenFlags {
        read: bits & 1 != 0,
        write: bits & 2 != 0,
        create: bits & 4 != 0,
        excl: bits & 8 != 0,
        truncate: bits & 16 != 0,
        append: bits & 32 != 0,
    }
}

/// Counter snapshot of the optimistic read path, also surfaced at
/// `<proc>/vfs/readpath/*`. All figures are lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadPathStats {
    /// Whether the optimistic path participates at all (see
    /// [`crate::FsBuilder::readpath`]).
    pub enabled: bool,
    /// Reads served entirely lock-free from a validated block.
    pub optimistic_hits: u64,
    /// Snapshot/validate attempts abandoned because a writer held the
    /// shard (odd seq) or a concurrent fill moved the block mid-read.
    pub optimistic_retries: u64,
    /// Optimistic attempts that gave up and took the locked path —
    /// cold blocks, stale stamps, ACL-bearing inodes, exhausted retries.
    pub fallbacks: u64,
    /// Attribute blocks (re)published by the locked fallback path.
    pub attr_fills: u64,
    /// Handle blocks published at open.
    pub handle_publishes: u64,
    /// Shard-lock acquisitions on the inode/handle tables (read + write),
    /// from [`crate::shard::Tables::lock_acquisition_count`]. The E25 law:
    /// a warm stat moves `optimistic_hits` and leaves this unchanged.
    pub lock_acquisitions: u64,
}

/// What an optimistic attribute read concluded.
pub(crate) enum AttrRead {
    /// Served lock-free, linearized at the shard-seq sample. (The block
    /// also carries a has-ACL bit for perm-dependent consumers; `stat`
    /// needs no target permission, so nothing reads it yet.)
    Hit(FileStat),
    /// Take the locked path (and refill).
    Fallback,
}

/// What an optimistic handle-meta read concluded.
pub(crate) enum HandleRead {
    /// The descriptor is open; identity fields follow.
    Open(HandleMeta),
    /// Unknown/still-publishing/closed — take the locked path, which owns
    /// the authoritative `EBADF` answer (and its exact legacy accounting).
    Fallback,
}

/// The lock-free read path: block tables + counters. One per
/// [`crate::Filesystem`], shared by reference with the proc closures.
pub(crate) struct ReadPath {
    enabled: bool,
    attrs: SlotTable<AttrBlock>,
    handles: SlotTable<HandleBlock>,
    optimistic_hits: AtomicU64,
    optimistic_retries: AtomicU64,
    fallbacks: AtomicU64,
    attr_fills: AtomicU64,
    handle_publishes: AtomicU64,
}

impl ReadPath {
    /// Transient-writer retries before an optimistic read gives up and
    /// takes the locked path. Small and fixed: the fallback ladder (not
    /// patience) is what bounds worst-case work, and the retry-storm test
    /// asserts total retries per op ≤ this.
    pub const RETRY_LIMIT: u32 = 3;

    pub fn new(enabled: bool) -> Self {
        ReadPath {
            enabled,
            attrs: SlotTable::new(),
            handles: SlotTable::new(),
            optimistic_hits: AtomicU64::new(0),
            optimistic_retries: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            attr_fills: AtomicU64::new(0),
            handle_publishes: AtomicU64::new(0),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn stats(&self, tables: &Tables) -> ReadPathStats {
        ReadPathStats {
            enabled: self.enabled,
            optimistic_hits: self.optimistic_hits.load(Ordering::Relaxed),
            optimistic_retries: self.optimistic_retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            attr_fills: self.attr_fills.load(Ordering::Relaxed),
            handle_publishes: self.handle_publishes.load(Ordering::Relaxed),
            lock_acquisitions: tables.lock_acquisition_count(),
        }
    }

    // ------------------------------------------------------------
    // Attribute blocks
    // ------------------------------------------------------------

    /// Optimistic stat: serve `ino`'s attributes without any table lock,
    /// or direct the caller to the locked fallback. The ladder:
    ///
    /// 1. odd shard seq → writer in flight → retry (≤ RETRY_LIMIT), then
    ///    fallback;
    /// 2. even seq but `stamp != seq` → the block predates a write-lock
    ///    acquisition somewhere in the shard → fallback (which refills);
    /// 3. `bseq` moved across the field reads → concurrent refill →
    ///    retry, then fallback;
    /// 4. clean → linearize the read at the seq sample: every field is
    ///    exactly what the locked read would have copied at that instant.
    pub fn read_attr(&self, tables: &Tables, ino: Ino) -> AttrRead {
        if !self.enabled {
            return AttrRead::Fallback;
        }
        let block = match self.attrs.get(ino.0) {
            Some(b) => b,
            None => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                return AttrRead::Fallback;
            }
        };
        for _ in 0..=Self::RETRY_LIMIT {
            let seq = tables.seq_of_ino(ino);
            if seq & 1 == 1 {
                // Transient: a writer holds the shard right now.
                self.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let b0 = block.bseq.load(Ordering::SeqCst);
            if b0 & 1 == 1 {
                // A fill is mid-publish; it is about to finish.
                self.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if block.stamp.load(Ordering::SeqCst) != seq {
                // Never filled, or some write-locked mutation touched the
                // shard since the fill. Only the locked path can tell what
                // changed — and it refills the block on the way.
                break;
            }
            let st = FileStat {
                ino,
                file_type: code_kind(block.kind_acl.load(Ordering::SeqCst) & 0b11),
                mode: Mode(block.mode.load(Ordering::SeqCst) as u16),
                uid: Uid(block.uid.load(Ordering::SeqCst) as u32),
                gid: Gid(block.gid.load(Ordering::SeqCst) as u32),
                size: block.size.load(Ordering::SeqCst),
                nlink: block.nlink.load(Ordering::SeqCst) as u32,
                mtime: Timestamp(block.mtime.load(Ordering::SeqCst)),
                ctime: Timestamp(block.ctime.load(Ordering::SeqCst)),
            };
            if block.bseq.load(Ordering::SeqCst) != b0 {
                // Torn against a concurrent refill; the refill is done or
                // nearly done, so retrying is cheap.
                self.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.optimistic_hits.fetch_add(1, Ordering::Relaxed);
            return AttrRead::Hit(st);
        }
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        AttrRead::Fallback
    }

    /// Publish `ino`'s attributes as read by the locked fallback path.
    /// `seq` MUST be the shard's seqlock value sampled *while holding the
    /// shard's read lock* ([`Tables::with_inode_at`]) — under the read
    /// lock no writer holds the shard, so `seq` is even and the fields are
    /// exactly the shard state for the whole seq window. Publishing late
    /// (after the window closed) is harmless: the stale stamp simply never
    /// validates. Concurrent fills are serialized by a CAS to odd on
    /// `bseq`; losers skip the publish (they already have their answer).
    pub fn publish_attr(&self, seq: u64, st: &FileStat, has_acl: bool) {
        if !self.enabled {
            return;
        }
        let block = match self.attrs.get_or_init(st.ino.0) {
            Some(b) => b,
            None => return, // beyond the table's id range
        };
        let b0 = block.bseq.load(Ordering::SeqCst);
        if b0 & 1 == 1 {
            return; // another fill is mid-publish
        }
        if block
            .bseq
            .compare_exchange(b0, b0 + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        // Invalidate before storing: a reader racing this fill sees either
        // an odd bseq (retries) or a moved bseq (retries) — never a torn
        // mix validated by an old stamp.
        block.stamp.store(0, Ordering::SeqCst);
        block.mode.store(u64::from(st.mode.0), Ordering::SeqCst);
        block.uid.store(u64::from(st.uid.0), Ordering::SeqCst);
        block.gid.store(u64::from(st.gid.0), Ordering::SeqCst);
        block.size.store(st.size, Ordering::SeqCst);
        block.nlink.store(u64::from(st.nlink), Ordering::SeqCst);
        block.mtime.store(st.mtime.0, Ordering::SeqCst);
        block.ctime.store(st.ctime.0, Ordering::SeqCst);
        block.kind_acl.store(
            kind_code(st.file_type) | (u64::from(has_acl)) << 2,
            Ordering::SeqCst,
        );
        block.stamp.store(seq, Ordering::SeqCst);
        block.bseq.store(b0 + 2, Ordering::SeqCst);
        self.attr_fills.fetch_add(1, Ordering::Relaxed);
    }

    /// An inode's kind from its block, valid even when the stamp is stale:
    /// kind is immutable for the lifetime of an inode number, so any
    /// completed fill (bseq ≥ 2, even, unmoved) answers it. `None` until a
    /// first fill — the caller pays one locked read then.
    pub fn kind_of(&self, ino: Ino) -> Option<FileType> {
        if !self.enabled {
            return None;
        }
        let block = self.attrs.get(ino.0)?;
        for _ in 0..=Self::RETRY_LIMIT {
            let b0 = block.bseq.load(Ordering::SeqCst);
            if b0 < 2 {
                return None;
            }
            if b0 & 1 == 1 {
                self.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let kind = code_kind(block.kind_acl.load(Ordering::SeqCst) & 0b11);
            if block.bseq.load(Ordering::SeqCst) == b0 {
                return Some(kind);
            }
            self.optimistic_retries.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    // ------------------------------------------------------------
    // Handle blocks
    // ------------------------------------------------------------

    /// Publish an open descriptor's immutable identity. Called once per
    /// fd, right after the handle is inserted under the shard write locks.
    pub fn publish_handle(&self, fd: u64, ino: Ino, owner: Uid, flags: OpenFlags, path: String) {
        if !self.enabled {
            return;
        }
        let block = match self.handles.get_or_init(fd) {
            Some(b) => b,
            None => return,
        };
        if block
            .state
            .compare_exchange(H_EMPTY, H_PUBLISHING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return; // impossible for a never-reused fd, but stay safe
        }
        block.ino.store(ino.0, Ordering::SeqCst);
        block.owner.store(u64::from(owner.0), Ordering::SeqCst);
        block.flags.store(pack_flags(flags), Ordering::SeqCst);
        let _ = block.path.set(path);
        block.state.store(H_OPEN, Ordering::SeqCst);
        self.handle_publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark `fd` closed. Called with the handle-removal's shard locks
    /// held; once set the state never changes again (fds are not reused).
    pub fn close_handle(&self, fd: u64) {
        if !self.enabled {
            return;
        }
        if let Some(block) = self.handles.get(fd) {
            let s = block.state.load(Ordering::SeqCst);
            if s == H_OPEN || s == H_PUBLISHING {
                block.state.store(H_CLOSED, Ordering::SeqCst);
            }
        }
    }

    /// Optimistic fd→identity hop: zero locks when the block says *open*.
    /// Anything else (never published, still publishing, closed, out of
    /// range, disabled) falls back to the locked lookup so `EBADF` paths
    /// keep their exact legacy errno/accounting behaviour.
    pub fn read_handle(&self, fd: u64) -> HandleRead {
        if !self.enabled {
            return HandleRead::Fallback;
        }
        let block = match self.handles.get(fd) {
            Some(b) => b,
            None => return HandleRead::Fallback,
        };
        if block.state.load(Ordering::SeqCst) != H_OPEN {
            return HandleRead::Fallback;
        }
        let path = match block.path.get() {
            Some(p) => p.clone(),
            None => return HandleRead::Fallback,
        };
        self.optimistic_hits.fetch_add(1, Ordering::Relaxed);
        HandleRead::Open(HandleMeta {
            ino: Ino(block.ino.load(Ordering::SeqCst)),
            owner: Uid(block.owner.load(Ordering::SeqCst) as u32),
            flags: unpack_flags(block.flags.load(Ordering::SeqCst)),
            path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::LockKey;

    fn stat(ino: Ino) -> FileStat {
        FileStat {
            ino,
            file_type: FileType::Regular,
            mode: Mode(0o640),
            uid: Uid(7),
            gid: Gid(8),
            size: 42,
            nlink: 2,
            mtime: Timestamp(11),
            ctime: Timestamp(12),
        }
    }

    #[test]
    fn attr_roundtrip_validates_until_any_shard_write() {
        let t = Tables::new(4);
        let rp = ReadPath::new(true);
        let ino = Ino(9);
        // Cold: no block → fallback.
        assert!(matches!(rp.read_attr(&t, ino), AttrRead::Fallback));
        let seq = t.seq_of_ino(ino);
        rp.publish_attr(seq, &stat(ino), false);
        match rp.read_attr(&t, ino) {
            AttrRead::Hit(st) => assert_eq!(st, stat(ino)),
            AttrRead::Fallback => panic!("published block did not serve"),
        }
        // Any write-lock acquisition on the shard — even one that mutates
        // nothing — invalidates the block.
        drop(t.lock(&[LockKey::Ino(ino)]));
        assert!(matches!(rp.read_attr(&t, ino), AttrRead::Fallback));
        // A write to a *different* shard leaves it valid.
        rp.publish_attr(t.seq_of_ino(ino), &stat(ino), false);
        drop(t.lock(&[LockKey::Ino(Ino(10))]));
        assert!(matches!(rp.read_attr(&t, ino), AttrRead::Hit(..)));
    }

    #[test]
    fn stale_stamp_never_validates_and_kind_survives_staleness() {
        let t = Tables::new(2);
        let rp = ReadPath::new(true);
        let ino = Ino(4);
        let old = t.seq_of_ino(ino);
        drop(t.lock(&[LockKey::Ino(ino)])); // seq moved by 2
        rp.publish_attr(old, &stat(ino), true); // publish under a dead stamp
        assert!(matches!(rp.read_attr(&t, ino), AttrRead::Fallback));
        // ...but the kind (immutable per ino) still serves.
        assert_eq!(rp.kind_of(ino), Some(FileType::Regular));
        assert_eq!(rp.kind_of(Ino(5)), None); // never filled
    }

    #[test]
    fn odd_seq_is_a_bounded_retry_then_fallback() {
        let t = Tables::new(2);
        let rp = ReadPath::new(true);
        let ino = Ino(4);
        rp.publish_attr(t.seq_of_ino(ino), &stat(ino), false);
        let set = t.lock(&[LockKey::Ino(ino)]); // seq now odd
        let retries0 = rp.stats(&t).optimistic_retries;
        assert!(matches!(rp.read_attr(&t, ino), AttrRead::Fallback));
        let s = rp.stats(&t);
        assert_eq!(
            s.optimistic_retries - retries0,
            u64::from(ReadPath::RETRY_LIMIT) + 1,
            "every attempt against a held shard must count as a retry"
        );
        assert!(s.fallbacks > 0);
        drop(set);
    }

    #[test]
    fn handle_lifecycle_is_monotonic() {
        let rp = ReadPath::new(true);
        assert!(matches!(rp.read_handle(3), HandleRead::Fallback));
        rp.publish_handle(3, Ino(9), Uid(5), OpenFlags::read_only(), "/a/b".into());
        match rp.read_handle(3) {
            HandleRead::Open(m) => {
                assert_eq!(m.ino, Ino(9));
                assert_eq!(m.owner, Uid(5));
                assert!(m.flags.read && !m.flags.write);
                assert_eq!(m.path, "/a/b");
            }
            HandleRead::Fallback => panic!("open handle did not serve"),
        }
        rp.close_handle(3);
        assert!(matches!(rp.read_handle(3), HandleRead::Fallback));
        // Closed is forever: a republish attempt cannot resurrect the fd.
        rp.publish_handle(3, Ino(9), Uid(5), OpenFlags::read_only(), "/a/b".into());
        assert!(matches!(rp.read_handle(3), HandleRead::Fallback));
    }

    #[test]
    fn disabled_readpath_is_inert() {
        let t = Tables::new(2);
        let rp = ReadPath::new(false);
        rp.publish_attr(t.seq_of_ino(Ino(2)), &stat(Ino(2)), false);
        rp.publish_handle(3, Ino(2), Uid(0), OpenFlags::read_only(), "/x".into());
        assert!(matches!(rp.read_attr(&t, Ino(2)), AttrRead::Fallback));
        assert!(matches!(rp.read_handle(3), HandleRead::Fallback));
        let s = rp.stats(&t);
        assert_eq!(
            (s.optimistic_hits, s.attr_fills, s.handle_publishes),
            (0, 0, 0)
        );
        assert!(!s.enabled);
    }

    #[test]
    fn flag_packing_roundtrips() {
        for bits in 0..64u64 {
            assert_eq!(pack_flags(unpack_flags(bits)), bits);
        }
    }
}
