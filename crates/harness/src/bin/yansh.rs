//! yansh — an interactive shell over a live yanc network.
//!
//! Boots a 3-switch line with two hosts, LLDP discovery and the reactive
//! router, then drops you into a shell whose file tree *is* the network:
//!
//! ```text
//! cargo run -p yanc-harness --bin yansh
//! yansh:/net$ ls switches
//! yansh:/net$ tree switches/sw1/flows
//! yansh:/net$ echo 1 > switches/sw2/ports/p2/config.port_down
//! yansh:/net$ ping h1 h2
//! ```
//!
//! The daemons run as supervised yanc processes (yanc-init is pid 1), so
//! the process table is part of the file tree too: `ps` lists them from
//! `/net/.proc/apps`, and `kill -TERM <pid>` appends to `/net/.init/ctl`
//! for the supervisor's next tick. Two meta-commands drive the
//! simulation: `ping <hN> <hM>` sends a ping between hosts, `stats`
//! refreshes the `counters/` files. Every command pumps the network +
//! daemons, so file writes take effect "in hardware" immediately.

use std::io::{BufRead, Write};

use yanc::YancApp;
use yanc_apps::{RouterDaemon, TopologyDaemon};
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_harness::{build_line, settle_supervised};
use yanc_init::{ProcessCtx, ProcessSpec, Supervisor};
use yanc_openflow::Version;

fn main() {
    let mut rt = Runtime::new();
    let topo = build_line(&mut rt, 3, Version::V1_3);
    rt.enable_introspection().expect("mount /net/.proc");
    let mut sup = Supervisor::new(rt.yfs.clone()).expect("supervisor");
    sup.spawn(ProcessSpec::new("topod"), |ctx: &ProcessCtx| {
        Ok(Box::new(TopologyDaemon::new(ctx.yfs.clone())?) as Box<dyn YancApp>)
    })
    .expect("spawn topod");
    sup.spawn(ProcessSpec::new("routerd"), |ctx: &ProcessCtx| {
        Ok(Box::new(RouterDaemon::new(ctx.yfs.clone())?) as Box<dyn YancApp>)
    })
    .expect("spawn routerd");
    settle_supervised(&mut rt, &mut sup);

    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    sh.run("cd /net");

    println!(
        "yansh — the network is a file system. {} switches, {} hosts, {} supervised daemons.",
        topo.switches.len(),
        topo.hosts.len(),
        sup.processes().len()
    );
    println!("try: ls switches | tree switches/sw1 | ps | ping h1 h2 | stats | help | exit");

    let stdin = std::io::stdin();
    loop {
        print!("yansh:{}$ ", sh.cwd());
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            [] => continue,
            ["exit"] | ["quit"] => break,
            ["help"] => {
                println!("file tools : ls cat tree find grep mkdir rm ln mv cp echo chmod chown stat cd pwd");
                println!(
                    "processes  : ps               — the supervised daemons, from /net/.proc/apps"
                );
                println!(
                    "             kill -TERM <pid> — queued on /net/.init/ctl for the supervisor"
                );
                println!("simulation : ping <hA> <hB>   — ICMP between hosts (h1, h2)");
                println!(
                    "             stats            — refresh counters/ files from the switches"
                );
                println!(
                    "introspect : stats /net/.proc — controller internals as files (read-only)"
                );
                println!("             exit");
            }
            ["ping", a, b] => {
                let find = |name: &str| {
                    rt.net
                        .hosts
                        .iter()
                        .find(|(_, h)| h.name == name)
                        .map(|(id, h)| (*id, h.ip))
                };
                match (find(a), find(b)) {
                    (Some((ha, _)), Some((_, ip_b))) => {
                        let before = rt.net.hosts[&ha].ping_replies.len();
                        rt.net.host_ping(ha, ip_b, before as u16 + 1);
                        settle_supervised(&mut rt, &mut sup);
                        let after = rt.net.hosts[&ha].ping_replies.len();
                        if after > before {
                            println!("{} -> {}: reply received", a, b);
                        } else {
                            println!("{} -> {}: no reply", a, b);
                        }
                    }
                    _ => println!("unknown host (have: h1, h2)"),
                }
            }
            ["stats"] => {
                rt.poll_stats().unwrap();
                println!("counters refreshed — try: cat switches/sw1/counters/flow_packets");
            }
            _ => {
                let out = sh.run(line);
                print!("{}", out.out);
                if !out.err.is_empty() {
                    eprintln!("{}", out.err.trim_end());
                }
                // File writes may carry network meaning (and `kill` lines
                // wait on the ctl file); let the supervisor settle it.
                settle_supervised(&mut rt, &mut sup);
            }
        }
    }
    println!("bye");
}
