//! # yanc-harness — scenario builders shared by examples, tests and benches
//!
//! Standard topologies (line, ring, tree, fat-tree) built on a
//! [`Runtime`], ground-truth topology recording, combined pumping of
//! runtime + applications, and declarative workload descriptions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::net::Ipv4Addr;

use yanc_apps::{LearningSwitch, RouterDaemon, TopologyDaemon};
use yanc_driver::{ControlRuntime, Runtime};
use yanc_openflow::Version;

/// Anything pumpable alongside the runtime.
pub trait PumpApp {
    /// Process pending work; return whether any was done.
    fn pump_once(&mut self) -> bool;
}

impl PumpApp for RouterDaemon {
    fn pump_once(&mut self) -> bool {
        self.run_once()
    }
}

impl PumpApp for TopologyDaemon {
    fn pump_once(&mut self) -> bool {
        self.run_once()
    }
}

impl PumpApp for LearningSwitch {
    fn pump_once(&mut self) -> bool {
        self.run_once()
    }
}

/// Pump the runtime and a set of applications until everything is quiet.
/// Generic over [`ControlRuntime`]: the serial [`Runtime`] and the
/// multi-core [`yanc_driver::ParRuntime`] settle identically.
pub fn settle<R: ControlRuntime>(rt: &mut R, apps: &mut [&mut dyn PumpApp]) {
    let mut idle_rounds = 0;
    while idle_rounds < 2 {
        let net = rt.pump().unwrap();
        let mut worked = false;
        for a in apps.iter_mut() {
            worked |= a.pump_once();
        }
        if net <= 1 && !worked {
            idle_rounds += 1;
        } else {
            idle_rounds = 0;
        }
    }
}

/// [`settle`] for supervised fleets: step supervisor + runtime together
/// until the network, every process, every pending restart and every
/// scheduled control-plane fault have all quiesced.
///
/// Two consecutive idle steps are required, mirroring [`settle`]: one tick
/// of silence can be a restart backoff hole rather than convergence.
pub fn settle_supervised<R: ControlRuntime>(rt: &mut R, sup: &mut yanc_init::Supervisor) {
    let mut idle_rounds = 0;
    let mut steps = 0u32;
    while idle_rounds < 2 {
        let worked = sup.step(rt);
        let pending = sup.faults.pending_net() > 0
            || sup
                .processes()
                .iter()
                .any(|(_, _, s)| *s == yanc_init::ProcessState::Backoff);
        if !worked && !pending {
            idle_rounds += 1;
        } else {
            idle_rounds = 0;
        }
        steps += 1;
        assert!(steps < 10_000, "supervised settle did not converge");
    }
}

/// A built topology: switch dpids plus attached hosts.
pub struct Topo {
    /// Shape label (for reports).
    pub name: String,
    /// Switch datapath ids.
    pub switches: Vec<u64>,
    /// `(host id, ip)` pairs.
    pub hosts: Vec<(u64, Ipv4Addr)>,
}

fn host_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250 + 1) as u8)
}

/// Copy the network's ground-truth links into the fs as `peer` symlinks
/// (what the topology daemon would discover; used directly when discovery
/// itself is not under test).
pub fn record_topology(rt: &mut Runtime) {
    let links: Vec<_> = rt.net.links().to_vec();
    for l in links {
        if let (
            yanc_dataplane::Endpoint::Switch { dpid: da, port: pa },
            yanc_dataplane::Endpoint::Switch { dpid: db, port: pb },
        ) = (l.a, l.b)
        {
            let a = format!("sw{da:x}");
            let b = format!("sw{db:x}");
            let _ = rt.yfs.set_peer(&a, pa, &b, pb);
            let _ = rt.yfs.set_peer(&b, pb, &a, pa);
        }
    }
}

/// A line of `n` switches, one host on each end switch.
/// Port plan: port 1 = host/edge, port 2 = next switch, port 3 = previous.
pub fn build_line(rt: &mut Runtime, n: usize, version: Version) -> Topo {
    assert!(n >= 1);
    let mut switches = Vec::new();
    for i in 0..n {
        let dpid = (i + 1) as u64;
        rt.add_switch_with_driver(dpid, 4, 1, vec![version], version);
        switches.push(dpid);
    }
    for i in 0..n - 1 {
        rt.net
            .link_switches((switches[i], 2), (switches[i + 1], 3), None);
    }
    let mut hosts = Vec::new();
    for (idx, sw) in [(0usize, switches[0]), (1, switches[n - 1])] {
        let ip = host_ip(idx);
        let h = rt.net.add_host(&format!("h{}", idx + 1), ip);
        rt.net.attach_host(h, (sw, 1), None);
        hosts.push((h, ip));
    }
    rt.pump().unwrap();
    Topo {
        name: format!("line-{n}"),
        switches,
        hosts,
    }
}

/// A ring of `n` switches (n ≥ 3), one host per switch.
/// Port plan: 1 = host, 2 = clockwise, 3 = counter-clockwise.
pub fn build_ring(rt: &mut Runtime, n: usize, version: Version) -> Topo {
    assert!(n >= 3);
    let mut switches = Vec::new();
    for i in 0..n {
        let dpid = (i + 1) as u64;
        rt.add_switch_with_driver(dpid, 4, 1, vec![version], version);
        switches.push(dpid);
    }
    for i in 0..n {
        rt.net
            .link_switches((switches[i], 2), (switches[(i + 1) % n], 3), None);
    }
    let mut hosts = Vec::new();
    for (i, &sw) in switches.iter().enumerate() {
        let ip = host_ip(i);
        let h = rt.net.add_host(&format!("h{}", i + 1), ip);
        rt.net.attach_host(h, (sw, 1), None);
        hosts.push((h, ip));
    }
    rt.pump().unwrap();
    Topo {
        name: format!("ring-{n}"),
        switches,
        hosts,
    }
}

/// A complete `fanout`-ary tree of the given `depth` (depth 1 = a single
/// switch), hosts on every leaf switch.
pub fn build_tree(rt: &mut Runtime, depth: u32, fanout: u16, version: Version) -> Topo {
    assert!(depth >= 1 && fanout >= 1);
    let mut switches = Vec::new();
    // Level-order allocation. Ports: 1 = host (leaves), 2..=fanout+1 =
    // children, last port = uplink.
    let n_ports = fanout + 2;
    let total: usize = (0..depth).map(|d| (fanout as usize).pow(d)).sum();
    for i in 0..total {
        let dpid = (i + 1) as u64;
        rt.add_switch_with_driver(dpid, n_ports, 1, vec![version], version);
        switches.push(dpid);
    }
    // Wire parent -> children (level-order heap indexing).
    #[allow(clippy::needless_range_loop)] // index arithmetic names the heap layout
    for i in 0..total {
        let mut next_child: u16 = 0;
        for c in 0..fanout as usize {
            let child = i * fanout as usize + 1 + c;
            if child >= total {
                break;
            }
            next_child += 1;
            let parent_port = 1 + next_child; // 2..=fanout+1
            let uplink = n_ports; // child's last port
            rt.net
                .link_switches((switches[i], parent_port), (switches[child], uplink), None);
        }
    }
    // Hosts at leaves (nodes with no children).
    let mut hosts = Vec::new();
    for (i, &sw) in switches.iter().enumerate() {
        let first_child = i * fanout as usize + 1;
        if first_child >= total {
            let ip = host_ip(hosts.len());
            let h = rt.net.add_host(&format!("h{}", hosts.len() + 1), ip);
            rt.net.attach_host(h, (sw, 1), None);
            hosts.push((h, ip));
        }
    }
    rt.pump().unwrap();
    Topo {
        name: format!("tree-d{depth}f{fanout}"),
        switches,
        hosts,
    }
}

/// A k=4-style folded-Clos ("fat tree") with 2 cores, `pods` pods of
/// 2 aggregation + 2 edge switches, and 2 hosts per edge switch.
pub fn build_fat_tree(rt: &mut Runtime, pods: usize, version: Version) -> Topo {
    assert!(pods >= 1);
    let mut switches = Vec::new();
    let mut next_dpid = 1u64;
    let add = |rt: &mut Runtime, next_dpid: &mut u64, ports: u16| {
        let d = *next_dpid;
        rt.add_switch_with_driver(d, ports, 1, vec![version], version);
        *next_dpid += 1;
        d
    };
    let core: Vec<u64> = (0..2)
        .map(|_| add(rt, &mut next_dpid, (pods * 2) as u16))
        .collect();
    let mut hosts = Vec::new();
    let mut core_next: Vec<u16> = vec![0; 2];
    for _p in 0..pods {
        let aggs: Vec<u64> = (0..2).map(|_| add(rt, &mut next_dpid, 6)).collect();
        let edges: Vec<u64> = (0..2).map(|_| add(rt, &mut next_dpid, 6)).collect();
        // agg i <-> core i (agg port 1).
        for (i, &agg) in aggs.iter().enumerate() {
            core_next[i] += 1;
            rt.net
                .link_switches((core[i], core_next[i]), (agg, 1), None);
        }
        // full mesh agg <-> edge: agg ports 2,3 / edge ports 1,2.
        for (ai, &agg) in aggs.iter().enumerate() {
            for (ei, &edge) in edges.iter().enumerate() {
                rt.net
                    .link_switches((agg, (2 + ei) as u16), (edge, (1 + ai) as u16), None);
            }
        }
        // hosts: edge ports 3,4.
        for &edge in &edges {
            for hp in 0..2u16 {
                let ip = host_ip(hosts.len());
                let h = rt.net.add_host(&format!("h{}", hosts.len() + 1), ip);
                rt.net.attach_host(h, (edge, 3 + hp), None);
                hosts.push((h, ip));
            }
        }
        switches.extend(aggs);
        switches.extend(edges);
    }
    switches.extend(core);
    rt.pump().unwrap();
    Topo {
        name: format!("fat-tree-{pods}pods"),
        switches,
        hosts,
    }
}

/// A full k-ary fat-tree fabric ([`yanc_dataplane::FatTree`]) with one
/// driver per switch: `5k²/4` switches, `k³/4` hosts, full bisection
/// wiring — the data-center-scale shape (§8). The single `pump` at the
/// end runs every handshake to quiescence, so on return the whole fabric
/// is materialized under `/net/switches`.
///
/// Generic over [`ControlRuntime`], so the same builder drives the serial
/// [`Runtime`] and the multi-core [`yanc_driver::ParRuntime`] — the
/// paired serial-vs-parallel replay tests depend on that.
pub fn build_fabric<R: ControlRuntime>(rt: &mut R, k: u16, version: Version) -> Topo {
    let ft = yanc_dataplane::FatTree::new(k);
    let mut switches = Vec::with_capacity(ft.n_switches());
    for s in ft.switches() {
        rt.add_switch_with_driver(s.dpid, s.n_ports, 1, vec![version], version);
        switches.push(s.dpid);
    }
    for &(a, b) in ft.links() {
        rt.network().link_switches(a, b, None);
    }
    let mut hosts = Vec::with_capacity(ft.n_hosts());
    for h in ft.hosts() {
        let id = rt.network().add_host(&h.name, h.ip);
        rt.network().attach_host(id, h.edge, None);
        hosts.push((id, h.ip));
    }
    rt.pump().unwrap();
    Topo {
        name: format!("fabric-k{k}"),
        switches,
        hosts,
    }
}

/// Declarative workload/scenario description (serialized into benchmark
/// reports so parameters travel with results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Topology label.
    pub topology: String,
    /// Switch count.
    pub switches: usize,
    /// Host count.
    pub hosts: usize,
    /// Protocol version label.
    pub protocol: String,
    /// Free-form workload note.
    pub workload: String,
}

impl Scenario {
    /// Describe a built topology.
    pub fn of(topo: &Topo, version: Version, workload: &str) -> Scenario {
        Scenario {
            topology: topo.name.clone(),
            switches: topo.switches.len(),
            hosts: topo.hosts.len(),
            protocol: version.to_string(),
            workload: workload.to_string(),
        }
    }
}

/// All-pairs ping among the topology's hosts (sequentially, settling the
/// world between pings). Returns `(sent, answered)`.
pub fn ping_all_pairs(
    rt: &mut Runtime,
    topo: &Topo,
    apps: &mut [&mut dyn PumpApp],
) -> (usize, usize) {
    let mut sent = 0;
    let mut seq = 0u16;
    for (i, &(h_src, _)) in topo.hosts.iter().enumerate() {
        for (j, &(_, ip_dst)) in topo.hosts.iter().enumerate() {
            if i == j {
                continue;
            }
            seq += 1;
            sent += 1;
            rt.net.host_ping(h_src, ip_dst, seq);
            settle(rt, apps);
        }
    }
    let answered: usize = topo
        .hosts
        .iter()
        .map(|(h, _)| rt.net.hosts[h].ping_replies.len())
        .sum();
    (sent, answered)
}

/// Render a file system's metric registries as a deterministic JSON
/// object: `{"syscalls": {"<op>": n, …, "total": n}, "latency_ns":
/// {"<op>": {"count", "sum", "p50", "p90", "p99", "max"}, …}}`.
///
/// The JSON is hand-rolled (the workspace deliberately has no serde
/// dependency); keys follow [`OpKind::all`] order so reruns of the same
/// workload produce byte-identical reports.
pub fn metrics_json(fs: &yanc_vfs::Filesystem) -> String {
    use yanc_vfs::OpKind;
    let counters = fs.counters();
    let metrics = fs.metrics();
    let mut s = String::from("{\n  \"syscalls\": {\n");
    for op in OpKind::all() {
        s.push_str(&format!("    \"{}\": {},\n", op.name(), counters.get(*op)));
    }
    s.push_str(&format!("    \"total\": {}\n  }},\n", counters.total()));
    s.push_str("  \"latency_ns\": {\n");
    let ops = OpKind::all();
    for (i, op) in ops.iter().enumerate() {
        let h = metrics.histogram(*op);
        let comma = if i + 1 == ops.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}{comma}\n",
            op.name(),
            h.count(),
            h.sum(),
            h.quantile(50),
            h.quantile(90),
            h.quantile(99),
            h.max_bound(),
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Write a named `BENCH_<name>.json` report into the workspace root so
/// benchmark runs leave a machine-readable artifact next to
/// `EXPERIMENTS.md`. `extra` is a list of already-JSON-encoded key/value
/// pairs merged in front of the metrics object.
pub fn write_bench_report(name: &str, fs: &yanc_vfs::Filesystem, extra: &[(&str, String)]) {
    let mut body = String::from("{\n");
    for (k, v) in extra {
        body.push_str(&format!("  \"{k}\": {v},\n"));
    }
    let metrics = metrics_json(fs);
    // Splice: drop the metrics object's outer braces and inline its body.
    let inner = metrics
        .trim_start_matches("{\n")
        .trim_end_matches('\n')
        .trim_end_matches('}');
    body.push_str(inner);
    body.push_str("}\n");
    let path = format!("{}/../../BENCH_{name}.json", env!("CARGO_MANIFEST_DIR"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_builds_and_connects() {
        let mut rt = Runtime::new();
        let topo = build_line(&mut rt, 3, Version::V1_0);
        assert_eq!(topo.switches.len(), 3);
        assert_eq!(topo.hosts.len(), 2);
        assert_eq!(rt.yfs.list_switches().unwrap().len(), 3);
        record_topology(&mut rt);
        // fs topology matches: 2 bidirectional links = 4 directed.
        assert_eq!(rt.yfs.topology().unwrap().len(), 4);
    }

    #[test]
    fn ring_and_tree_shapes() {
        let mut rt = Runtime::new();
        let topo = build_ring(&mut rt, 4, Version::V1_3);
        assert_eq!(topo.switches.len(), 4);
        assert_eq!(topo.hosts.len(), 4);
        record_topology(&mut rt);
        assert_eq!(rt.yfs.topology().unwrap().len(), 8);

        let mut rt2 = Runtime::new();
        let tree = build_tree(&mut rt2, 3, 2, Version::V1_0);
        assert_eq!(tree.switches.len(), 7); // 1 + 2 + 4
        assert_eq!(tree.hosts.len(), 4); // hosts at 4 leaves
        record_topology(&mut rt2);
        assert_eq!(rt2.yfs.topology().unwrap().len(), 12); // 6 links
    }

    #[test]
    fn fat_tree_shape() {
        let mut rt = Runtime::new();
        let topo = build_fat_tree(&mut rt, 2, Version::V1_0);
        // 2 core + 2 pods x (2 agg + 2 edge) = 10 switches; 8 hosts.
        assert_eq!(topo.switches.len(), 10);
        assert_eq!(topo.hosts.len(), 8);
        record_topology(&mut rt);
        // links: core-agg 4 + agg-edge mesh 8 = 12 -> 24 directed.
        assert_eq!(rt.yfs.topology().unwrap().len(), 24);
    }

    #[test]
    fn fabric_builds_and_materializes() {
        let mut rt = Runtime::new();
        let topo = build_fabric(&mut rt, 4, Version::V1_3);
        assert_eq!(topo.switches.len(), 20); // 4 core + 4 pods x (2+2)
        assert_eq!(topo.hosts.len(), 16);
        assert_eq!(rt.yfs.list_switches().unwrap().len(), 20);
        for &d in &topo.switches {
            let sw = format!("sw{d:x}");
            assert_eq!(rt.yfs.list_ports(&sw).unwrap().len(), 4);
            assert_eq!(rt.yfs.switch_dpid(&sw).unwrap(), d);
        }
    }

    #[test]
    fn end_to_end_router_on_line() {
        let mut rt = Runtime::new();
        let topo = build_line(&mut rt, 3, Version::V1_0);
        record_topology(&mut rt);
        let mut router = RouterDaemon::new(rt.yfs.clone()).unwrap();
        let (sent, answered) =
            ping_all_pairs(&mut rt, &topo, &mut [&mut router as &mut dyn PumpApp]);
        assert_eq!(sent, 2);
        assert_eq!(answered, 2, "all pings answered via installed paths");
    }

    #[test]
    fn metrics_json_is_well_formed_and_deterministic() {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(1, 4, 1, vec![Version::V1_0], Version::V1_0);
        rt.pump().unwrap();
        let fs = rt.yfs.filesystem();
        let a = metrics_json(fs);
        let b = metrics_json(fs);
        assert_eq!(a, b, "same state renders identically");
        assert!(a.contains("\"syscalls\""));
        assert!(a.contains(&format!("\"total\": {}", fs.counters().total())));
        assert!(a.contains("\"latency_ns\""));
        assert!(a.contains("\"p99\""));
        // Balanced braces — cheap well-formedness check without a parser.
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn scenario_serializes() {
        let mut rt = Runtime::new();
        let topo = build_line(&mut rt, 2, Version::V1_0);
        let s = Scenario::of(&topo, Version::V1_0, "ping");
        assert_eq!(s.switches, 2);
        assert!(s.protocol.contains("1.0"));
    }
}
