//! Pins the exported libyanc surface so future API breaks are deliberate.
//!
//! The fastpath API is the contract between every yanc application and the
//! drivers; PR reviews should see a diff *here* whenever it changes. This is
//! a `cargo public-api`-style check done with the toolchain we have: the
//! crate sources are parsed textually for `pub` items and compared against
//! an explicit allowlist.

use std::collections::BTreeSet;

const LIB: &str = include_str!("../src/lib.rs");
const FASTPATH: &str = include_str!("../src/fastpath.rs");
const RING: &str = include_str!("../src/ring.rs");

/// Every name re-exported from the crate root.
const EXPECTED_REEXPORTS: &[&str] = &[
    "FastPacketIn",
    "FlowChannel",
    "FlowOp",
    "PacketBus",
    "Ring",
    "RingStats",
    "StatChannel",
    "StatQuery",
    "StatReply",
    "TelemetryBus",
    "TelemetrySample",
];

/// Every public method signature (name + first line, normalized) on the
/// fastpath types. Adding is fine — extend the list; removing or changing a
/// signature must update this test in the same PR.
const EXPECTED_FNS: &[&str] = &[
    // RingStats
    "pub fn merge(self, other: RingStats) -> RingStats",
    "pub fn render(&self) -> String",
    // Ring<T>
    "pub fn new(capacity: usize) -> Arc<Self>",
    "pub fn push(&self, value: T) -> Result<(), T>",
    "pub fn pop(&self) -> Option<T>",
    "pub fn drain(&self) -> Vec<T>",
    "pub fn len(&self) -> usize",
    "pub fn is_empty(&self) -> bool",
    "pub fn stats(&self) -> RingStats",
    // FlowChannel
    "pub fn new(capacity: usize) -> Self",
    "pub fn install(&self, switch: &str, name: &str, spec: FlowSpec) -> YancResult<()>",
    "pub fn install_batch(&self, switch: &str, flows: Vec<(String, FlowSpec)>) -> YancResult<()>",
    "pub fn delete(&self, switch: &str, name: &str) -> YancResult<()>",
    "pub fn resubmit(&self, ops: Vec<FlowOp>) -> YancResult<()>",
    "pub fn drain(&self) -> Vec<FlowOp>",
    "pub fn pending(&self) -> usize",
    "pub fn ready(&self) -> bool",
    "pub fn stats(&self) -> RingStats",
    // PacketBus
    "pub fn new(capacity: usize) -> Arc<Self>",
    "pub fn subscribe(&self, name: &str) -> Arc<Ring<FastPacketIn>>",
    "pub fn subscriber_count(&self) -> usize",
    "pub fn stats(&self) -> RingStats",
    "pub fn subscriber_stats(&self) -> Vec<(String, RingStats)>",
    "pub fn publish(&self, pkt: &FastPacketIn) -> usize",
    // StatChannel (read fastpath, E15/E25)
    "pub fn query(&self, switch: &str, counter: &str) -> YancResult<u64>",
    "pub fn drain_queries(&self) -> Vec<StatQuery>",
    "pub fn reply(&self, reply: StatReply) -> YancResult<()>",
    "pub fn poll_reply(&self) -> Option<StatReply>",
    "pub fn pending_queries(&self) -> usize",
    // TelemetryBus (read fastpath, E15/E25)
    "pub fn subscribe(&self, name: &str) -> Arc<Ring<TelemetrySample>>",
    "pub fn publish(&self, sample: &TelemetrySample) -> usize",
];

/// `pub use x::{A, B};` lines in lib.rs, flattened to names.
fn reexported_names(src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("pub use ") else {
            continue;
        };
        let rest = rest.trim_end_matches(';');
        let names = match (rest.find('{'), rest.rfind('}')) {
            (Some(a), Some(b)) => rest[a + 1..b].to_string(),
            _ => rest.rsplit("::").next().unwrap_or(rest).to_string(),
        };
        for n in names.split(',') {
            let n = n.trim();
            if !n.is_empty() {
                out.insert(n.to_string());
            }
        }
    }
    out
}

/// Normalized `pub fn` first-lines from a source file, test modules
/// excluded.
fn public_fns(src: &str) -> BTreeSet<String> {
    let body = src.split("#[cfg(test)]").next().unwrap_or(src);
    let mut out = BTreeSet::new();
    for line in body.lines() {
        let t = line.trim();
        if t.starts_with("pub fn ") || t.starts_with("pub const fn ") {
            out.insert(t.trim_end_matches('{').trim().to_string());
        }
    }
    out
}

#[test]
fn crate_root_reexports_are_pinned() {
    let got = reexported_names(LIB);
    let want: BTreeSet<String> = EXPECTED_REEXPORTS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        got, want,
        "libyanc re-exports changed; update EXPECTED_REEXPORTS deliberately"
    );
}

#[test]
fn fastpath_method_signatures_are_pinned() {
    let mut got = public_fns(FASTPATH);
    got.extend(public_fns(RING));
    let want: BTreeSet<String> = EXPECTED_FNS.iter().map(|s| s.to_string()).collect();
    let missing: Vec<_> = want.difference(&got).collect();
    let extra: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "libyanc public fn surface drifted.\nmissing (pinned but absent): {missing:#?}\nextra (present but unpinned): {extra:#?}"
    );
}

#[test]
fn install_returns_yanc_result_not_bare_flowop() {
    // The PR-4 contract specifically: ring-full failures surface as
    // YancError::RingFull with errno semantics, not `Result<(), FlowOp>`.
    assert!(!FASTPATH.contains("-> Result<(), FlowOp>"));
    assert!(FASTPATH.contains("YancError::ring_full"));
}
