//! A bounded shared-memory ring, the transport under the libyanc fastpath.
//!
//! The paper (§8.1): "we are implementing libyanc, a set of network-centric
//! library calls atop a shared memory system. The library provides a
//! fastpath for e.g. creating flow entries atomically and without any
//! context switchings." In-process, "shared memory" is a lock-free bounded
//! queue shared by `Arc` — pushing costs no file-system operation (no
//! simulated syscall) and no copy of boxed payloads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;

/// Lifetime counters of one ring (or an aggregate over several).
///
/// `#[non_exhaustive]`: more counters (e.g. high-water mark) can be added
/// without breaking callers, which is why this replaced the old anonymous
/// `(u64, u64, u64)` tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RingStats {
    /// Items accepted by `push`.
    pub pushed: u64,
    /// Items handed out by `pop`/`drain`.
    pub popped: u64,
    /// Items rejected because the ring was full.
    pub dropped: u64,
}

impl RingStats {
    /// Component-wise sum, for aggregating over subscriber rings.
    pub fn merge(self, other: RingStats) -> RingStats {
        RingStats {
            pushed: self.pushed + other.pushed,
            popped: self.popped + other.popped,
            dropped: self.dropped + other.dropped,
        }
    }

    /// One-line `pushed=… popped=… dropped=…` render for proc files.
    pub fn render(&self) -> String {
        format!(
            "pushed={} popped={} dropped={}",
            self.pushed, self.popped, self.dropped
        )
    }
}

/// A bounded MPMC ring with occupancy statistics.
pub struct Ring<T> {
    q: ArrayQueue<T>,
    pushed: AtomicU64,
    popped: AtomicU64,
    rejected: AtomicU64,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Ring {
            q: ArrayQueue::new(capacity),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Push; `Err(value)` when the ring is full (callers decide whether to
    /// retry, drop, or fall back to the slow path).
    pub fn push(&self, value: T) -> Result<(), T> {
        match self.q.push(value) {
            Ok(()) => {
                self.pushed.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(v) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(v)
            }
        }
    }

    /// Pop the next item, if any.
    pub fn pop(&self) -> Option<T> {
        let v = self.q.pop();
        if v.is_some() {
            self.popped.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RingStats {
        RingStats {
            pushed: self.pushed.load(Ordering::Relaxed),
            popped: self.popped.load(Ordering::Relaxed),
            dropped: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let r = Ring::new(4);
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn capacity_rejects() {
        let r = Ring::new(2);
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.push(3), Err(3));
        let st = r.stats();
        assert_eq!((st.pushed, st.popped, st.dropped), (2, 0, 1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn drain_empties() {
        let r = Ring::new(8);
        for i in 0..5 {
            r.push(i).unwrap();
        }
        assert_eq!(r.drain(), vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn cross_thread() {
        let r: Arc<Ring<u64>> = Ring::new(1024);
        let w = r.clone();
        let t = std::thread::spawn(move || {
            for i in 0..1000u64 {
                while w.push(i).is_err() {}
            }
        });
        let mut got = 0u64;
        while got < 1000 {
            if r.pop().is_some() {
                got += 1;
            }
        }
        t.join().unwrap();
        assert_eq!(r.stats().pushed, 1000);
        assert_eq!(r.stats().popped, 1000);
    }
}
