//! # libyanc — the shared-memory fastpath (paper §8.1)
//!
//! "Each fine-grained access to the file system is done through a system
//! call … Complex operations such as writing flow entries to thousands of
//! nodes will result in tens of thousands of context switches. To mitigate
//! \[this\] we are implementing libyanc, a set of network-centric library
//! calls atop a shared memory system."
//!
//! This crate is that library: a [`FlowChannel`] for programming flows
//! through one ring push instead of per-field file writes, a
//! [`PacketBus`] for zero-copy fan-out of packet-in buffers, and — the
//! read side of the same argument (E15, E25) — a [`StatChannel`] for
//! request/reply counter queries and a [`TelemetryBus`] for zero-copy
//! fan-out of unsolicited samples. Drivers accept a `FlowChannel`
//! alongside their file-system watch, so the fast and slow paths coexist
//! — which is what benchmark E14 measures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fastpath;
pub mod ring;

pub use fastpath::{FastPacketIn, FlowChannel, FlowOp, PacketBus, StatChannel, StatQuery};
pub use fastpath::{StatReply, TelemetryBus, TelemetrySample};
pub use ring::{Ring, RingStats};
