//! The flow-programming fastpath and the zero-copy packet-in bus.
//!
//! Two data paths, mirroring the paper's libyanc plans (§8.1):
//!
//! * [`FlowChannel`] — "creating flow entries atomically and without any
//!   context switchings": an application hands a whole [`FlowSpec`] (or a
//!   batch) to the driver through a shared ring. One ring push replaces
//!   the `mkdir` + per-field `write` + `version` write sequence of the
//!   file path (≈3 + #fields simulated syscalls per flow).
//! * [`PacketBus`] — "efficient, zero-copy passing of bulk data — packet-in
//!   buffers, for example — among applications": the frame travels as a
//!   reference-counted [`Bytes`]; fan-out to N subscribers clones the
//!   handle, not the payload, where the file path hex-encodes the frame
//!   into every subscriber's buffer directory.
//!
//! Trade-off (measured, not hidden): fastpath flows bypass `/net`, so they
//! are not introspectable with `ls`/`cat` unless the application also
//! mirrors them into the tree. That is exactly the flexibility/performance
//! tension the paper's design acknowledges.

use std::sync::Arc;

use bytes::Bytes;

use yanc::FlowSpec;

use crate::ring::Ring;

/// A fastpath flow command.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowOp {
    /// Install (or replace) `spec` as flow `name` on `switch`.
    Install {
        /// Switch name (`sw<dpid:hex>`).
        switch: String,
        /// Flow name (driver-local identity for later delete).
        name: String,
        /// The flow.
        spec: FlowSpec,
    },
    /// Remove flow `name` from `switch`.
    Delete {
        /// Switch name.
        switch: String,
        /// Flow name.
        name: String,
    },
}

/// Shared-ring flow channel between applications and a driver.
#[derive(Clone)]
pub struct FlowChannel {
    ring: Arc<Ring<FlowOp>>,
}

impl FlowChannel {
    /// A channel holding up to `capacity` pending ops.
    pub fn new(capacity: usize) -> Self {
        FlowChannel {
            ring: Ring::new(capacity),
        }
    }

    /// Queue a flow install. One ring push — no file-system operations.
    #[allow(clippy::result_large_err)] // the rejected op is handed back for retry
    pub fn install(&self, switch: &str, name: &str, spec: FlowSpec) -> Result<(), FlowOp> {
        self.ring.push(FlowOp::Install {
            switch: switch.to_string(),
            name: name.to_string(),
            spec,
        })
    }

    /// Queue a batch atomically with respect to a draining driver: ops are
    /// pushed back-to-back; a full ring rejects the remainder, which is
    /// returned for retry.
    pub fn install_batch(
        &self,
        switch: &str,
        flows: Vec<(String, FlowSpec)>,
    ) -> Result<(), Vec<(String, FlowSpec)>> {
        let mut it = flows.into_iter();
        for (name, spec) in it.by_ref() {
            if let Err(FlowOp::Install { name, spec, .. }) = self.install(switch, &name, spec) {
                let mut rest = vec![(name, spec)];
                rest.extend(it);
                return Err(rest);
            }
        }
        Ok(())
    }

    /// Queue a delete.
    #[allow(clippy::result_large_err)] // the rejected op is handed back for retry
    pub fn delete(&self, switch: &str, name: &str) -> Result<(), FlowOp> {
        self.ring.push(FlowOp::Delete {
            switch: switch.to_string(),
            name: name.to_string(),
        })
    }

    /// Driver side: drain pending ops.
    pub fn drain(&self) -> Vec<FlowOp> {
        self.ring.drain()
    }

    /// Pending op count.
    pub fn pending(&self) -> usize {
        self.ring.len()
    }

    /// `(pushed, popped, rejected)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.ring.stats()
    }
}

/// A packet-in delivered over the fast bus: the frame is shared, not
/// copied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastPacketIn {
    /// Originating switch.
    pub switch: String,
    /// Ingress port.
    pub in_port: u16,
    /// Switch buffer id, if buffered.
    pub buffer_id: Option<u32>,
    /// The frame (reference-counted; cloning is O(1)).
    pub data: Bytes,
}

/// Zero-copy packet-in fan-out bus.
pub struct PacketBus {
    subscribers: parking_lot::RwLock<Vec<(String, Arc<Ring<FastPacketIn>>)>>,
    capacity: usize,
}

impl PacketBus {
    /// A bus whose subscriber rings hold `capacity` packets each.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(PacketBus {
            subscribers: parking_lot::RwLock::new(Vec::new()),
            capacity,
        })
    }

    /// Subscribe under `name`; returns the ring to drain.
    pub fn subscribe(&self, name: &str) -> Arc<Ring<FastPacketIn>> {
        let ring = Ring::new(self.capacity);
        self.subscribers
            .write()
            .push((name.to_string(), ring.clone()));
        ring
    }

    /// Number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().len()
    }

    /// Publish to every subscriber. The payload `Bytes` is cloned by
    /// reference — one allocation total, regardless of fan-out width.
    /// Returns how many subscribers accepted it.
    pub fn publish(&self, pkt: &FastPacketIn) -> usize {
        let subs = self.subscribers.read();
        let mut delivered = 0;
        for (_, ring) in subs.iter() {
            if ring.push(pkt.clone()).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_openflow::{Action, FlowMatch};

    fn spec(p: u16) -> FlowSpec {
        FlowSpec {
            m: FlowMatch {
                tp_dst: Some(p),
                ..Default::default()
            },
            actions: vec![Action::out(1)],
            ..Default::default()
        }
    }

    #[test]
    fn flow_channel_roundtrip() {
        let ch = FlowChannel::new(16);
        ch.install("sw1", "a", spec(22)).unwrap();
        ch.delete("sw1", "b").unwrap();
        let ops = ch.drain();
        assert_eq!(ops.len(), 2);
        assert!(
            matches!(&ops[0], FlowOp::Install { switch, name, .. } if switch == "sw1" && name == "a")
        );
        assert!(matches!(&ops[1], FlowOp::Delete { name, .. } if name == "b"));
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn batch_rejects_overflow_with_remainder() {
        let ch = FlowChannel::new(2);
        let flows: Vec<(String, FlowSpec)> = (0..4).map(|i| (format!("f{i}"), spec(i))).collect();
        let rest = ch.install_batch("sw1", flows).unwrap_err();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].0, "f2");
        assert_eq!(ch.pending(), 2);
    }

    #[test]
    fn bus_fans_out_without_copying() {
        let bus = PacketBus::new(8);
        let r1 = bus.subscribe("router");
        let r2 = bus.subscribe("monitor");
        assert_eq!(bus.subscriber_count(), 2);
        let payload = Bytes::from(vec![0u8; 4096]);
        let pkt = FastPacketIn {
            switch: "sw1".into(),
            in_port: 1,
            buffer_id: None,
            data: payload.clone(),
        };
        assert_eq!(bus.publish(&pkt), 2);
        let a = r1.pop().unwrap();
        let b = r2.pop().unwrap();
        // Same allocation: Bytes clones point at shared storage.
        assert_eq!(a.data.as_ptr(), payload.as_ptr());
        assert_eq!(b.data.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn slow_subscriber_drops_only_its_own() {
        let bus = PacketBus::new(1);
        let r1 = bus.subscribe("fast");
        let _r2 = bus.subscribe("stalled");
        let pkt = FastPacketIn {
            switch: "s".into(),
            in_port: 1,
            buffer_id: None,
            data: Bytes::from_static(b"x"),
        };
        assert_eq!(bus.publish(&pkt), 2);
        // Both rings now full; second publish only fails per-ring.
        r1.pop();
        assert_eq!(bus.publish(&pkt), 1); // fast accepted, stalled dropped
    }
}
