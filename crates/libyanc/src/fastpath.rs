//! The flow-programming fastpath and the zero-copy packet-in bus.
//!
//! Four data paths, mirroring the paper's libyanc plans (§8.1):
//!
//! * [`FlowChannel`] — "creating flow entries atomically and without any
//!   context switchings": an application hands a whole [`FlowSpec`] (or a
//!   batch) to the driver through a shared ring. One ring push replaces
//!   the `mkdir` + per-field `write` + `version` write sequence of the
//!   file path (≈3 + #fields simulated syscalls per flow).
//! * [`PacketBus`] — "efficient, zero-copy passing of bulk data — packet-in
//!   buffers, for example — among applications": the frame travels as a
//!   reference-counted [`Bytes`]; fan-out to N subscribers clones the
//!   handle, not the payload, where the file path hex-encodes the frame
//!   into every subscriber's buffer directory.
//! * [`StatChannel`] — the read-side twin of `FlowChannel` (E15 extended
//!   by E25's read-path work): a stats query is one ring push + one ring
//!   pop instead of the file path's `open` + `read` + `close` per counter.
//!   The reply's raw rendering rides a shared [`Bytes`], so a driver that
//!   answers N outstanding queries from one counters snapshot allocates
//!   that rendering once.
//! * [`TelemetryBus`] — unsolicited counter samples fanned out to N
//!   monitoring apps exactly like packet-ins: handle clones, one payload
//!   allocation regardless of subscriber count.
//!
//! Trade-off (measured, not hidden): fastpath flows bypass `/net`, so they
//! are not introspectable with `ls`/`cat` unless the application also
//! mirrors them into the tree. That is exactly the flexibility/performance
//! tension the paper's design acknowledges.

use std::sync::Arc;

use bytes::Bytes;

use yanc::{FlowSpec, YancError, YancResult};
use yanc_vfs::Errno;

use crate::ring::{Ring, RingStats};

pub use yanc::FlowOp;

/// Shared-ring flow channel between applications and a driver.
#[derive(Clone)]
pub struct FlowChannel {
    ring: Arc<Ring<FlowOp>>,
}

impl FlowChannel {
    /// A channel holding up to `capacity` pending ops.
    pub fn new(capacity: usize) -> Self {
        FlowChannel {
            ring: Ring::new(capacity),
        }
    }

    /// Queue a flow install. One ring push — no file-system operations.
    ///
    /// A full ring is `ENOSPC` (via [`YancError::RingFull`], which carries
    /// the rejected op for retry), so fast-path and slow-path failures
    /// compose in one `match` on [`YancError::errno`].
    pub fn install(&self, switch: &str, name: &str, spec: FlowSpec) -> YancResult<()> {
        self.push_op(FlowOp::Install {
            switch: switch.to_string(),
            name: name.to_string(),
            spec,
        })
    }

    /// Queue a batch atomically with respect to a draining driver: ops are
    /// pushed back-to-back. A full ring rejects the remainder, returned in
    /// the [`YancError::RingFull`] payload: `EAGAIN` when part of the batch
    /// was enqueued (retry just the remainder once the driver drains),
    /// `ENOSPC` when nothing was.
    pub fn install_batch(&self, switch: &str, flows: Vec<(String, FlowSpec)>) -> YancResult<()> {
        let mut it = flows.into_iter();
        let mut enqueued = 0usize;
        // Not enumerate(): the error arm needs `it` back to collect the
        // rejected remainder.
        #[allow(clippy::explicit_counter_loop)]
        for (name, spec) in it.by_ref() {
            let op = FlowOp::Install {
                switch: switch.to_string(),
                name,
                spec,
            };
            if let Err(op) = self.ring.push(op) {
                let mut rejected = vec![op];
                rejected.extend(it.map(|(name, spec)| FlowOp::Install {
                    switch: switch.to_string(),
                    name,
                    spec,
                }));
                let errno = if enqueued > 0 {
                    Errno::EAGAIN
                } else {
                    Errno::ENOSPC
                };
                return Err(YancError::ring_full(errno, rejected));
            }
            enqueued += 1;
        }
        Ok(())
    }

    /// Queue a delete. Errors as [`Self::install`].
    pub fn delete(&self, switch: &str, name: &str) -> YancResult<()> {
        self.push_op(FlowOp::Delete {
            switch: switch.to_string(),
            name: name.to_string(),
        })
    }

    /// Re-submit ops rejected by an earlier call (from a
    /// [`yanc::RingFull`] payload). Same semantics as
    /// [`Self::install_batch`].
    pub fn resubmit(&self, ops: Vec<FlowOp>) -> YancResult<()> {
        let mut it = ops.into_iter();
        let mut enqueued = 0usize;
        // As in install_batch: the error arm re-consumes `it`.
        #[allow(clippy::explicit_counter_loop)]
        for op in it.by_ref() {
            if let Err(op) = self.ring.push(op) {
                let mut rejected = vec![op];
                rejected.extend(it);
                let errno = if enqueued > 0 {
                    Errno::EAGAIN
                } else {
                    Errno::ENOSPC
                };
                return Err(YancError::ring_full(errno, rejected));
            }
            enqueued += 1;
        }
        Ok(())
    }

    fn push_op(&self, op: FlowOp) -> YancResult<()> {
        self.ring
            .push(op)
            .map_err(|op| YancError::ring_full(Errno::ENOSPC, vec![op]))
    }

    /// Driver side: drain pending ops.
    pub fn drain(&self) -> Vec<FlowOp> {
        self.ring.drain()
    }

    /// Pending op count.
    pub fn pending(&self) -> usize {
        self.ring.len()
    }

    /// Whether ops are queued — poll-set probe for driver wakeup.
    pub fn ready(&self) -> bool {
        !self.ring.is_empty()
    }

    /// Lifetime counters of the underlying ring.
    pub fn stats(&self) -> RingStats {
        self.ring.stats()
    }
}

/// A packet-in delivered over the fast bus: the frame is shared, not
/// copied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastPacketIn {
    /// Originating switch.
    pub switch: String,
    /// Ingress port.
    pub in_port: u16,
    /// Switch buffer id, if buffered.
    pub buffer_id: Option<u32>,
    /// The frame (reference-counted; cloning is O(1)).
    pub data: Bytes,
}

/// Zero-copy packet-in fan-out bus.
pub struct PacketBus {
    subscribers: parking_lot::RwLock<Vec<(String, Arc<Ring<FastPacketIn>>)>>,
    capacity: usize,
}

impl PacketBus {
    /// A bus whose subscriber rings hold `capacity` packets each.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(PacketBus {
            subscribers: parking_lot::RwLock::new(Vec::new()),
            capacity,
        })
    }

    /// Subscribe under `name`; returns the ring to drain.
    pub fn subscribe(&self, name: &str) -> Arc<Ring<FastPacketIn>> {
        let ring = Ring::new(self.capacity);
        self.subscribers
            .write()
            .push((name.to_string(), ring.clone()));
        ring
    }

    /// Number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().len()
    }

    /// Aggregate counters over every subscriber ring.
    pub fn stats(&self) -> RingStats {
        self.subscribers
            .read()
            .iter()
            .fold(RingStats::default(), |acc, (_, r)| acc.merge(r.stats()))
    }

    /// Per-subscriber counters, in subscription order.
    pub fn subscriber_stats(&self) -> Vec<(String, RingStats)> {
        self.subscribers
            .read()
            .iter()
            .map(|(n, r)| (n.clone(), r.stats()))
            .collect()
    }

    /// Publish to every subscriber. The payload `Bytes` is cloned by
    /// reference — one allocation total, regardless of fan-out width.
    /// Returns how many subscribers accepted it.
    pub fn publish(&self, pkt: &FastPacketIn) -> usize {
        let subs = self.subscribers.read();
        let mut delivered = 0;
        for (_, ring) in subs.iter() {
            if ring.push(pkt.clone()).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }
}

/// A stats query travelling the read fastpath: "what is `counter` on
/// `switch` right now?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatQuery {
    /// Correlation id, allocated by [`StatChannel::query`]; the reply
    /// carries it back so an app with several queries in flight can match
    /// answers to questions.
    pub id: u64,
    /// Switch whose counters are being read.
    pub switch: String,
    /// Counter name, e.g. `"rx_packets"` — the same name the file path
    /// exposes as `stats.<counter>`.
    pub counter: String,
}

/// A driver's answer to a [`StatQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatReply {
    /// Correlation id copied from the query.
    pub id: u64,
    /// The counter value.
    pub value: u64,
    /// The raw rendering the file path would have returned from a `read`
    /// on `stats.<counter>` (reference-counted; a driver answering many
    /// queries from one snapshot shares the allocation).
    pub raw: Bytes,
}

/// Request/reply stats channel between one application and a driver.
///
/// The read-side twin of [`FlowChannel`]: where the slow path reads a
/// counter with `open` + `read` + `close` (three simulated syscalls and
/// at least one shard-lock hop in the vfs), the fastpath is one push to
/// the query ring and one pop from the reply ring — no file descriptors,
/// no locks, no context switches.
#[derive(Clone)]
pub struct StatChannel {
    queries: Arc<Ring<StatQuery>>,
    replies: Arc<Ring<StatReply>>,
    next_id: Arc<std::sync::atomic::AtomicU64>,
}

impl StatChannel {
    /// A channel whose query and reply rings hold `capacity` items each.
    pub fn new(capacity: usize) -> Self {
        StatChannel {
            queries: Ring::new(capacity),
            replies: Ring::new(capacity),
            next_id: Arc::new(std::sync::atomic::AtomicU64::new(1)),
        }
    }

    /// Queue a stats query; returns the correlation id the reply will
    /// carry. A full query ring is `ENOSPC` (via [`YancError::Busy`] —
    /// there is no payload worth returning; re-issue once the driver
    /// drains), so fast- and slow-path failures still compose in one
    /// `match` on [`YancError::errno`].
    pub fn query(&self, switch: &str, counter: &str) -> YancResult<u64> {
        let id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.queries
            .push(StatQuery {
                id,
                switch: switch.to_string(),
                counter: counter.to_string(),
            })
            .map_err(|_| YancError::busy(Errno::ENOSPC, "statchannel.queries"))?;
        Ok(id)
    }

    /// Driver side: drain pending queries.
    pub fn drain_queries(&self) -> Vec<StatQuery> {
        self.queries.drain()
    }

    /// Driver side: deliver an answer. A full reply ring is `ENOSPC` —
    /// the application is not draining; the driver drops or retries at
    /// its own policy (mirroring [`PacketBus`]'s slow-subscriber rule:
    /// a stalled reader only loses its own data).
    pub fn reply(&self, reply: StatReply) -> YancResult<()> {
        self.replies
            .push(reply)
            .map_err(|_| YancError::busy(Errno::ENOSPC, "statchannel.replies"))
    }

    /// Application side: next answer, if one arrived.
    pub fn poll_reply(&self) -> Option<StatReply> {
        self.replies.pop()
    }

    /// Whether queries are pending — poll-set probe for driver wakeup.
    pub fn ready(&self) -> bool {
        !self.queries.is_empty()
    }

    /// Pending (undrained) query count.
    pub fn pending_queries(&self) -> usize {
        self.queries.len()
    }

    /// Lifetime counters of the query and reply rings, merged.
    pub fn stats(&self) -> RingStats {
        self.queries.stats().merge(self.replies.stats())
    }
}

/// One unsolicited telemetry sample travelling the bus: the raw rendering
/// is shared, not copied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Originating switch.
    pub switch: String,
    /// Counter name.
    pub counter: String,
    /// The sampled value.
    pub value: u64,
    /// Driver-assigned logical tick of the sample (the vfs clock domain,
    /// never wall time).
    pub tick: u64,
    /// Raw rendering of the sample (reference-counted; fan-out clones the
    /// handle, not the payload).
    pub raw: Bytes,
}

/// Zero-copy telemetry fan-out bus: [`PacketBus`] for counter samples.
///
/// A driver publishing port statistics to N monitoring applications does
/// one allocation per sample, not N — where the file path would write the
/// rendering into every subscriber's tree and wake every watch.
pub struct TelemetryBus {
    subscribers: parking_lot::RwLock<Vec<(String, Arc<Ring<TelemetrySample>>)>>,
    capacity: usize,
}

impl TelemetryBus {
    /// A bus whose subscriber rings hold `capacity` samples each.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(TelemetryBus {
            subscribers: parking_lot::RwLock::new(Vec::new()),
            capacity,
        })
    }

    /// Subscribe under `name`; returns the ring to drain.
    pub fn subscribe(&self, name: &str) -> Arc<Ring<TelemetrySample>> {
        let ring = Ring::new(self.capacity);
        self.subscribers
            .write()
            .push((name.to_string(), ring.clone()));
        ring
    }

    /// Number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().len()
    }

    /// Aggregate counters over every subscriber ring.
    pub fn stats(&self) -> RingStats {
        self.subscribers
            .read()
            .iter()
            .fold(RingStats::default(), |acc, (_, r)| acc.merge(r.stats()))
    }

    /// Per-subscriber counters, in subscription order.
    pub fn subscriber_stats(&self) -> Vec<(String, RingStats)> {
        self.subscribers
            .read()
            .iter()
            .map(|(n, r)| (n.clone(), r.stats()))
            .collect()
    }

    /// Publish to every subscriber. The `raw` [`Bytes`] is cloned by
    /// reference — one allocation total, regardless of fan-out width.
    /// Returns how many subscribers accepted it.
    pub fn publish(&self, sample: &TelemetrySample) -> usize {
        let subs = self.subscribers.read();
        let mut delivered = 0;
        for (_, ring) in subs.iter() {
            if ring.push(sample.clone()).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc::YancError;
    use yanc_openflow::{Action, FlowMatch};

    fn spec(p: u16) -> FlowSpec {
        FlowSpec {
            m: FlowMatch {
                tp_dst: Some(p),
                ..Default::default()
            },
            actions: vec![Action::out(1)],
            ..Default::default()
        }
    }

    #[test]
    fn flow_channel_roundtrip() {
        let ch = FlowChannel::new(16);
        ch.install("sw1", "a", spec(22)).unwrap();
        ch.delete("sw1", "b").unwrap();
        let ops = ch.drain();
        assert_eq!(ops.len(), 2);
        assert!(
            matches!(&ops[0], FlowOp::Install { switch, name, .. } if switch == "sw1" && name == "a")
        );
        assert!(matches!(&ops[1], FlowOp::Delete { name, .. } if name == "b"));
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn batch_overflow_is_eagain_with_remainder() {
        let ch = FlowChannel::new(2);
        let flows: Vec<(String, FlowSpec)> = (0..4).map(|i| (format!("f{i}"), spec(i))).collect();
        let err = ch.install_batch("sw1", flows).unwrap_err();
        let rf = match err {
            YancError::RingFull(rf) => rf,
            other => panic!("expected RingFull, got {other:?}"),
        };
        assert_eq!(rf.errno, Errno::EAGAIN); // partially enqueued
        assert_eq!(rf.rejected.len(), 2);
        assert!(matches!(&rf.rejected[0], FlowOp::Install { name, .. } if name == "f2"));
        assert_eq!(ch.pending(), 2);

        // The remainder resubmits cleanly after the driver drains.
        ch.drain();
        ch.resubmit(rf.rejected).unwrap();
        assert_eq!(ch.pending(), 2);
    }

    #[test]
    fn full_ring_is_enospc_and_single_install_composes_with_errno() {
        let ch = FlowChannel::new(1);
        ch.install("sw1", "a", spec(1)).unwrap();
        let err = ch.install("sw1", "b", spec(2)).unwrap_err();
        assert_eq!(err.errno(), Some(Errno::ENOSPC));
        // A batch against an already-full ring: nothing enqueued → ENOSPC.
        let err = ch
            .install_batch("sw1", vec![("c".into(), spec(3))])
            .unwrap_err();
        assert_eq!(err.errno(), Some(Errno::ENOSPC));
        assert_eq!(ch.stats().dropped, 2);
    }

    #[test]
    fn bus_fans_out_without_copying() {
        let bus = PacketBus::new(8);
        let r1 = bus.subscribe("router");
        let r2 = bus.subscribe("monitor");
        assert_eq!(bus.subscriber_count(), 2);
        let payload = Bytes::from(vec![0u8; 4096]);
        let pkt = FastPacketIn {
            switch: "sw1".into(),
            in_port: 1,
            buffer_id: None,
            data: payload.clone(),
        };
        assert_eq!(bus.publish(&pkt), 2);
        let a = r1.pop().unwrap();
        let b = r2.pop().unwrap();
        // Same allocation: Bytes clones point at shared storage.
        assert_eq!(a.data.as_ptr(), payload.as_ptr());
        assert_eq!(b.data.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn stat_channel_roundtrip_shares_the_raw_rendering() {
        let ch = StatChannel::new(8);
        let id_rx = ch.query("sw1", "rx_packets").unwrap();
        let id_tx = ch.query("sw1", "tx_packets").unwrap();
        assert_ne!(id_rx, id_tx); // correlation ids are distinct
        assert!(ch.ready());

        // Driver: one snapshot rendering shared across both replies.
        let queries = ch.drain_queries();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].counter, "rx_packets");
        let raw = Bytes::from_static(b"rx=7 tx=9\n");
        for q in &queries {
            ch.reply(StatReply {
                id: q.id,
                value: if q.counter == "rx_packets" { 7 } else { 9 },
                raw: raw.clone(),
            })
            .unwrap();
        }

        // App: answers correlate by id and point at the shared storage.
        let a = ch.poll_reply().unwrap();
        let b = ch.poll_reply().unwrap();
        assert_eq!((a.id, a.value), (id_rx, 7));
        assert_eq!((b.id, b.value), (id_tx, 9));
        assert_eq!(a.raw.as_ptr(), raw.as_ptr());
        assert_eq!(b.raw.as_ptr(), raw.as_ptr());
        assert!(ch.poll_reply().is_none());
    }

    #[test]
    fn stat_channel_full_rings_are_enospc_busy() {
        let ch = StatChannel::new(1);
        ch.query("sw1", "a").unwrap();
        let err = ch.query("sw1", "b").unwrap_err();
        assert_eq!(err.errno(), Some(Errno::ENOSPC));
        assert!(matches!(err, YancError::Busy { .. }));
        // Reply ring full: the driver-side push fails the same way.
        let raw = Bytes::from_static(b"0\n");
        ch.reply(StatReply {
            id: 1,
            value: 0,
            raw: raw.clone(),
        })
        .unwrap();
        let err = ch.reply(StatReply {
            id: 2,
            value: 0,
            raw,
        });
        assert_eq!(err.unwrap_err().errno(), Some(Errno::ENOSPC));
        assert_eq!(ch.stats().dropped, 2);
    }

    #[test]
    fn telemetry_bus_fans_out_without_copying() {
        let bus = TelemetryBus::new(4);
        let r1 = bus.subscribe("monitor");
        let r2 = bus.subscribe("billing");
        let raw = Bytes::from(vec![b'9'; 512]);
        let sample = TelemetrySample {
            switch: "sw1".into(),
            counter: "rx_bytes".into(),
            value: 512,
            tick: 41,
            raw: raw.clone(),
        };
        assert_eq!(bus.publish(&sample), 2);
        let a = r1.pop().unwrap();
        let b = r2.pop().unwrap();
        assert_eq!(a.raw.as_ptr(), raw.as_ptr());
        assert_eq!(b.raw.as_ptr(), raw.as_ptr());
        assert_eq!(a.tick, 41);
        // A stalled subscriber only loses its own samples.
        for _ in 0..4 {
            bus.publish(&sample);
        }
        assert_eq!(bus.publish(&sample), 0); // both full now
        r1.drain();
        assert_eq!(bus.publish(&sample), 1);
        let per = bus.subscriber_stats();
        assert_eq!(per[0].0, "monitor");
        assert!(per[1].1.dropped > per[0].1.dropped);
    }

    #[test]
    fn slow_subscriber_drops_only_its_own() {
        let bus = PacketBus::new(1);
        let r1 = bus.subscribe("fast");
        let _r2 = bus.subscribe("stalled");
        let pkt = FastPacketIn {
            switch: "s".into(),
            in_port: 1,
            buffer_id: None,
            data: Bytes::from_static(b"x"),
        };
        assert_eq!(bus.publish(&pkt), 2);
        // Both rings now full; second publish only fails per-ring.
        r1.pop();
        assert_eq!(bus.publish(&pkt), 1); // fast accepted, stalled dropped
    }
}
