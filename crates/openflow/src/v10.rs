//! OpenFlow 1.0 (wire version 0x01) message codec.
//!
//! Translates the version-independent [`Message`] model to and from real
//! OpenFlow 1.0 wire bytes: the 40-byte `ofp_match` with wildcard bitmap,
//! 48-byte `ofp_phy_port`, type-length action list, stats requests/replies,
//! and all the async messages. Combinations 1.0 cannot express — multiple
//! tables, `goto_table` instructions, `PortDesc` multiparts — fail to
//! encode, which is exactly the behaviour the paper's per-version drivers
//! (§4.1) rely on to advertise capability differences.

use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use yanc_packet::MacAddr;

use crate::types::{
    port_no, Action, FlowMatch, FlowMod, FlowModCommand, FlowRemovedReason, FlowStats, Ipv4Prefix,
    Message, PacketInReason, PortDesc, PortReason, PortStats, StatsReply, StatsRequest,
    SwitchFeatures,
};
use crate::wire::{frame, get_fixed_str, put_fixed_str, CodecError, CodecResult, RawFrame, Reader};

/// The wire version byte.
pub const VERSION: u8 = 0x01;

// Message type codes.
mod t {
    pub const HELLO: u8 = 0;
    pub const ERROR: u8 = 1;
    pub const ECHO_REQ: u8 = 2;
    pub const ECHO_REP: u8 = 3;
    pub const FEATURES_REQ: u8 = 5;
    pub const FEATURES_REP: u8 = 6;
    pub const GET_CONFIG_REQ: u8 = 7;
    pub const GET_CONFIG_REP: u8 = 8;
    pub const SET_CONFIG: u8 = 9;
    pub const PACKET_IN: u8 = 10;
    pub const FLOW_REMOVED: u8 = 11;
    pub const PORT_STATUS: u8 = 12;
    pub const PACKET_OUT: u8 = 13;
    pub const FLOW_MOD: u8 = 14;
    pub const PORT_MOD: u8 = 15;
    pub const STATS_REQ: u8 = 16;
    pub const STATS_REP: u8 = 17;
    pub const BARRIER_REQ: u8 = 18;
    pub const BARRIER_REP: u8 = 19;
}

// Wildcard bits for ofp_match.
mod w {
    pub const IN_PORT: u32 = 1 << 0;
    pub const DL_VLAN: u32 = 1 << 1;
    pub const DL_SRC: u32 = 1 << 2;
    pub const DL_DST: u32 = 1 << 3;
    pub const DL_TYPE: u32 = 1 << 4;
    pub const NW_PROTO: u32 = 1 << 5;
    pub const TP_SRC: u32 = 1 << 6;
    pub const TP_DST: u32 = 1 << 7;
    pub const NW_SRC_SHIFT: u32 = 8;
    pub const NW_DST_SHIFT: u32 = 14;
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    pub const NW_TOS: u32 = 1 << 21;
}

const BUFFER_NONE: u32 = 0xffff_ffff;

// Port feature bits (speed encoding).
const PF_10MB_FD: u32 = 1 << 1;
const PF_100MB_FD: u32 = 1 << 3;
const PF_1GB_FD: u32 = 1 << 5;
const PF_10GB_FD: u32 = 1 << 6;

fn speed_to_features(kbps: u32) -> u32 {
    if kbps >= 10_000_000 {
        PF_10GB_FD
    } else if kbps >= 1_000_000 {
        PF_1GB_FD
    } else if kbps >= 100_000 {
        PF_100MB_FD
    } else if kbps > 0 {
        PF_10MB_FD
    } else {
        0
    }
}

fn features_to_speed(bits: u32) -> u32 {
    if bits & PF_10GB_FD != 0 {
        10_000_000
    } else if bits & PF_1GB_FD != 0 {
        1_000_000
    } else if bits & PF_100MB_FD != 0 {
        100_000
    } else if bits & PF_10MB_FD != 0 {
        10_000
    } else {
        0
    }
}

// ---------------------------------------------------------------------
// ofp_match
// ---------------------------------------------------------------------

fn put_match(b: &mut BytesMut, m: &FlowMatch) {
    let mut wc: u32 = 0;
    if m.in_port.is_none() {
        wc |= w::IN_PORT;
    }
    if m.dl_vlan.is_none() {
        wc |= w::DL_VLAN;
    }
    if m.dl_src.is_none() {
        wc |= w::DL_SRC;
    }
    if m.dl_dst.is_none() {
        wc |= w::DL_DST;
    }
    if m.dl_type.is_none() {
        wc |= w::DL_TYPE;
    }
    if m.nw_proto.is_none() {
        wc |= w::NW_PROTO;
    }
    if m.tp_src.is_none() {
        wc |= w::TP_SRC;
    }
    if m.tp_dst.is_none() {
        wc |= w::TP_DST;
    }
    if m.dl_vlan_pcp.is_none() {
        wc |= w::DL_VLAN_PCP;
    }
    if m.nw_tos.is_none() {
        wc |= w::NW_TOS;
    }
    let src_wild = m
        .nw_src
        .map(|p| 32 - u32::from(p.prefix_len))
        .unwrap_or(32)
        .min(63);
    let dst_wild = m
        .nw_dst
        .map(|p| 32 - u32::from(p.prefix_len))
        .unwrap_or(32)
        .min(63);
    wc |= src_wild << w::NW_SRC_SHIFT;
    wc |= dst_wild << w::NW_DST_SHIFT;

    b.put_u32(wc);
    b.put_u16(m.in_port.unwrap_or(0));
    b.put_slice(&m.dl_src.unwrap_or(MacAddr::ZERO).0);
    b.put_slice(&m.dl_dst.unwrap_or(MacAddr::ZERO).0);
    b.put_u16(m.dl_vlan.unwrap_or(0xffff));
    b.put_u8(m.dl_vlan_pcp.unwrap_or(0));
    b.put_u8(0); // pad
    b.put_u16(m.dl_type.unwrap_or(0));
    b.put_u8(m.nw_tos.unwrap_or(0));
    b.put_u8(m.nw_proto.unwrap_or(0));
    b.put_u16(0); // pad
    b.put_u32(m.nw_src.map(|p| u32::from(p.addr)).unwrap_or(0));
    b.put_u32(m.nw_dst.map(|p| u32::from(p.addr)).unwrap_or(0));
    b.put_u16(m.tp_src.unwrap_or(0));
    b.put_u16(m.tp_dst.unwrap_or(0));
}

fn get_match(r: &mut Reader<'_>) -> CodecResult<FlowMatch> {
    let wc = r.u32()?;
    let in_port = r.u16()?;
    let dl_src = MacAddr(r.bytes(6)?.try_into().unwrap());
    let dl_dst = MacAddr(r.bytes(6)?.try_into().unwrap());
    let dl_vlan = r.u16()?;
    let dl_vlan_pcp = r.u8()?;
    r.skip(1)?;
    let dl_type = r.u16()?;
    let nw_tos = r.u8()?;
    let nw_proto = r.u8()?;
    r.skip(2)?;
    let nw_src = r.u32()?;
    let nw_dst = r.u32()?;
    let tp_src = r.u16()?;
    let tp_dst = r.u16()?;

    let src_wild = (wc >> w::NW_SRC_SHIFT) & 0x3f;
    let dst_wild = (wc >> w::NW_DST_SHIFT) & 0x3f;
    let prefix = |addr: u32, wild: u32| -> Option<Ipv4Prefix> {
        if wild >= 32 {
            None
        } else {
            Some(Ipv4Prefix {
                addr: Ipv4Addr::from(addr),
                prefix_len: (32 - wild) as u8,
            })
        }
    };
    Ok(FlowMatch {
        in_port: (wc & w::IN_PORT == 0).then_some(in_port),
        dl_src: (wc & w::DL_SRC == 0).then_some(dl_src),
        dl_dst: (wc & w::DL_DST == 0).then_some(dl_dst),
        dl_vlan: (wc & w::DL_VLAN == 0).then_some(dl_vlan),
        dl_vlan_pcp: (wc & w::DL_VLAN_PCP == 0).then_some(dl_vlan_pcp),
        dl_type: (wc & w::DL_TYPE == 0).then_some(dl_type),
        nw_tos: (wc & w::NW_TOS == 0).then_some(nw_tos),
        nw_proto: (wc & w::NW_PROTO == 0).then_some(nw_proto),
        nw_src: prefix(nw_src, src_wild),
        nw_dst: prefix(nw_dst, dst_wild),
        tp_src: (wc & w::TP_SRC == 0).then_some(tp_src),
        tp_dst: (wc & w::TP_DST == 0).then_some(tp_dst),
    })
}

// ---------------------------------------------------------------------
// actions
// ---------------------------------------------------------------------

fn put_actions(b: &mut BytesMut, actions: &[Action]) {
    for a in actions {
        match a {
            Action::Output { port, max_len } => {
                b.put_u16(0);
                b.put_u16(8);
                b.put_u16(*port);
                b.put_u16(*max_len);
            }
            Action::SetVlanVid(vid) => {
                b.put_u16(1);
                b.put_u16(8);
                b.put_u16(*vid);
                b.put_u16(0);
            }
            Action::SetVlanPcp(pcp) => {
                b.put_u16(2);
                b.put_u16(8);
                b.put_u8(*pcp);
                b.put_bytes(0, 3);
            }
            Action::StripVlan => {
                b.put_u16(3);
                b.put_u16(8);
                b.put_u32(0);
            }
            Action::SetDlSrc(mac) => {
                b.put_u16(4);
                b.put_u16(16);
                b.put_slice(&mac.0);
                b.put_bytes(0, 6);
            }
            Action::SetDlDst(mac) => {
                b.put_u16(5);
                b.put_u16(16);
                b.put_slice(&mac.0);
                b.put_bytes(0, 6);
            }
            Action::SetNwSrc(ip) => {
                b.put_u16(6);
                b.put_u16(8);
                b.put_u32(u32::from(*ip));
            }
            Action::SetNwDst(ip) => {
                b.put_u16(7);
                b.put_u16(8);
                b.put_u32(u32::from(*ip));
            }
            Action::SetNwTos(tos) => {
                b.put_u16(8);
                b.put_u16(8);
                b.put_u8(*tos);
                b.put_bytes(0, 3);
            }
            Action::SetTpSrc(p) => {
                b.put_u16(9);
                b.put_u16(8);
                b.put_u16(*p);
                b.put_u16(0);
            }
            Action::SetTpDst(p) => {
                b.put_u16(10);
                b.put_u16(8);
                b.put_u16(*p);
                b.put_u16(0);
            }
            Action::Enqueue { port, queue_id } => {
                b.put_u16(11);
                b.put_u16(16);
                b.put_u16(*port);
                b.put_bytes(0, 6);
                b.put_u32(*queue_id);
            }
        }
    }
}

fn get_actions(r: &mut Reader<'_>, total_len: usize) -> CodecResult<Vec<Action>> {
    let end = r.pos + total_len;
    let mut out = Vec::new();
    while r.pos < end {
        let atype = r.u16()?;
        let alen = usize::from(r.u16()?);
        if alen < 8 || r.pos + alen - 4 > end {
            return Err(CodecError::new(
                "v10/action",
                format!("bad action length {alen}"),
            ));
        }
        match atype {
            0 => {
                out.push(Action::Output {
                    port: r.u16()?,
                    max_len: r.u16()?,
                });
            }
            1 => {
                out.push(Action::SetVlanVid(r.u16()?));
                r.skip(2)?;
            }
            2 => {
                out.push(Action::SetVlanPcp(r.u8()?));
                r.skip(3)?;
            }
            3 => {
                out.push(Action::StripVlan);
                r.skip(4)?;
            }
            4 => {
                out.push(Action::SetDlSrc(MacAddr(r.bytes(6)?.try_into().unwrap())));
                r.skip(6)?;
            }
            5 => {
                out.push(Action::SetDlDst(MacAddr(r.bytes(6)?.try_into().unwrap())));
                r.skip(6)?;
            }
            6 => out.push(Action::SetNwSrc(Ipv4Addr::from(r.u32()?))),
            7 => out.push(Action::SetNwDst(Ipv4Addr::from(r.u32()?))),
            8 => {
                out.push(Action::SetNwTos(r.u8()?));
                r.skip(3)?;
            }
            9 => {
                out.push(Action::SetTpSrc(r.u16()?));
                r.skip(2)?;
            }
            10 => {
                out.push(Action::SetTpDst(r.u16()?));
                r.skip(2)?;
            }
            11 => {
                let port = r.u16()?;
                r.skip(6)?;
                let queue_id = r.u32()?;
                out.push(Action::Enqueue { port, queue_id });
            }
            other => {
                return Err(CodecError::new(
                    "v10/action",
                    format!("unknown action type {other}"),
                ))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// ports
// ---------------------------------------------------------------------

fn put_port(b: &mut BytesMut, p: &PortDesc) {
    b.put_u16(p.port_no);
    b.put_slice(&p.hw_addr.0);
    put_fixed_str(b, &p.name, 16);
    b.put_u32(u32::from(p.config_down)); // OFPPC_PORT_DOWN
    b.put_u32(u32::from(p.link_down)); // OFPPS_LINK_DOWN
    b.put_u32(speed_to_features(p.curr_speed)); // curr
    b.put_u32(speed_to_features(p.curr_speed)); // advertised
    b.put_u32(speed_to_features(p.max_speed)); // supported
    b.put_u32(0); // peer
}

fn get_port(r: &mut Reader<'_>) -> CodecResult<PortDesc> {
    let port_no = r.u16()?;
    let hw_addr = MacAddr(r.bytes(6)?.try_into().unwrap());
    let name = get_fixed_str(r, 16)?;
    let config = r.u32()?;
    let state = r.u32()?;
    let curr = r.u32()?;
    r.skip(4)?; // advertised
    let supported = r.u32()?;
    r.skip(4)?; // peer
    Ok(PortDesc {
        port_no,
        hw_addr,
        name,
        config_down: config & 1 != 0,
        link_down: state & 1 != 0,
        curr_speed: features_to_speed(curr),
        max_speed: features_to_speed(supported),
    })
}

// ---------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------

/// Encode `msg` as an OpenFlow 1.0 frame with the given transaction id.
pub fn encode(msg: &Message, xid: u32) -> CodecResult<Bytes> {
    let mut b = BytesMut::new();
    let msg_type = match msg {
        Message::Hello => t::HELLO,
        Message::Error {
            err_type,
            code,
            data,
        } => {
            b.put_u16(*err_type);
            b.put_u16(*code);
            b.put_slice(data);
            t::ERROR
        }
        Message::EchoRequest(data) => {
            b.put_slice(data);
            t::ECHO_REQ
        }
        Message::EchoReply(data) => {
            b.put_slice(data);
            t::ECHO_REP
        }
        Message::FeaturesRequest => t::FEATURES_REQ,
        Message::FeaturesReply(f) => {
            b.put_u64(f.datapath_id);
            b.put_u32(f.n_buffers);
            b.put_u8(f.n_tables);
            b.put_bytes(0, 3);
            b.put_u32(f.capabilities);
            b.put_u32(f.actions);
            for p in &f.ports {
                put_port(&mut b, p);
            }
            t::FEATURES_REP
        }
        Message::GetConfigRequest => t::GET_CONFIG_REQ,
        Message::GetConfigReply { miss_send_len } => {
            b.put_u16(0); // flags
            b.put_u16(*miss_send_len);
            t::GET_CONFIG_REP
        }
        Message::SetConfig { miss_send_len } => {
            b.put_u16(0);
            b.put_u16(*miss_send_len);
            t::SET_CONFIG
        }
        Message::PacketIn {
            buffer_id,
            total_len,
            in_port,
            reason,
            table_id,
            data,
        } => {
            if *table_id != 0 {
                return Err(CodecError::new("v10/packet_in", "1.0 has a single table"));
            }
            b.put_u32(buffer_id.unwrap_or(BUFFER_NONE));
            b.put_u16(*total_len);
            b.put_u16(*in_port);
            b.put_u8(match reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            b.put_u8(0);
            b.put_slice(data);
            t::PACKET_IN
        }
        Message::PacketOut {
            buffer_id,
            in_port,
            actions,
            data,
        } => {
            b.put_u32(buffer_id.unwrap_or(BUFFER_NONE));
            b.put_u16(*in_port);
            let mut ab = BytesMut::new();
            put_actions(&mut ab, actions);
            b.put_u16(ab.len() as u16);
            b.put_slice(&ab);
            if buffer_id.is_none() {
                b.put_slice(data);
            }
            t::PACKET_OUT
        }
        Message::FlowMod(fm) => {
            if fm.goto_table.is_some() {
                return Err(CodecError::new(
                    "v10/flow_mod",
                    "goto_table needs OpenFlow >= 1.1",
                ));
            }
            if fm.table_id != 0 {
                return Err(CodecError::new("v10/flow_mod", "1.0 has a single table"));
            }
            put_match(&mut b, &fm.m);
            b.put_u64(fm.cookie);
            b.put_u16(match fm.command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::ModifyStrict => 2,
                FlowModCommand::Delete => 3,
                FlowModCommand::DeleteStrict => 4,
            });
            b.put_u16(fm.idle_timeout);
            b.put_u16(fm.hard_timeout);
            b.put_u16(fm.priority);
            b.put_u32(fm.buffer_id.unwrap_or(BUFFER_NONE));
            b.put_u16(fm.out_port.unwrap_or(port_no::NONE));
            b.put_u16(fm.flags);
            put_actions(&mut b, &fm.actions);
            t::FLOW_MOD
        }
        Message::FlowRemoved {
            m,
            cookie,
            priority,
            reason,
            duration_sec,
            packet_count,
            byte_count,
        } => {
            put_match(&mut b, m);
            b.put_u64(*cookie);
            b.put_u16(*priority);
            b.put_u8(match reason {
                FlowRemovedReason::IdleTimeout => 0,
                FlowRemovedReason::HardTimeout => 1,
                FlowRemovedReason::Delete => 2,
            });
            b.put_u8(0);
            b.put_u32(*duration_sec);
            b.put_u32(0); // duration_nsec
            b.put_u16(0); // idle_timeout
            b.put_bytes(0, 2);
            b.put_u64(*packet_count);
            b.put_u64(*byte_count);
            t::FLOW_REMOVED
        }
        Message::PortStatus { reason, desc } => {
            b.put_u8(match reason {
                PortReason::Add => 0,
                PortReason::Delete => 1,
                PortReason::Modify => 2,
            });
            b.put_bytes(0, 7);
            put_port(&mut b, desc);
            t::PORT_STATUS
        }
        Message::PortMod {
            port_no,
            hw_addr,
            down,
        } => {
            b.put_u16(*port_no);
            b.put_slice(&hw_addr.0);
            b.put_u32(u32::from(*down)); // config
            b.put_u32(1); // mask: PORT_DOWN bit
            b.put_u32(0); // advertise
            b.put_bytes(0, 4);
            t::PORT_MOD
        }
        Message::StatsRequest(req) => {
            match req {
                StatsRequest::Desc => {
                    b.put_u16(0);
                    b.put_u16(0);
                }
                StatsRequest::Flow { table_id, m } => {
                    b.put_u16(1);
                    b.put_u16(0);
                    put_match(&mut b, m);
                    b.put_u8(*table_id);
                    b.put_u8(0);
                    b.put_u16(port_no::NONE);
                }
                StatsRequest::Aggregate { table_id, m } => {
                    b.put_u16(2);
                    b.put_u16(0);
                    put_match(&mut b, m);
                    b.put_u8(*table_id);
                    b.put_u8(0);
                    b.put_u16(port_no::NONE);
                }
                StatsRequest::Port { port_no } => {
                    b.put_u16(4);
                    b.put_u16(0);
                    b.put_u16(*port_no);
                    b.put_bytes(0, 6);
                }
                StatsRequest::PortDesc => {
                    return Err(CodecError::new(
                        "v10/stats",
                        "PortDesc stats need OpenFlow >= 1.3 (ports travel in FeaturesReply)",
                    ))
                }
            }
            t::STATS_REQ
        }
        Message::StatsReply(rep) => {
            match rep {
                StatsReply::Desc { description } => {
                    b.put_u16(0);
                    b.put_u16(0);
                    put_fixed_str(&mut b, description, 256); // mfr_desc
                    put_fixed_str(&mut b, "yanc-sim", 256); // hw_desc
                    put_fixed_str(&mut b, "yanc", 256); // sw_desc
                    put_fixed_str(&mut b, "0", 32); // serial_num
                    put_fixed_str(&mut b, description, 256); // dp_desc
                }
                StatsReply::Flow(flows) => {
                    b.put_u16(1);
                    b.put_u16(0);
                    for fst in flows {
                        let mut e = BytesMut::new();
                        e.put_u8(fst.table_id);
                        e.put_u8(0);
                        put_match(&mut e, &fst.m);
                        e.put_u32(fst.duration_sec);
                        e.put_u32(0); // nsec
                        e.put_u16(fst.priority);
                        e.put_u16(0); // idle
                        e.put_u16(0); // hard
                        e.put_bytes(0, 6);
                        e.put_u64(fst.cookie);
                        e.put_u64(fst.packet_count);
                        e.put_u64(fst.byte_count);
                        b.put_u16(e.len() as u16 + 2);
                        b.put_slice(&e);
                    }
                }
                StatsReply::Aggregate {
                    packet_count,
                    byte_count,
                    flow_count,
                } => {
                    b.put_u16(2);
                    b.put_u16(0);
                    b.put_u64(*packet_count);
                    b.put_u64(*byte_count);
                    b.put_u32(*flow_count);
                    b.put_bytes(0, 4);
                }
                StatsReply::Port(ports) => {
                    b.put_u16(4);
                    b.put_u16(0);
                    for p in ports {
                        b.put_u16(p.port_no);
                        b.put_bytes(0, 6);
                        b.put_u64(p.rx_packets);
                        b.put_u64(p.tx_packets);
                        b.put_u64(p.rx_bytes);
                        b.put_u64(p.tx_bytes);
                        b.put_u64(p.rx_dropped);
                        b.put_u64(p.tx_dropped);
                        b.put_bytes(0, 48); // rx/tx errors, frame/over/crc, collisions
                    }
                }
                StatsReply::PortDesc(_) => {
                    return Err(CodecError::new(
                        "v10/stats",
                        "PortDesc reply needs OpenFlow >= 1.3",
                    ))
                }
            }
            t::STATS_REP
        }
        Message::BarrierRequest => t::BARRIER_REQ,
        Message::BarrierReply => t::BARRIER_REP,
    };
    Ok(frame(VERSION, msg_type, xid, &b))
}

// ---------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------

/// Decode an OpenFlow 1.0 frame body into a [`Message`].
pub fn decode(f: &RawFrame) -> CodecResult<Message> {
    if f.version != VERSION {
        return Err(CodecError::new(
            "v10",
            format!("not version 0x01: 0x{:02x}", f.version),
        ));
    }
    let mut r = Reader::new("v10", &f.body);
    let msg = match f.msg_type {
        t::HELLO => Message::Hello,
        t::ERROR => {
            let err_type = r.u16()?;
            let code = r.u16()?;
            Message::Error {
                err_type,
                code,
                data: Bytes::copy_from_slice(r.rest()),
            }
        }
        t::ECHO_REQ => Message::EchoRequest(Bytes::copy_from_slice(r.rest())),
        t::ECHO_REP => Message::EchoReply(Bytes::copy_from_slice(r.rest())),
        t::FEATURES_REQ => Message::FeaturesRequest,
        t::FEATURES_REP => {
            let datapath_id = r.u64()?;
            let n_buffers = r.u32()?;
            let n_tables = r.u8()?;
            r.skip(3)?;
            let capabilities = r.u32()?;
            let actions = r.u32()?;
            let mut ports = Vec::new();
            while r.remaining() >= 48 {
                ports.push(get_port(&mut r)?);
            }
            Message::FeaturesReply(SwitchFeatures {
                datapath_id,
                n_buffers,
                n_tables,
                capabilities,
                actions,
                ports,
            })
        }
        t::GET_CONFIG_REQ => Message::GetConfigRequest,
        t::GET_CONFIG_REP => {
            r.skip(2)?;
            Message::GetConfigReply {
                miss_send_len: r.u16()?,
            }
        }
        t::SET_CONFIG => {
            r.skip(2)?;
            Message::SetConfig {
                miss_send_len: r.u16()?,
            }
        }
        t::PACKET_IN => {
            let buffer_id = r.u32()?;
            let total_len = r.u16()?;
            let in_port = r.u16()?;
            let reason = match r.u8()? {
                0 => PacketInReason::NoMatch,
                _ => PacketInReason::Action,
            };
            r.skip(1)?;
            Message::PacketIn {
                buffer_id: (buffer_id != BUFFER_NONE).then_some(buffer_id),
                total_len,
                in_port,
                reason,
                table_id: 0,
                data: Bytes::copy_from_slice(r.rest()),
            }
        }
        t::PACKET_OUT => {
            let buffer_id = r.u32()?;
            let in_port = r.u16()?;
            let alen = usize::from(r.u16()?);
            let actions = get_actions(&mut r, alen)?;
            Message::PacketOut {
                buffer_id: (buffer_id != BUFFER_NONE).then_some(buffer_id),
                in_port,
                actions,
                data: Bytes::copy_from_slice(r.rest()),
            }
        }
        t::FLOW_MOD => {
            let m = get_match(&mut r)?;
            let cookie = r.u64()?;
            let command = match r.u16()? {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::ModifyStrict,
                3 => FlowModCommand::Delete,
                4 => FlowModCommand::DeleteStrict,
                c => return Err(CodecError::new("v10/flow_mod", format!("bad command {c}"))),
            };
            let idle_timeout = r.u16()?;
            let hard_timeout = r.u16()?;
            let priority = r.u16()?;
            let buffer_id = r.u32()?;
            let out_port = r.u16()?;
            let flags = r.u16()?;
            let alen = r.remaining();
            let actions = get_actions(&mut r, alen)?;
            Message::FlowMod(FlowMod {
                table_id: 0,
                command,
                m,
                cookie,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id: (buffer_id != BUFFER_NONE).then_some(buffer_id),
                out_port: (out_port != port_no::NONE).then_some(out_port),
                flags,
                actions,
                goto_table: None,
            })
        }
        t::FLOW_REMOVED => {
            let m = get_match(&mut r)?;
            let cookie = r.u64()?;
            let priority = r.u16()?;
            let reason = match r.u8()? {
                0 => FlowRemovedReason::IdleTimeout,
                1 => FlowRemovedReason::HardTimeout,
                _ => FlowRemovedReason::Delete,
            };
            r.skip(1)?;
            let duration_sec = r.u32()?;
            r.skip(4 + 2 + 2)?;
            let packet_count = r.u64()?;
            let byte_count = r.u64()?;
            Message::FlowRemoved {
                m,
                cookie,
                priority,
                reason,
                duration_sec,
                packet_count,
                byte_count,
            }
        }
        t::PORT_STATUS => {
            let reason = match r.u8()? {
                0 => PortReason::Add,
                1 => PortReason::Delete,
                _ => PortReason::Modify,
            };
            r.skip(7)?;
            Message::PortStatus {
                reason,
                desc: get_port(&mut r)?,
            }
        }
        t::PORT_MOD => {
            let port_no = r.u16()?;
            let hw_addr = MacAddr(r.bytes(6)?.try_into().unwrap());
            let config = r.u32()?;
            let _mask = r.u32()?;
            Message::PortMod {
                port_no,
                hw_addr,
                down: config & 1 != 0,
            }
        }
        t::STATS_REQ => {
            let stype = r.u16()?;
            r.skip(2)?;
            let req = match stype {
                0 => StatsRequest::Desc,
                1 | 2 => {
                    let m = get_match(&mut r)?;
                    let table_id = r.u8()?;
                    r.skip(1)?;
                    let _out_port = r.u16()?;
                    if stype == 1 {
                        StatsRequest::Flow { table_id, m }
                    } else {
                        StatsRequest::Aggregate { table_id, m }
                    }
                }
                4 => {
                    let port_no = r.u16()?;
                    r.skip(6)?;
                    StatsRequest::Port { port_no }
                }
                o => {
                    return Err(CodecError::new(
                        "v10/stats",
                        format!("unknown stats type {o}"),
                    ))
                }
            };
            Message::StatsRequest(req)
        }
        t::STATS_REP => {
            let stype = r.u16()?;
            r.skip(2)?;
            let rep = match stype {
                0 => {
                    let description = get_fixed_str(&mut r, 256)?;
                    r.skip(256 + 256 + 32 + 256)?;
                    StatsReply::Desc { description }
                }
                1 => {
                    let mut flows = Vec::new();
                    while r.remaining() >= 2 {
                        let len = usize::from(r.u16()?);
                        let table_id = r.u8()?;
                        r.skip(1)?;
                        let m = get_match(&mut r)?;
                        let duration_sec = r.u32()?;
                        r.skip(4)?;
                        let priority = r.u16()?;
                        r.skip(2 + 2 + 6)?;
                        let cookie = r.u64()?;
                        let packet_count = r.u64()?;
                        let byte_count = r.u64()?;
                        // Skip trailing actions, if any.
                        let consumed = 2 + 1 + 1 + 40 + 4 + 4 + 2 + 2 + 2 + 6 + 8 + 8 + 8;
                        if len > consumed {
                            r.skip(len - consumed)?;
                        }
                        flows.push(FlowStats {
                            table_id,
                            m,
                            priority,
                            cookie,
                            duration_sec,
                            packet_count,
                            byte_count,
                        });
                    }
                    StatsReply::Flow(flows)
                }
                2 => {
                    let packet_count = r.u64()?;
                    let byte_count = r.u64()?;
                    let flow_count = r.u32()?;
                    StatsReply::Aggregate {
                        packet_count,
                        byte_count,
                        flow_count,
                    }
                }
                4 => {
                    let mut ports = Vec::new();
                    while r.remaining() >= 104 {
                        let port_nmb = r.u16()?;
                        r.skip(6)?;
                        let rx_packets = r.u64()?;
                        let tx_packets = r.u64()?;
                        let rx_bytes = r.u64()?;
                        let tx_bytes = r.u64()?;
                        let rx_dropped = r.u64()?;
                        let tx_dropped = r.u64()?;
                        r.skip(48)?;
                        ports.push(PortStats {
                            port_no: port_nmb,
                            rx_packets,
                            tx_packets,
                            rx_bytes,
                            tx_bytes,
                            rx_dropped,
                            tx_dropped,
                        });
                    }
                    StatsReply::Port(ports)
                }
                o => {
                    return Err(CodecError::new(
                        "v10/stats",
                        format!("unknown stats type {o}"),
                    ))
                }
            };
            Message::StatsReply(rep)
        }
        t::BARRIER_REQ => Message::BarrierRequest,
        t::BARRIER_REP => Message::BarrierReply,
        other => {
            return Err(CodecError::new(
                "v10",
                format!("unknown message type {other}"),
            ))
        }
    };
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameCodec;

    fn roundtrip(msg: Message) -> Message {
        let wire = encode(&msg, 99).unwrap();
        let mut c = FrameCodec::new();
        c.feed(&wire);
        let f = c.next_frame().unwrap().unwrap();
        assert_eq!(f.xid, 99);
        assert_eq!(f.version, VERSION);
        decode(&f).unwrap()
    }

    fn sample_match() -> FlowMatch {
        FlowMatch {
            in_port: Some(3),
            dl_src: Some(MacAddr::from_seed(1)),
            dl_dst: None,
            dl_vlan: Some(100),
            dl_vlan_pcp: None,
            dl_type: Some(0x0800),
            nw_tos: None,
            nw_proto: Some(6),
            nw_src: Ipv4Prefix::parse("10.0.0.0/24"),
            nw_dst: Ipv4Prefix::parse("10.0.1.5"),
            tp_src: None,
            tp_dst: Some(22),
        }
    }

    fn sample_port(n: u16) -> PortDesc {
        PortDesc {
            port_no: n,
            hw_addr: MacAddr::from_seed(u64::from(n)),
            name: format!("p{n}"),
            config_down: n % 2 == 0,
            link_down: false,
            curr_speed: 1_000_000,
            max_speed: 10_000_000,
        }
    }

    #[test]
    fn simple_messages_roundtrip() {
        for m in [
            Message::Hello,
            Message::FeaturesRequest,
            Message::BarrierRequest,
            Message::BarrierReply,
            Message::GetConfigRequest,
            Message::GetConfigReply { miss_send_len: 128 },
            Message::SetConfig {
                miss_send_len: 65535,
            },
            Message::EchoRequest(Bytes::from_static(b"ping")),
            Message::EchoReply(Bytes::from_static(b"pong")),
            Message::Error {
                err_type: 1,
                code: 2,
                data: Bytes::from_static(b"bad"),
            },
        ] {
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn match_roundtrip_all_fields_and_wildcards() {
        let mut b = BytesMut::new();
        put_match(&mut b, &sample_match());
        assert_eq!(b.len(), 40);
        let mut r = Reader::new("t", &b);
        assert_eq!(get_match(&mut r).unwrap(), sample_match());

        let mut b = BytesMut::new();
        put_match(&mut b, &FlowMatch::any());
        let mut r = Reader::new("t", &b);
        assert_eq!(get_match(&mut r).unwrap(), FlowMatch::any());
    }

    #[test]
    fn flow_mod_roundtrip() {
        let fm = FlowMod {
            table_id: 0,
            command: FlowModCommand::Add,
            m: sample_match(),
            cookie: 0xfeed,
            idle_timeout: 30,
            hard_timeout: 300,
            priority: 1000,
            buffer_id: Some(77),
            out_port: None,
            flags: 1,
            actions: vec![
                Action::SetVlanVid(200),
                Action::SetDlDst(MacAddr::from_seed(9)),
                Action::SetNwSrc("1.2.3.4".parse().unwrap()),
                Action::SetNwTos(0x10),
                Action::SetTpDst(8080),
                Action::StripVlan,
                Action::Enqueue {
                    port: 2,
                    queue_id: 5,
                },
                Action::out(2),
            ],
            goto_table: None,
        };
        assert_eq!(
            roundtrip(Message::FlowMod(fm.clone())),
            Message::FlowMod(fm)
        );
    }

    #[test]
    fn flow_mod_with_goto_fails_to_encode() {
        let mut fm = FlowMod::add(FlowMatch::any(), 1, vec![]);
        fm.goto_table = Some(1);
        let e = encode(&Message::FlowMod(fm), 1).unwrap_err();
        assert!(e.reason.contains("goto_table"));
        let mut fm2 = FlowMod::add(FlowMatch::any(), 1, vec![]);
        fm2.table_id = 2;
        assert!(encode(&Message::FlowMod(fm2), 1).is_err());
    }

    #[test]
    fn packet_in_roundtrip() {
        let m = Message::PacketIn {
            buffer_id: Some(42),
            total_len: 60,
            in_port: 7,
            reason: PacketInReason::NoMatch,
            table_id: 0,
            data: Bytes::from_static(b"frame-bytes"),
        };
        assert_eq!(roundtrip(m.clone()), m);
        let unbuffered = Message::PacketIn {
            buffer_id: None,
            total_len: 60,
            in_port: 7,
            reason: PacketInReason::Action,
            table_id: 0,
            data: Bytes::from_static(b"frame"),
        };
        assert_eq!(roundtrip(unbuffered.clone()), unbuffered);
    }

    #[test]
    fn packet_out_roundtrip() {
        let m = Message::PacketOut {
            buffer_id: None,
            in_port: port_no::NONE,
            actions: vec![Action::out(port_no::FLOOD)],
            data: Bytes::from_static(b"payload"),
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn features_reply_roundtrip_with_ports() {
        let m = Message::FeaturesReply(SwitchFeatures {
            datapath_id: 0xabcdef,
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0xc7,
            actions: 0xfff,
            ports: vec![sample_port(1), sample_port(2), sample_port(3)],
        });
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn port_status_and_mod_roundtrip() {
        let m = Message::PortStatus {
            reason: PortReason::Modify,
            desc: sample_port(4),
        };
        assert_eq!(roundtrip(m.clone()), m);
        let pm = Message::PortMod {
            port_no: 4,
            hw_addr: MacAddr::from_seed(4),
            down: true,
        };
        assert_eq!(roundtrip(pm.clone()), pm);
    }

    #[test]
    fn flow_removed_roundtrip() {
        let m = Message::FlowRemoved {
            m: sample_match(),
            cookie: 1,
            priority: 5,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 100,
            packet_count: 55,
            byte_count: 5500,
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn stats_roundtrips() {
        for m in [
            Message::StatsRequest(StatsRequest::Desc),
            Message::StatsRequest(StatsRequest::Flow {
                table_id: 0xff,
                m: sample_match(),
            }),
            Message::StatsRequest(StatsRequest::Aggregate {
                table_id: 0,
                m: FlowMatch::any(),
            }),
            Message::StatsRequest(StatsRequest::Port {
                port_no: port_no::NONE,
            }),
            Message::StatsReply(StatsReply::Desc {
                description: "yanc simulated switch".into(),
            }),
            Message::StatsReply(StatsReply::Aggregate {
                packet_count: 10,
                byte_count: 1000,
                flow_count: 3,
            }),
            Message::StatsReply(StatsReply::Flow(vec![FlowStats {
                table_id: 0,
                m: sample_match(),
                priority: 9,
                cookie: 3,
                duration_sec: 60,
                packet_count: 5,
                byte_count: 300,
            }])),
            Message::StatsReply(StatsReply::Port(vec![PortStats {
                port_no: 1,
                rx_packets: 1,
                tx_packets: 2,
                rx_bytes: 3,
                tx_bytes: 4,
                rx_dropped: 0,
                tx_dropped: 0,
            }])),
        ] {
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn port_desc_stats_rejected() {
        assert!(encode(&Message::StatsRequest(StatsRequest::PortDesc), 1).is_err());
        assert!(encode(&Message::StatsReply(StatsReply::PortDesc(vec![])), 1).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let wire = encode(
            &Message::FlowMod(FlowMod::add(sample_match(), 1, vec![])),
            1,
        )
        .unwrap();
        let mut c = FrameCodec::new();
        // Chop the frame and fix up the length so only the body is short.
        let mut broken = wire.to_vec();
        broken.truncate(20);
        broken[2] = 0;
        broken[3] = 20;
        c.feed(&broken);
        let f = c.next_frame().unwrap().unwrap();
        assert!(decode(&f).is_err());
    }
}
