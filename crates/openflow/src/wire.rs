//! OpenFlow framing: the common 8-byte header and a streaming frame
//! decoder that reassembles messages from arbitrary byte chunks, as they
//! arrive off a TCP-like control channel.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

use crate::types::Version;

/// The fixed OpenFlow header length.
pub const HEADER_LEN: usize = 8;

/// Maximum accepted frame length (guards against corrupt length fields).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Codec-level error (malformed frame, unencodable message, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was being coded.
    pub what: &'static str,
    /// Why it failed.
    pub reason: String,
}

impl CodecError {
    pub(crate) fn new(what: &'static str, reason: impl Into<String>) -> Self {
        CodecError {
            what,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "openflow {}: {}", self.what, self.reason)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

/// A reassembled raw frame: header fields plus the body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Protocol version byte.
    pub version: u8,
    /// Message type byte (version-specific namespace).
    pub msg_type: u8,
    /// Transaction id.
    pub xid: u32,
    /// Body (everything after the 8-byte header).
    pub body: Bytes,
}

impl RawFrame {
    /// The parsed [`Version`], if recognized.
    pub fn protocol(&self) -> Option<Version> {
        Version::from_wire(self.version)
    }
}

/// Prepend an OpenFlow header to `body` and return the complete frame.
pub fn frame(version: u8, msg_type: u8, xid: u32, body: &[u8]) -> Bytes {
    let len = HEADER_LEN + body.len();
    debug_assert!(len <= u16::MAX as usize, "openflow frame too large");
    let mut b = BytesMut::with_capacity(len);
    b.put_u8(version);
    b.put_u8(msg_type);
    b.put_u16(len as u16);
    b.put_u32(xid);
    b.put_slice(body);
    b.freeze()
}

/// Streaming frame reassembler. Feed it raw bytes; it yields complete
/// frames, buffering partials across calls.
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
}

impl FrameCodec {
    /// An empty codec.
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Append received bytes to the reassembly buffer.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, or `None` if more bytes are needed.
    pub fn next_frame(&mut self) -> CodecResult<Option<RawFrame>> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = usize::from(u16::from_be_bytes([self.buf[2], self.buf[3]]));
        if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&len) {
            return Err(CodecError::new("frame", format!("bad length {len}")));
        }
        if self.buf.len() < len {
            return Ok(None);
        }
        let whole = self.buf.split_to(len).freeze();
        Ok(Some(RawFrame {
            version: whole[0],
            msg_type: whole[1],
            xid: u32::from_be_bytes([whole[4], whole[5], whole[6], whole[7]]),
            body: whole.slice(HEADER_LEN..),
        }))
    }
}

// -- small read helpers shared by both version codecs ------------------

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
    pub(crate) what: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(what: &'static str, buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0, what }
    }

    pub(crate) fn need(&self, n: usize) -> CodecResult<()> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::new(
                self.what,
                format!("truncated: need {n} at offset {}", self.pos),
            ));
        }
        Ok(())
    }

    pub(crate) fn u8(&mut self) -> CodecResult<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    pub(crate) fn u16(&mut self) -> CodecResult<u16> {
        self.need(2)?;
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    pub(crate) fn u32(&mut self) -> CodecResult<u32> {
        self.need(4)?;
        let v = u32::from_be_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    pub(crate) fn u64(&mut self) -> CodecResult<u64> {
        self.need(8)?;
        let v = u64::from_be_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn skip(&mut self, n: usize) -> CodecResult<()> {
        self.need(n)?;
        self.pos += n;
        Ok(())
    }

    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Write a fixed-width, NUL-padded string field (e.g. port/desc names).
pub(crate) fn put_fixed_str(b: &mut BytesMut, s: &str, width: usize) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(width - 1); // always NUL-terminated like the spec
    b.put_slice(&bytes[..n]);
    b.put_bytes(0, width - n);
}

/// Read a fixed-width, NUL-padded string field.
pub(crate) fn get_fixed_str(r: &mut Reader<'_>, width: usize) -> CodecResult<String> {
    let raw = r.bytes(width)?;
    let end = raw.iter().position(|&b| b == 0).unwrap_or(width);
    Ok(String::from_utf8_lossy(&raw[..end]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_reassemble() {
        let f1 = frame(1, 0, 42, &[]);
        let f2 = frame(4, 14, 43, b"flowmod-body");
        let mut all = Vec::new();
        all.extend_from_slice(&f1);
        all.extend_from_slice(&f2);

        // Feed in awkward chunk sizes.
        let mut c = FrameCodec::new();
        for chunk in all.chunks(3) {
            c.feed(chunk);
        }
        let g1 = c.next_frame().unwrap().unwrap();
        assert_eq!((g1.version, g1.msg_type, g1.xid), (1, 0, 42));
        assert_eq!(g1.protocol(), Some(Version::V1_0));
        let g2 = c.next_frame().unwrap().unwrap();
        assert_eq!((g2.version, g2.msg_type, g2.xid), (4, 14, 43));
        assert_eq!(&g2.body[..], b"flowmod-body");
        assert!(c.next_frame().unwrap().is_none());
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn partial_header_waits() {
        let mut c = FrameCodec::new();
        c.feed(&[1, 0, 0]);
        assert!(c.next_frame().unwrap().is_none());
        c.feed(&[8, 0, 0, 0, 7]);
        let f = c.next_frame().unwrap().unwrap();
        assert_eq!(f.xid, 7);
    }

    #[test]
    fn bad_length_rejected() {
        let mut c = FrameCodec::new();
        c.feed(&[1, 0, 0, 4, 0, 0, 0, 0]); // length 4 < header
        assert!(c.next_frame().is_err());
    }

    #[test]
    fn fixed_strings() {
        let mut b = BytesMut::new();
        put_fixed_str(&mut b, "eth0", 16);
        assert_eq!(b.len(), 16);
        let mut r = Reader::new("test", &b);
        assert_eq!(get_fixed_str(&mut r, 16).unwrap(), "eth0");
        // Over-long names are truncated, still NUL-terminated.
        let mut b = BytesMut::new();
        put_fixed_str(&mut b, "a-very-long-interface-name", 8);
        assert_eq!(b.len(), 8);
        let mut r = Reader::new("test", &b);
        assert_eq!(get_fixed_str(&mut r, 8).unwrap(), "a-very-");
    }

    #[test]
    fn reader_bounds() {
        let mut r = Reader::new("t", &[1, 2]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.u16().is_err());
        assert_eq!(r.u8().unwrap(), 2);
        assert_eq!(r.remaining(), 0);
    }
}
