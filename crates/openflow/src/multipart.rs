//! Multipart stats streaming: paginate large [`StatsReply`] bodies into
//! wire segments and reassemble them on the controller side.
//!
//! OpenFlow caps every frame at 64 KiB, so a fabric-scale switch cannot
//! answer a flow-stats request in one message. Both protocol generations
//! solve this the same way: the stats-reply body carries a `flags` word
//! whose low bit (`OFPSF_REPLY_MORE` in 1.0, `OFPMPF_REPLY_MORE` in 1.3)
//! marks "another segment with the same xid follows". This module is the
//! version-independent home for that mechanism:
//!
//! * [`paginate`] splits a reply into page-sized [`StatsPart`]s,
//! * [`encode_part`] encodes one part, patching the REPLY_MORE flag into
//!   the already-encoded frame (both codecs place `flags` at body offset
//!   2, directly after the 16-bit stats type),
//! * [`decode_part`] recovers a part and its continuation bit,
//! * [`Reassembler`] merges a segment stream back into one reply,
//!   surfacing protocol violations (mid-stream type switches,
//!   continuation of unpageable types) as [`CodecError`]s — never panics.
//!
//! Single-part replies encode byte-identically to the non-segmented path:
//! `more = false` leaves the flags word at its existing zero value.

use bytes::Bytes;

use crate::types::{Message, StatsReply, Version};
use crate::wire::{CodecError, CodecResult, RawFrame, HEADER_LEN};

/// The "another segment follows" bit in the stats-reply `flags` word
/// (`OFPSF_REPLY_MORE` / `OFPMPF_REPLY_MORE` — same value in both).
pub const REPLY_MORE: u16 = 0x0001;

/// One segment of a (possibly multi-part) stats reply.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsPart {
    /// The entries carried by this segment.
    pub reply: StatsReply,
    /// True when the sender will follow with another segment (same xid).
    pub more: bool,
}

/// The wire message-type byte of a stats reply for `version`
/// (`OFPT_STATS_REPLY` = 17 in 1.0, `OFPT_MULTIPART_REPLY` = 19 in 1.3).
pub fn stats_reply_type(version: Version) -> u8 {
    match version {
        Version::V1_0 => 17,
        Version::V1_3 => 19,
    }
}

/// Is this raw frame a stats/multipart reply for its own version?
pub fn is_stats_reply(frame: &RawFrame) -> bool {
    match frame.protocol() {
        Some(v) => frame.msg_type == stats_reply_type(v),
        None => false,
    }
}

/// Read the `flags` word of a stats-reply frame without decoding the body.
///
/// Both codecs lay the body out as `stype: u16, flags: u16, ...`, so the
/// flags live at body offset 2 regardless of version.
pub fn part_flags(frame: &RawFrame) -> CodecResult<u16> {
    if !is_stats_reply(frame) {
        return Err(CodecError::new(
            "multipart",
            format!(
                "not a stats reply: version 0x{:02x} msg_type {}",
                frame.version, frame.msg_type
            ),
        ));
    }
    if frame.body.len() < 4 {
        return Err(CodecError::new(
            "multipart",
            format!("stats reply body truncated: {} bytes", frame.body.len()),
        ));
    }
    Ok(u16::from_be_bytes([frame.body[2], frame.body[3]]))
}

fn chunked<T: Clone>(
    items: &[T],
    page: usize,
    wrap: impl Fn(Vec<T>) -> StatsReply,
) -> Vec<StatsPart> {
    if items.len() <= page {
        return vec![StatsPart {
            reply: wrap(items.to_vec()),
            more: false,
        }];
    }
    let mut parts: Vec<StatsPart> = items
        .chunks(page)
        .map(|c| StatsPart {
            reply: wrap(c.to_vec()),
            more: true,
        })
        .collect();
    parts.last_mut().expect("chunks is non-empty").more = false;
    parts
}

/// Split `reply` into segments of at most `page` entries.
///
/// List-shaped replies (`Flow`, `Port`, `PortDesc`) are chunked; scalar
/// replies (`Desc`, `Aggregate`) are inherently single-part. An empty
/// list still yields one (empty, final) part so the requester always
/// gets an answer. `page == 0` is treated as 1.
pub fn paginate(reply: &StatsReply, page: usize) -> Vec<StatsPart> {
    let page = page.max(1);
    match reply {
        StatsReply::Flow(v) => chunked(v, page, StatsReply::Flow),
        StatsReply::Port(v) => chunked(v, page, StatsReply::Port),
        StatsReply::PortDesc(v) => chunked(v, page, StatsReply::PortDesc),
        other => vec![StatsPart {
            reply: other.clone(),
            more: false,
        }],
    }
}

/// Encode one segment: encode the reply normally, then patch the
/// REPLY_MORE bit into the flags word at body offset 2.
///
/// With `more = false` the output is byte-identical to
/// [`crate::encode`] of the same reply.
pub fn encode_part(
    version: Version,
    reply: &StatsReply,
    more: bool,
    xid: u32,
) -> CodecResult<Bytes> {
    let bytes = crate::encode(version, &Message::StatsReply(reply.clone()), xid)?;
    if !more {
        return Ok(bytes);
    }
    let off = HEADER_LEN + 2;
    if bytes.len() < off + 2 {
        return Err(CodecError::new(
            "multipart",
            "encoded stats reply too short to carry flags",
        ));
    }
    let mut buf = bytes.to_vec();
    buf[off..off + 2].copy_from_slice(&REPLY_MORE.to_be_bytes());
    Ok(Bytes::from(buf))
}

/// Decode one segment of a stats reply, preserving its continuation bit.
pub fn decode_part(frame: &RawFrame) -> CodecResult<StatsPart> {
    let flags = part_flags(frame)?;
    match crate::decode(frame)? {
        Message::StatsReply(reply) => Ok(StatsPart {
            reply,
            more: flags & REPLY_MORE != 0,
        }),
        other => Err(CodecError::new(
            "multipart",
            format!("stats-reply frame decoded to {other:?}"),
        )),
    }
}

/// Merges a stream of [`StatsPart`]s back into whole [`StatsReply`]s.
///
/// Feed each arriving part to [`Reassembler::push`]; it returns
/// `Ok(Some(reply))` when a reply completes, `Ok(None)` while segments
/// are still outstanding, and `Err` on protocol violations. Errors leave
/// the reassembler empty, so a stream can recover after a bad sender.
#[derive(Debug, Default)]
pub struct Reassembler {
    pending: Option<StatsReply>,
}

impl Reassembler {
    /// Fresh reassembler with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while a multi-part reply is partially received.
    pub fn in_flight(&self) -> bool {
        self.pending.is_some()
    }

    /// Drop any partially-assembled reply (e.g. on channel reconnect).
    pub fn reset(&mut self) {
        self.pending = None;
    }

    /// Accept the next segment.
    pub fn push(&mut self, part: StatsPart) -> CodecResult<Option<StatsReply>> {
        let merged = match (self.pending.take(), part.reply) {
            (None, reply) => reply,
            (Some(StatsReply::Flow(mut acc)), StatsReply::Flow(next)) => {
                acc.extend(next);
                StatsReply::Flow(acc)
            }
            (Some(StatsReply::Port(mut acc)), StatsReply::Port(next)) => {
                acc.extend(next);
                StatsReply::Port(acc)
            }
            (Some(StatsReply::PortDesc(mut acc)), StatsReply::PortDesc(next)) => {
                acc.extend(next);
                StatsReply::PortDesc(acc)
            }
            (Some(acc), next) => {
                return Err(CodecError::new(
                    "multipart",
                    format!(
                        "segment type switched mid-stream: had {}, got {}",
                        variant_name(&acc),
                        variant_name(&next)
                    ),
                ));
            }
        };
        if part.more {
            match merged {
                StatsReply::Flow(_) | StatsReply::Port(_) | StatsReply::PortDesc(_) => {
                    self.pending = Some(merged);
                    Ok(None)
                }
                other => Err(CodecError::new(
                    "multipart",
                    format!(
                        "REPLY_MORE set on unpageable stats type {}",
                        variant_name(&other)
                    ),
                )),
            }
        } else {
            Ok(Some(merged))
        }
    }
}

fn variant_name(r: &StatsReply) -> &'static str {
    match r {
        StatsReply::Desc { .. } => "Desc",
        StatsReply::Flow(_) => "Flow",
        StatsReply::Port(_) => "Port",
        StatsReply::PortDesc(_) => "PortDesc",
        StatsReply::Aggregate { .. } => "Aggregate",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FlowMatch, FlowStats, PortStats};
    use crate::wire::FrameCodec;

    fn flow(i: u16) -> FlowStats {
        FlowStats {
            table_id: 0,
            m: FlowMatch {
                dl_type: Some(0x0800),
                nw_proto: Some(6),
                tp_dst: Some(i),
                ..Default::default()
            },
            priority: i,
            cookie: u64::from(i),
            duration_sec: 1,
            packet_count: u64::from(i) * 10,
            byte_count: u64::from(i) * 100,
        }
    }

    fn port(i: u16) -> PortStats {
        PortStats {
            port_no: i,
            rx_packets: u64::from(i),
            tx_packets: u64::from(i) + 1,
            rx_bytes: 64 * u64::from(i),
            tx_bytes: 64 * (u64::from(i) + 1),
            rx_dropped: 0,
            tx_dropped: 0,
        }
    }

    fn reframe(bytes: &Bytes) -> RawFrame {
        let mut codec = FrameCodec::new();
        codec.feed(bytes);
        let frame = codec.next_frame().unwrap().expect("one whole frame");
        assert_eq!(codec.buffered(), 0, "exactly one frame in the buffer");
        frame
    }

    #[test]
    fn single_part_is_byte_identical_to_plain_encode() {
        for v in [Version::V1_0, Version::V1_3] {
            let rep = StatsReply::Flow(vec![flow(1), flow(2)]);
            let plain = crate::encode(v, &Message::StatsReply(rep.clone()), 7).unwrap();
            let part = encode_part(v, &rep, false, 7).unwrap();
            assert_eq!(plain, part, "{v:?}");
        }
    }

    #[test]
    fn paginate_chunks_and_marks_continuations() {
        let rep = StatsReply::Flow((0..10).map(flow).collect());
        let parts = paginate(&rep, 4);
        assert_eq!(parts.len(), 3);
        assert!(parts[0].more && parts[1].more && !parts[2].more);
        let sizes: Vec<usize> = parts
            .iter()
            .map(|p| match &p.reply {
                StatsReply::Flow(v) => v.len(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn empty_list_yields_one_final_part() {
        let parts = paginate(&StatsReply::Port(Vec::new()), 8);
        assert_eq!(parts.len(), 1);
        assert!(!parts[0].more);
    }

    #[test]
    fn scalar_replies_are_single_part() {
        let agg = StatsReply::Aggregate {
            packet_count: 1,
            byte_count: 2,
            flow_count: 3,
        };
        let parts = paginate(&agg, 1);
        assert_eq!(parts.len(), 1);
        assert!(!parts[0].more);
    }

    #[test]
    fn roundtrip_segments_through_wire_and_reassembler() {
        for v in [Version::V1_0, Version::V1_3] {
            let original = StatsReply::Port((1..=9).map(port).collect());
            let mut asm = Reassembler::new();
            let mut out = None;
            for p in paginate(&original, 2) {
                let bytes = encode_part(v, &p.reply, p.more, 42).unwrap();
                let frame = reframe(&bytes);
                assert!(is_stats_reply(&frame));
                let got = decode_part(&frame).unwrap();
                assert_eq!(got.more, p.more);
                out = asm.push(got).unwrap();
            }
            assert_eq!(out, Some(original), "{v:?}");
            assert!(!asm.in_flight());
        }
    }

    #[test]
    fn type_switch_mid_stream_is_an_error() {
        let mut asm = Reassembler::new();
        assert!(asm
            .push(StatsPart {
                reply: StatsReply::Flow(vec![flow(1)]),
                more: true,
            })
            .unwrap()
            .is_none());
        let err = asm
            .push(StatsPart {
                reply: StatsReply::Port(vec![port(1)]),
                more: false,
            })
            .unwrap_err();
        assert!(err.reason.contains("mid-stream"), "{err}");
        assert!(!asm.in_flight(), "error must leave the reassembler empty");
    }

    #[test]
    fn more_on_unpageable_type_is_an_error() {
        let mut asm = Reassembler::new();
        let err = asm
            .push(StatsPart {
                reply: StatsReply::Desc {
                    description: "x".into(),
                },
                more: true,
            })
            .unwrap_err();
        assert!(err.reason.contains("unpageable"), "{err}");
    }

    #[test]
    fn part_flags_rejects_short_or_foreign_frames() {
        let short = RawFrame {
            version: 0x01,
            msg_type: 17,
            xid: 1,
            body: Bytes::from_static(&[0, 0]),
        };
        assert!(part_flags(&short).is_err());
        let not_stats = RawFrame {
            version: 0x01,
            msg_type: 10,
            xid: 1,
            body: Bytes::from_static(&[0, 0, 0, 0]),
        };
        assert!(part_flags(&not_stats).is_err());
    }
}
