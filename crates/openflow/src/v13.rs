//! OpenFlow 1.3 (wire version 0x04) message codec.
//!
//! Uses the OXM TLV match format, instruction lists (goto-table +
//! apply-actions), 64-byte port descriptions and multipart messages. The
//! codec enforces OXM *prerequisites* exactly as the spec does: matching on
//! `tp_dst` requires `nw_proto`, which requires `dl_type` — a FlowMod that
//! violates them fails to encode, mirroring what a real 1.3 switch would
//! reject with `OFPBMC_BAD_PREREQ`.

use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use yanc_packet::{ip_proto, EtherType, MacAddr};

use crate::types::{
    Action, FlowMatch, FlowMod, FlowModCommand, FlowRemovedReason, FlowStats, Ipv4Prefix, Message,
    PacketInReason, PortDesc, PortReason, PortStats, StatsReply, StatsRequest, SwitchFeatures,
};
use crate::wire::{frame, get_fixed_str, put_fixed_str, CodecError, CodecResult, RawFrame, Reader};

/// The wire version byte.
pub const VERSION: u8 = 0x04;

// Message type codes.
mod t {
    pub const HELLO: u8 = 0;
    pub const ERROR: u8 = 1;
    pub const ECHO_REQ: u8 = 2;
    pub const ECHO_REP: u8 = 3;
    pub const FEATURES_REQ: u8 = 5;
    pub const FEATURES_REP: u8 = 6;
    pub const GET_CONFIG_REQ: u8 = 7;
    pub const GET_CONFIG_REP: u8 = 8;
    pub const SET_CONFIG: u8 = 9;
    pub const PACKET_IN: u8 = 10;
    pub const FLOW_REMOVED: u8 = 11;
    pub const PORT_STATUS: u8 = 12;
    pub const PACKET_OUT: u8 = 13;
    pub const FLOW_MOD: u8 = 14;
    pub const PORT_MOD: u8 = 16;
    pub const MULTIPART_REQ: u8 = 18;
    pub const MULTIPART_REP: u8 = 19;
    pub const BARRIER_REQ: u8 = 20;
    pub const BARRIER_REP: u8 = 21;
}

// OXM fields (class OFPXMC_OPENFLOW_BASIC).
mod oxm {
    pub const CLASS_BASIC: u16 = 0x8000;
    pub const IN_PORT: u8 = 0;
    pub const ETH_DST: u8 = 3;
    pub const ETH_SRC: u8 = 4;
    pub const ETH_TYPE: u8 = 5;
    pub const VLAN_VID: u8 = 6;
    pub const VLAN_PCP: u8 = 7;
    pub const IP_DSCP: u8 = 8;
    pub const IP_PROTO: u8 = 10;
    pub const IPV4_SRC: u8 = 11;
    pub const IPV4_DST: u8 = 12;
    pub const TCP_SRC: u8 = 13;
    pub const TCP_DST: u8 = 14;
    pub const UDP_SRC: u8 = 15;
    pub const UDP_DST: u8 = 16;
    pub const ICMPV4_TYPE: u8 = 19;
    pub const ICMPV4_CODE: u8 = 20;
    pub const ARP_OP: u8 = 21;
    pub const ARP_SPA: u8 = 22;
    pub const ARP_TPA: u8 = 23;
    /// OFPVID_PRESENT: set in VLAN_VID values for tagged traffic.
    pub const VID_PRESENT: u16 = 0x1000;
}

const BUFFER_NONE: u32 = 0xffff_ffff;
const PORT_ANY: u32 = 0xffff_ffff;
const GROUP_ANY: u32 = 0xffff_ffff;

/// Map a 1.0-style 16-bit port number to the 1.3 32-bit space (reserved
/// ports 0xfff8..=0xffff become 0xfffffff8..=0xffffffff).
pub fn port16_to32(p: u16) -> u32 {
    if p >= 0xfff8 {
        0xffff_fff0 | u32::from(p & 0xf)
    } else {
        u32::from(p)
    }
}

/// Inverse of [`port16_to32`].
pub fn port32_to16(p: u32) -> u16 {
    if p >= 0xffff_fff0 {
        0xfff0 | (p & 0xf) as u16
    } else {
        (p & 0xffff) as u16
    }
}

// ---------------------------------------------------------------------
// OXM match
// ---------------------------------------------------------------------

fn put_oxm_u8(b: &mut BytesMut, field: u8, v: u8) {
    b.put_u16(oxm::CLASS_BASIC);
    b.put_u8(field << 1);
    b.put_u8(1);
    b.put_u8(v);
}

fn put_oxm_u16(b: &mut BytesMut, field: u8, v: u16) {
    b.put_u16(oxm::CLASS_BASIC);
    b.put_u8(field << 1);
    b.put_u8(2);
    b.put_u16(v);
}

fn put_oxm_u32(b: &mut BytesMut, field: u8, v: u32) {
    b.put_u16(oxm::CLASS_BASIC);
    b.put_u8(field << 1);
    b.put_u8(4);
    b.put_u32(v);
}

fn put_oxm_mac(b: &mut BytesMut, field: u8, v: MacAddr) {
    b.put_u16(oxm::CLASS_BASIC);
    b.put_u8(field << 1);
    b.put_u8(6);
    b.put_slice(&v.0);
}

fn put_oxm_ipv4(b: &mut BytesMut, field: u8, p: Ipv4Prefix) {
    if p.prefix_len >= 32 {
        put_oxm_u32(b, field, u32::from(p.addr));
    } else {
        b.put_u16(oxm::CLASS_BASIC);
        b.put_u8((field << 1) | 1); // hasmask
        b.put_u8(8);
        b.put_u32(u32::from(p.addr) & p.mask());
        b.put_u32(p.mask());
    }
}

/// Serialize the OXM payload for `m` (optionally with an explicit ingress
/// port for packet-in matches). Enforces prerequisites.
fn oxm_payload(m: &FlowMatch) -> CodecResult<BytesMut> {
    let mut b = BytesMut::new();
    if let Some(p) = m.in_port {
        put_oxm_u32(&mut b, oxm::IN_PORT, port16_to32(p));
    }
    if let Some(mac) = m.dl_dst {
        put_oxm_mac(&mut b, oxm::ETH_DST, mac);
    }
    if let Some(mac) = m.dl_src {
        put_oxm_mac(&mut b, oxm::ETH_SRC, mac);
    }
    if let Some(et) = m.dl_type {
        put_oxm_u16(&mut b, oxm::ETH_TYPE, et);
    }
    if let Some(vid) = m.dl_vlan {
        put_oxm_u16(&mut b, oxm::VLAN_VID, oxm::VID_PRESENT | (vid & 0x0fff));
    }
    if let Some(pcp) = m.dl_vlan_pcp {
        if m.dl_vlan.is_none() {
            return Err(CodecError::new(
                "v13/oxm",
                "VLAN_PCP requires VLAN_VID (prerequisite)",
            ));
        }
        put_oxm_u8(&mut b, oxm::VLAN_PCP, pcp);
    }

    let is_ip = m.dl_type == Some(EtherType::IPV4.0);
    let is_arp = m.dl_type == Some(EtherType::ARP.0);
    if (m.nw_src.is_some() || m.nw_dst.is_some() || m.nw_proto.is_some() || m.nw_tos.is_some())
        && !is_ip
        && !is_arp
    {
        return Err(CodecError::new(
            "v13/oxm",
            "network-layer fields require dl_type ipv4/arp (prerequisite)",
        ));
    }
    if is_arp {
        if m.tp_src.is_some() || m.tp_dst.is_some() || m.nw_tos.is_some() {
            return Err(CodecError::new(
                "v13/oxm",
                "transport/tos fields invalid for ARP",
            ));
        }
        if let Some(op) = m.nw_proto {
            put_oxm_u16(&mut b, oxm::ARP_OP, u16::from(op));
        }
        if let Some(p) = m.nw_src {
            put_oxm_ipv4(&mut b, oxm::ARP_SPA, p);
        }
        if let Some(p) = m.nw_dst {
            put_oxm_ipv4(&mut b, oxm::ARP_TPA, p);
        }
        return Ok(b);
    }
    if is_ip {
        if let Some(tos) = m.nw_tos {
            if tos & 0x3 != 0 {
                return Err(CodecError::new(
                    "v13/oxm",
                    "nw_tos with ECN bits not representable",
                ));
            }
            put_oxm_u8(&mut b, oxm::IP_DSCP, tos >> 2);
        }
        if let Some(proto) = m.nw_proto {
            put_oxm_u8(&mut b, oxm::IP_PROTO, proto);
        }
        if let Some(p) = m.nw_src {
            put_oxm_ipv4(&mut b, oxm::IPV4_SRC, p);
        }
        if let Some(p) = m.nw_dst {
            put_oxm_ipv4(&mut b, oxm::IPV4_DST, p);
        }
    }
    if m.tp_src.is_some() || m.tp_dst.is_some() {
        let (sf, df) = match m.nw_proto {
            Some(p) if p == ip_proto::TCP => (oxm::TCP_SRC, oxm::TCP_DST),
            Some(p) if p == ip_proto::UDP => (oxm::UDP_SRC, oxm::UDP_DST),
            Some(p) if p == ip_proto::ICMP => (oxm::ICMPV4_TYPE, oxm::ICMPV4_CODE),
            _ => {
                return Err(CodecError::new(
                    "v13/oxm",
                    "transport fields require nw_proto tcp/udp/icmp (prerequisite)",
                ))
            }
        };
        if m.nw_proto == Some(ip_proto::ICMP) {
            if let Some(tp) = m.tp_src {
                put_oxm_u8(&mut b, sf, tp as u8);
            }
            if let Some(tp) = m.tp_dst {
                put_oxm_u8(&mut b, df, tp as u8);
            }
        } else {
            if let Some(tp) = m.tp_src {
                put_oxm_u16(&mut b, sf, tp);
            }
            if let Some(tp) = m.tp_dst {
                put_oxm_u16(&mut b, df, tp);
            }
        }
    }
    Ok(b)
}

/// Write a complete `ofp_match` (type 1 + length + OXMs + padding).
fn put_match(b: &mut BytesMut, m: &FlowMatch) -> CodecResult<()> {
    let payload = oxm_payload(m)?;
    let len = 4 + payload.len();
    b.put_u16(1); // OFPMT_OXM
    b.put_u16(len as u16);
    b.put_slice(&payload);
    let pad = (8 - len % 8) % 8;
    b.put_bytes(0, pad);
    Ok(())
}

/// Parse a complete `ofp_match` back into a [`FlowMatch`].
fn get_match(r: &mut Reader<'_>) -> CodecResult<FlowMatch> {
    let mtype = r.u16()?;
    if mtype != 1 {
        return Err(CodecError::new(
            "v13/match",
            format!("unsupported match type {mtype}"),
        ));
    }
    let len = usize::from(r.u16()?);
    if len < 4 {
        return Err(CodecError::new("v13/match", "match length too small"));
    }
    let mut payload = Reader::new("v13/oxm", r.bytes(len - 4)?);
    let pad = (8 - len % 8) % 8;
    r.skip(pad)?;

    let mut m = FlowMatch::any();
    while payload.remaining() >= 4 {
        let class = payload.u16()?;
        let fh = payload.u8()?;
        let field = fh >> 1;
        let hasmask = fh & 1 != 0;
        let vlen = usize::from(payload.u8()?);
        let val = payload.bytes(vlen)?;
        if class != oxm::CLASS_BASIC {
            continue; // experimenter classes skipped
        }
        let u8v = || val.first().copied().unwrap_or(0);
        let u16v = || u16::from_be_bytes([val[0], val[1]]);
        let u32v = || u32::from_be_bytes(val[..4].try_into().unwrap());
        match field {
            oxm::IN_PORT if vlen == 4 => m.in_port = Some(port32_to16(u32v())),
            oxm::ETH_DST if vlen == 6 => m.dl_dst = Some(MacAddr(val.try_into().unwrap())),
            oxm::ETH_SRC if vlen == 6 => m.dl_src = Some(MacAddr(val.try_into().unwrap())),
            oxm::ETH_TYPE if vlen == 2 => m.dl_type = Some(u16v()),
            oxm::VLAN_VID if vlen == 2 => m.dl_vlan = Some(u16v() & 0x0fff),
            oxm::VLAN_PCP if vlen == 1 => m.dl_vlan_pcp = Some(u8v()),
            oxm::IP_DSCP if vlen == 1 => m.nw_tos = Some(u8v() << 2),
            oxm::IP_PROTO if vlen == 1 => m.nw_proto = Some(u8v()),
            oxm::IPV4_SRC | oxm::ARP_SPA => {
                m.nw_src = Some(decode_ip_prefix(val, hasmask)?);
            }
            oxm::IPV4_DST | oxm::ARP_TPA => {
                m.nw_dst = Some(decode_ip_prefix(val, hasmask)?);
            }
            oxm::TCP_SRC | oxm::UDP_SRC if vlen == 2 => m.tp_src = Some(u16v()),
            oxm::TCP_DST | oxm::UDP_DST if vlen == 2 => m.tp_dst = Some(u16v()),
            oxm::ICMPV4_TYPE if vlen == 1 => m.tp_src = Some(u16::from(u8v())),
            oxm::ICMPV4_CODE if vlen == 1 => m.tp_dst = Some(u16::from(u8v())),
            oxm::ARP_OP if vlen == 2 => m.nw_proto = Some(u16v() as u8),
            _ => {} // unknown fields skipped (forward compatibility)
        }
    }
    Ok(m)
}

fn decode_ip_prefix(val: &[u8], hasmask: bool) -> CodecResult<Ipv4Prefix> {
    if hasmask {
        if val.len() != 8 {
            return Err(CodecError::new("v13/oxm", "masked ipv4 needs 8 bytes"));
        }
        let addr = Ipv4Addr::new(val[0], val[1], val[2], val[3]);
        let mask = u32::from_be_bytes(val[4..8].try_into().unwrap());
        Ok(Ipv4Prefix {
            addr,
            prefix_len: mask.count_ones() as u8,
        })
    } else {
        if val.len() != 4 {
            return Err(CodecError::new("v13/oxm", "ipv4 needs 4 bytes"));
        }
        Ok(Ipv4Prefix::host(Ipv4Addr::new(
            val[0], val[1], val[2], val[3],
        )))
    }
}

// ---------------------------------------------------------------------
// actions & instructions
// ---------------------------------------------------------------------

fn put_set_field(b: &mut BytesMut, build: impl FnOnce(&mut BytesMut)) {
    let mut oxm_buf = BytesMut::new();
    build(&mut oxm_buf);
    let len = 4 + oxm_buf.len();
    let padded = len.div_ceil(8) * 8;
    b.put_u16(25); // OFPAT_SET_FIELD
    b.put_u16(padded as u16);
    b.put_slice(&oxm_buf);
    b.put_bytes(0, padded - len);
}

fn put_actions(b: &mut BytesMut, actions: &[Action]) -> CodecResult<()> {
    for a in actions {
        match a {
            Action::Output { port, max_len } => {
                b.put_u16(0);
                b.put_u16(16);
                b.put_u32(port16_to32(*port));
                b.put_u16(*max_len);
                b.put_bytes(0, 6);
            }
            Action::SetVlanVid(vid) => {
                put_set_field(b, |o| {
                    put_oxm_u16(o, oxm::VLAN_VID, oxm::VID_PRESENT | (vid & 0xfff))
                });
            }
            Action::SetVlanPcp(pcp) => put_set_field(b, |o| put_oxm_u8(o, oxm::VLAN_PCP, *pcp)),
            Action::StripVlan => {
                b.put_u16(18); // POP_VLAN
                b.put_u16(8);
                b.put_bytes(0, 4);
            }
            Action::SetDlSrc(mac) => put_set_field(b, |o| put_oxm_mac(o, oxm::ETH_SRC, *mac)),
            Action::SetDlDst(mac) => put_set_field(b, |o| put_oxm_mac(o, oxm::ETH_DST, *mac)),
            Action::SetNwSrc(ip) => {
                put_set_field(b, |o| put_oxm_u32(o, oxm::IPV4_SRC, u32::from(*ip)))
            }
            Action::SetNwDst(ip) => {
                put_set_field(b, |o| put_oxm_u32(o, oxm::IPV4_DST, u32::from(*ip)))
            }
            Action::SetNwTos(tos) => {
                if tos & 0x3 != 0 {
                    return Err(CodecError::new(
                        "v13/action",
                        "TOS with ECN bits not representable",
                    ));
                }
                put_set_field(b, |o| put_oxm_u8(o, oxm::IP_DSCP, tos >> 2));
            }
            Action::SetTpSrc(p) => put_set_field(b, |o| put_oxm_u16(o, oxm::TCP_SRC, *p)),
            Action::SetTpDst(p) => put_set_field(b, |o| put_oxm_u16(o, oxm::TCP_DST, *p)),
            Action::Enqueue { port, queue_id } => {
                // 1.3 splits this into SET_QUEUE + OUTPUT; the decoder
                // re-merges the pair.
                b.put_u16(21); // SET_QUEUE
                b.put_u16(8);
                b.put_u32(*queue_id);
                b.put_u16(0); // OUTPUT
                b.put_u16(16);
                b.put_u32(port16_to32(*port));
                b.put_u16(0xffff);
                b.put_bytes(0, 6);
            }
        }
    }
    Ok(())
}

fn get_actions(r: &mut Reader<'_>, total_len: usize) -> CodecResult<Vec<Action>> {
    let end = r.pos + total_len;
    let mut out: Vec<Action> = Vec::new();
    let mut pending_queue: Option<u32> = None;
    while r.pos < end {
        let atype = r.u16()?;
        let alen = usize::from(r.u16()?);
        if alen < 8 {
            return Err(CodecError::new(
                "v13/action",
                format!("bad action length {alen}"),
            ));
        }
        let body_len = alen - 4;
        match atype {
            0 => {
                let port = port32_to16(r.u32()?);
                let max_len = r.u16()?;
                r.skip(6)?;
                if let Some(queue_id) = pending_queue.take() {
                    out.push(Action::Enqueue { port, queue_id });
                } else {
                    out.push(Action::Output { port, max_len });
                }
            }
            18 => {
                r.skip(4)?;
                out.push(Action::StripVlan);
            }
            21 => {
                pending_queue = Some(r.u32()?);
            }
            25 => {
                // SET_FIELD: one OXM, padded.
                let start = r.pos;
                let _class = r.u16()?;
                let field = r.u8()? >> 1;
                let vlen = usize::from(r.u8()?);
                let val = r.bytes(vlen)?.to_vec();
                let consumed = r.pos - start;
                let pad = body_len.checked_sub(consumed).ok_or_else(|| {
                    CodecError::new("v13/action", "set-field oxm overruns action body")
                })?;
                r.skip(pad)?;
                let need = |n: usize| -> CodecResult<()> {
                    if val.len() < n {
                        return Err(CodecError::new(
                            "v13/action",
                            format!("set-field {field}: value {} bytes, need {n}", val.len()),
                        ));
                    }
                    Ok(())
                };
                let act = match field {
                    oxm::VLAN_VID => {
                        need(2)?;
                        Action::SetVlanVid(u16::from_be_bytes([val[0], val[1]]) & 0xfff)
                    }
                    oxm::VLAN_PCP => {
                        need(1)?;
                        Action::SetVlanPcp(val[0])
                    }
                    oxm::ETH_SRC => {
                        need(6)?;
                        Action::SetDlSrc(MacAddr(val[..6].try_into().unwrap()))
                    }
                    oxm::ETH_DST => {
                        need(6)?;
                        Action::SetDlDst(MacAddr(val[..6].try_into().unwrap()))
                    }
                    oxm::IPV4_SRC => {
                        need(4)?;
                        Action::SetNwSrc(Ipv4Addr::from(u32::from_be_bytes(
                            val[..4].try_into().unwrap(),
                        )))
                    }
                    oxm::IPV4_DST => {
                        need(4)?;
                        Action::SetNwDst(Ipv4Addr::from(u32::from_be_bytes(
                            val[..4].try_into().unwrap(),
                        )))
                    }
                    oxm::IP_DSCP => {
                        need(1)?;
                        Action::SetNwTos(val[0] << 2)
                    }
                    oxm::TCP_SRC | oxm::UDP_SRC => {
                        need(2)?;
                        Action::SetTpSrc(u16::from_be_bytes([val[0], val[1]]))
                    }
                    oxm::TCP_DST | oxm::UDP_DST => {
                        need(2)?;
                        Action::SetTpDst(u16::from_be_bytes([val[0], val[1]]))
                    }
                    f => {
                        return Err(CodecError::new(
                            "v13/action",
                            format!("unknown set-field {f}"),
                        ))
                    }
                };
                out.push(act);
            }
            17 => {
                // PUSH_VLAN: implied by a following SET_FIELD(VLAN_VID); drop.
                r.skip(4)?;
            }
            other => {
                return Err(CodecError::new(
                    "v13/action",
                    format!("unknown action type {other}"),
                ))
            }
        }
    }
    if pending_queue.is_some() {
        return Err(CodecError::new(
            "v13/action",
            "SET_QUEUE without following OUTPUT",
        ));
    }
    Ok(out)
}

/// Write the instruction list for a flow mod.
fn put_instructions(b: &mut BytesMut, fm: &FlowMod) -> CodecResult<()> {
    if !fm.actions.is_empty() || fm.goto_table.is_none() {
        let mut ab = BytesMut::new();
        put_actions(&mut ab, &fm.actions)?;
        b.put_u16(4); // APPLY_ACTIONS
        b.put_u16(8 + ab.len() as u16);
        b.put_bytes(0, 4);
        b.put_slice(&ab);
    }
    if let Some(table) = fm.goto_table {
        b.put_u16(1); // GOTO_TABLE
        b.put_u16(8);
        b.put_u8(table);
        b.put_bytes(0, 3);
    }
    Ok(())
}

fn get_instructions(r: &mut Reader<'_>) -> CodecResult<(Vec<Action>, Option<u8>)> {
    let mut actions = Vec::new();
    let mut goto = None;
    while r.remaining() >= 4 {
        let itype = r.u16()?;
        let ilen = usize::from(r.u16()?);
        if ilen < 4 {
            return Err(CodecError::new("v13/instruction", "bad length"));
        }
        match itype {
            1 => {
                goto = Some(r.u8()?);
                r.skip(3)?;
            }
            3 | 4 => {
                r.skip(4)?;
                actions.extend(get_actions(r, ilen - 8)?);
            }
            _ => {
                r.skip(ilen - 4)?;
            }
        }
    }
    Ok((actions, goto))
}

// ---------------------------------------------------------------------
// ports
// ---------------------------------------------------------------------

fn put_port(b: &mut BytesMut, p: &PortDesc) {
    b.put_u32(port16_to32(p.port_no));
    b.put_bytes(0, 4);
    b.put_slice(&p.hw_addr.0);
    b.put_bytes(0, 2);
    put_fixed_str(b, &p.name, 16);
    b.put_u32(u32::from(p.config_down));
    b.put_u32(u32::from(p.link_down));
    b.put_u32(0); // curr features
    b.put_u32(0); // advertised
    b.put_u32(0); // supported
    b.put_u32(0); // peer
    b.put_u32(p.curr_speed);
    b.put_u32(p.max_speed);
}

fn get_port(r: &mut Reader<'_>) -> CodecResult<PortDesc> {
    let port_no = port32_to16(r.u32()?);
    r.skip(4)?;
    let hw_addr = MacAddr(r.bytes(6)?.try_into().unwrap());
    r.skip(2)?;
    let name = get_fixed_str(r, 16)?;
    let config = r.u32()?;
    let state = r.u32()?;
    r.skip(16)?;
    let curr_speed = r.u32()?;
    let max_speed = r.u32()?;
    Ok(PortDesc {
        port_no,
        hw_addr,
        name,
        config_down: config & 1 != 0,
        link_down: state & 1 != 0,
        curr_speed,
        max_speed,
    })
}

// ---------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------

/// Encode `msg` as an OpenFlow 1.3 frame with the given transaction id.
pub fn encode(msg: &Message, xid: u32) -> CodecResult<Bytes> {
    let mut b = BytesMut::new();
    let msg_type = match msg {
        Message::Hello => t::HELLO,
        Message::Error {
            err_type,
            code,
            data,
        } => {
            b.put_u16(*err_type);
            b.put_u16(*code);
            b.put_slice(data);
            t::ERROR
        }
        Message::EchoRequest(data) => {
            b.put_slice(data);
            t::ECHO_REQ
        }
        Message::EchoReply(data) => {
            b.put_slice(data);
            t::ECHO_REP
        }
        Message::FeaturesRequest => t::FEATURES_REQ,
        Message::FeaturesReply(f) => {
            if !f.ports.is_empty() {
                return Err(CodecError::new(
                    "v13/features",
                    "1.3 carries ports in a PortDesc multipart, not FeaturesReply",
                ));
            }
            b.put_u64(f.datapath_id);
            b.put_u32(f.n_buffers);
            b.put_u8(f.n_tables);
            b.put_u8(0); // auxiliary id
            b.put_bytes(0, 2);
            b.put_u32(f.capabilities);
            b.put_u32(0); // reserved
            t::FEATURES_REP
        }
        Message::GetConfigRequest => t::GET_CONFIG_REQ,
        Message::GetConfigReply { miss_send_len } => {
            b.put_u16(0);
            b.put_u16(*miss_send_len);
            t::GET_CONFIG_REP
        }
        Message::SetConfig { miss_send_len } => {
            b.put_u16(0);
            b.put_u16(*miss_send_len);
            t::SET_CONFIG
        }
        Message::PacketIn {
            buffer_id,
            total_len,
            in_port,
            reason,
            table_id,
            data,
        } => {
            b.put_u32(buffer_id.unwrap_or(BUFFER_NONE));
            b.put_u16(*total_len);
            b.put_u8(match reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            b.put_u8(*table_id);
            b.put_u64(0); // cookie
            let m = FlowMatch {
                in_port: Some(*in_port),
                ..Default::default()
            };
            put_match(&mut b, &m)?;
            b.put_bytes(0, 2);
            b.put_slice(data);
            t::PACKET_IN
        }
        Message::PacketOut {
            buffer_id,
            in_port,
            actions,
            data,
        } => {
            b.put_u32(buffer_id.unwrap_or(BUFFER_NONE));
            b.put_u32(port16_to32(*in_port));
            let mut ab = BytesMut::new();
            put_actions(&mut ab, actions)?;
            b.put_u16(ab.len() as u16);
            b.put_bytes(0, 6);
            b.put_slice(&ab);
            if buffer_id.is_none() {
                b.put_slice(data);
            }
            t::PACKET_OUT
        }
        Message::FlowMod(fm) => {
            b.put_u64(fm.cookie);
            b.put_u64(0); // cookie mask
            b.put_u8(fm.table_id);
            b.put_u8(match fm.command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::ModifyStrict => 2,
                FlowModCommand::Delete => 3,
                FlowModCommand::DeleteStrict => 4,
            });
            b.put_u16(fm.idle_timeout);
            b.put_u16(fm.hard_timeout);
            b.put_u16(fm.priority);
            b.put_u32(fm.buffer_id.unwrap_or(BUFFER_NONE));
            b.put_u32(fm.out_port.map(port16_to32).unwrap_or(PORT_ANY));
            b.put_u32(GROUP_ANY);
            b.put_u16(fm.flags);
            b.put_bytes(0, 2);
            put_match(&mut b, &fm.m)?;
            put_instructions(&mut b, fm)?;
            t::FLOW_MOD
        }
        Message::FlowRemoved {
            m,
            cookie,
            priority,
            reason,
            duration_sec,
            packet_count,
            byte_count,
        } => {
            b.put_u64(*cookie);
            b.put_u16(*priority);
            b.put_u8(match reason {
                FlowRemovedReason::IdleTimeout => 0,
                FlowRemovedReason::HardTimeout => 1,
                FlowRemovedReason::Delete => 2,
            });
            b.put_u8(0); // table id
            b.put_u32(*duration_sec);
            b.put_u32(0);
            b.put_u16(0); // idle
            b.put_u16(0); // hard
            b.put_u64(*packet_count);
            b.put_u64(*byte_count);
            put_match(&mut b, m)?;
            t::FLOW_REMOVED
        }
        Message::PortStatus { reason, desc } => {
            b.put_u8(match reason {
                PortReason::Add => 0,
                PortReason::Delete => 1,
                PortReason::Modify => 2,
            });
            b.put_bytes(0, 7);
            put_port(&mut b, desc);
            t::PORT_STATUS
        }
        Message::PortMod {
            port_no,
            hw_addr,
            down,
        } => {
            b.put_u32(port16_to32(*port_no));
            b.put_bytes(0, 4);
            b.put_slice(&hw_addr.0);
            b.put_bytes(0, 2);
            b.put_u32(u32::from(*down));
            b.put_u32(1); // mask
            b.put_u32(0); // advertise
            b.put_bytes(0, 4);
            t::PORT_MOD
        }
        Message::StatsRequest(req) => {
            match req {
                StatsRequest::Desc => {
                    b.put_u16(0);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                }
                StatsRequest::Flow { table_id, m } | StatsRequest::Aggregate { table_id, m } => {
                    b.put_u16(if matches!(req, StatsRequest::Flow { .. }) {
                        1
                    } else {
                        2
                    });
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                    b.put_u8(*table_id);
                    b.put_bytes(0, 3);
                    b.put_u32(PORT_ANY);
                    b.put_u32(GROUP_ANY);
                    b.put_bytes(0, 4);
                    b.put_u64(0); // cookie
                    b.put_u64(0); // cookie mask
                    put_match(&mut b, m)?;
                }
                StatsRequest::Port { port_no } => {
                    b.put_u16(4);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                    b.put_u32(port16_to32(*port_no));
                    b.put_bytes(0, 4);
                }
                StatsRequest::PortDesc => {
                    b.put_u16(13);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                }
            }
            t::MULTIPART_REQ
        }
        Message::StatsReply(rep) => {
            match rep {
                StatsReply::Desc { description } => {
                    b.put_u16(0);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                    put_fixed_str(&mut b, description, 256);
                    put_fixed_str(&mut b, "yanc-sim", 256);
                    put_fixed_str(&mut b, "yanc", 256);
                    put_fixed_str(&mut b, "0", 32);
                    put_fixed_str(&mut b, description, 256);
                }
                StatsReply::Flow(flows) => {
                    b.put_u16(1);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                    for fst in flows {
                        let mut e = BytesMut::new();
                        e.put_u8(fst.table_id);
                        e.put_u8(0);
                        e.put_u32(fst.duration_sec);
                        e.put_u32(0);
                        e.put_u16(fst.priority);
                        e.put_u16(0);
                        e.put_u16(0);
                        e.put_u16(0); // flags
                        e.put_bytes(0, 4);
                        e.put_u64(fst.cookie);
                        e.put_u64(fst.packet_count);
                        e.put_u64(fst.byte_count);
                        put_match(&mut e, &fst.m)?;
                        b.put_u16(e.len() as u16 + 2);
                        b.put_slice(&e);
                    }
                }
                StatsReply::Aggregate {
                    packet_count,
                    byte_count,
                    flow_count,
                } => {
                    b.put_u16(2);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                    b.put_u64(*packet_count);
                    b.put_u64(*byte_count);
                    b.put_u32(*flow_count);
                    b.put_bytes(0, 4);
                }
                StatsReply::Port(ports) => {
                    b.put_u16(4);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                    for p in ports {
                        b.put_u32(port16_to32(p.port_no));
                        b.put_bytes(0, 4);
                        b.put_u64(p.rx_packets);
                        b.put_u64(p.tx_packets);
                        b.put_u64(p.rx_bytes);
                        b.put_u64(p.tx_bytes);
                        b.put_u64(p.rx_dropped);
                        b.put_u64(p.tx_dropped);
                        b.put_bytes(0, 48); // errors
                        b.put_u32(0); // duration sec
                        b.put_u32(0); // duration nsec
                    }
                }
                StatsReply::PortDesc(ports) => {
                    b.put_u16(13);
                    b.put_u16(0);
                    b.put_bytes(0, 4);
                    for p in ports {
                        put_port(&mut b, p);
                    }
                }
            }
            t::MULTIPART_REP
        }
        Message::BarrierRequest => t::BARRIER_REQ,
        Message::BarrierReply => t::BARRIER_REP,
    };
    Ok(frame(VERSION, msg_type, xid, &b))
}

// ---------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------

/// Decode an OpenFlow 1.3 frame body into a [`Message`].
pub fn decode(f: &RawFrame) -> CodecResult<Message> {
    if f.version != VERSION {
        return Err(CodecError::new(
            "v13",
            format!("not version 0x04: 0x{:02x}", f.version),
        ));
    }
    let mut r = Reader::new("v13", &f.body);
    let msg = match f.msg_type {
        t::HELLO => Message::Hello, // hello elements, if any, are ignored
        t::ERROR => {
            let err_type = r.u16()?;
            let code = r.u16()?;
            Message::Error {
                err_type,
                code,
                data: Bytes::copy_from_slice(r.rest()),
            }
        }
        t::ECHO_REQ => Message::EchoRequest(Bytes::copy_from_slice(r.rest())),
        t::ECHO_REP => Message::EchoReply(Bytes::copy_from_slice(r.rest())),
        t::FEATURES_REQ => Message::FeaturesRequest,
        t::FEATURES_REP => {
            let datapath_id = r.u64()?;
            let n_buffers = r.u32()?;
            let n_tables = r.u8()?;
            r.skip(3)?;
            let capabilities = r.u32()?;
            r.skip(4)?;
            Message::FeaturesReply(SwitchFeatures {
                datapath_id,
                n_buffers,
                n_tables,
                capabilities,
                actions: 0,
                ports: Vec::new(),
            })
        }
        t::GET_CONFIG_REQ => Message::GetConfigRequest,
        t::GET_CONFIG_REP => {
            r.skip(2)?;
            Message::GetConfigReply {
                miss_send_len: r.u16()?,
            }
        }
        t::SET_CONFIG => {
            r.skip(2)?;
            Message::SetConfig {
                miss_send_len: r.u16()?,
            }
        }
        t::PACKET_IN => {
            let buffer_id = r.u32()?;
            let total_len = r.u16()?;
            let reason = match r.u8()? {
                0 => PacketInReason::NoMatch,
                _ => PacketInReason::Action,
            };
            let table_id = r.u8()?;
            r.skip(8)?; // cookie
            let m = get_match(&mut r)?;
            r.skip(2)?;
            Message::PacketIn {
                buffer_id: (buffer_id != BUFFER_NONE).then_some(buffer_id),
                total_len,
                in_port: m.in_port.unwrap_or(0),
                reason,
                table_id,
                data: Bytes::copy_from_slice(r.rest()),
            }
        }
        t::PACKET_OUT => {
            let buffer_id = r.u32()?;
            let in_port = port32_to16(r.u32()?);
            let alen = usize::from(r.u16()?);
            r.skip(6)?;
            let actions = get_actions(&mut r, alen)?;
            Message::PacketOut {
                buffer_id: (buffer_id != BUFFER_NONE).then_some(buffer_id),
                in_port,
                actions,
                data: Bytes::copy_from_slice(r.rest()),
            }
        }
        t::FLOW_MOD => {
            let cookie = r.u64()?;
            let _cookie_mask = r.u64()?;
            let table_id = r.u8()?;
            let command = match r.u8()? {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::ModifyStrict,
                3 => FlowModCommand::Delete,
                4 => FlowModCommand::DeleteStrict,
                c => return Err(CodecError::new("v13/flow_mod", format!("bad command {c}"))),
            };
            let idle_timeout = r.u16()?;
            let hard_timeout = r.u16()?;
            let priority = r.u16()?;
            let buffer_id = r.u32()?;
            let out_port = r.u32()?;
            let _out_group = r.u32()?;
            let flags = r.u16()?;
            r.skip(2)?;
            let m = get_match(&mut r)?;
            let (actions, goto_table) = get_instructions(&mut r)?;
            Message::FlowMod(FlowMod {
                table_id,
                command,
                m,
                cookie,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id: (buffer_id != BUFFER_NONE).then_some(buffer_id),
                out_port: (out_port != PORT_ANY).then_some(port32_to16(out_port)),
                flags,
                actions,
                goto_table,
            })
        }
        t::FLOW_REMOVED => {
            let cookie = r.u64()?;
            let priority = r.u16()?;
            let reason = match r.u8()? {
                0 => FlowRemovedReason::IdleTimeout,
                1 => FlowRemovedReason::HardTimeout,
                _ => FlowRemovedReason::Delete,
            };
            let _table = r.u8()?;
            let duration_sec = r.u32()?;
            r.skip(4 + 2 + 2)?;
            let packet_count = r.u64()?;
            let byte_count = r.u64()?;
            let m = get_match(&mut r)?;
            Message::FlowRemoved {
                m,
                cookie,
                priority,
                reason,
                duration_sec,
                packet_count,
                byte_count,
            }
        }
        t::PORT_STATUS => {
            let reason = match r.u8()? {
                0 => PortReason::Add,
                1 => PortReason::Delete,
                _ => PortReason::Modify,
            };
            r.skip(7)?;
            Message::PortStatus {
                reason,
                desc: get_port(&mut r)?,
            }
        }
        t::PORT_MOD => {
            let port_nmb = port32_to16(r.u32()?);
            r.skip(4)?;
            let hw_addr = MacAddr(r.bytes(6)?.try_into().unwrap());
            r.skip(2)?;
            let config = r.u32()?;
            Message::PortMod {
                port_no: port_nmb,
                hw_addr,
                down: config & 1 != 0,
            }
        }
        t::MULTIPART_REQ => {
            let stype = r.u16()?;
            r.skip(2 + 4)?;
            let req = match stype {
                0 => StatsRequest::Desc,
                1 | 2 => {
                    let table_id = r.u8()?;
                    r.skip(3 + 4 + 4 + 4 + 8 + 8)?;
                    let m = get_match(&mut r)?;
                    if stype == 1 {
                        StatsRequest::Flow { table_id, m }
                    } else {
                        StatsRequest::Aggregate { table_id, m }
                    }
                }
                4 => {
                    let port_nmb = port32_to16(r.u32()?);
                    StatsRequest::Port { port_no: port_nmb }
                }
                13 => StatsRequest::PortDesc,
                o => {
                    return Err(CodecError::new(
                        "v13/multipart",
                        format!("unknown type {o}"),
                    ))
                }
            };
            Message::StatsRequest(req)
        }
        t::MULTIPART_REP => {
            let stype = r.u16()?;
            r.skip(2 + 4)?;
            let rep = match stype {
                0 => {
                    let description = get_fixed_str(&mut r, 256)?;
                    r.skip(256 + 256 + 32 + 256)?;
                    StatsReply::Desc { description }
                }
                1 => {
                    let mut flows = Vec::new();
                    while r.remaining() >= 2 {
                        let len = usize::from(r.u16()?);
                        let entry_end = r.pos - 2 + len;
                        let table_id = r.u8()?;
                        r.skip(1)?;
                        let duration_sec = r.u32()?;
                        r.skip(4)?;
                        let priority = r.u16()?;
                        r.skip(2 + 2 + 2 + 4)?;
                        let cookie = r.u64()?;
                        let packet_count = r.u64()?;
                        let byte_count = r.u64()?;
                        let m = get_match(&mut r)?;
                        if r.pos < entry_end {
                            r.skip(entry_end - r.pos)?; // instructions
                        }
                        flows.push(FlowStats {
                            table_id,
                            m,
                            priority,
                            cookie,
                            duration_sec,
                            packet_count,
                            byte_count,
                        });
                    }
                    StatsReply::Flow(flows)
                }
                2 => {
                    let packet_count = r.u64()?;
                    let byte_count = r.u64()?;
                    let flow_count = r.u32()?;
                    StatsReply::Aggregate {
                        packet_count,
                        byte_count,
                        flow_count,
                    }
                }
                4 => {
                    let mut ports = Vec::new();
                    while r.remaining() >= 112 {
                        let port_nmb = port32_to16(r.u32()?);
                        r.skip(4)?;
                        let rx_packets = r.u64()?;
                        let tx_packets = r.u64()?;
                        let rx_bytes = r.u64()?;
                        let tx_bytes = r.u64()?;
                        let rx_dropped = r.u64()?;
                        let tx_dropped = r.u64()?;
                        r.skip(48 + 8)?;
                        ports.push(PortStats {
                            port_no: port_nmb,
                            rx_packets,
                            tx_packets,
                            rx_bytes,
                            tx_bytes,
                            rx_dropped,
                            tx_dropped,
                        });
                    }
                    StatsReply::Port(ports)
                }
                13 => {
                    let mut ports = Vec::new();
                    while r.remaining() >= 64 {
                        ports.push(get_port(&mut r)?);
                    }
                    StatsReply::PortDesc(ports)
                }
                o => {
                    return Err(CodecError::new(
                        "v13/multipart",
                        format!("unknown type {o}"),
                    ))
                }
            };
            Message::StatsReply(rep)
        }
        t::BARRIER_REQ => Message::BarrierRequest,
        t::BARRIER_REP => Message::BarrierReply,
        other => {
            return Err(CodecError::new(
                "v13",
                format!("unknown message type {other}"),
            ))
        }
    };
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::port_no;
    use crate::wire::FrameCodec;

    fn roundtrip(msg: Message) -> Message {
        let wire = encode(&msg, 7).unwrap();
        let mut c = FrameCodec::new();
        c.feed(&wire);
        let f = c.next_frame().unwrap().unwrap();
        assert_eq!(f.version, VERSION);
        decode(&f).unwrap()
    }

    fn tcp_match() -> FlowMatch {
        FlowMatch {
            in_port: Some(3),
            dl_src: Some(MacAddr::from_seed(1)),
            dl_type: Some(0x0800),
            nw_proto: Some(6),
            nw_src: Ipv4Prefix::parse("10.0.0.0/24"),
            nw_dst: Ipv4Prefix::parse("10.0.1.5"),
            tp_dst: Some(22),
            ..Default::default()
        }
    }

    #[test]
    fn port_number_mapping() {
        assert_eq!(port16_to32(1), 1);
        assert_eq!(port16_to32(port_no::CONTROLLER), 0xfffffffd);
        assert_eq!(port16_to32(port_no::FLOOD), 0xfffffffb);
        assert_eq!(port32_to16(0xfffffffd), port_no::CONTROLLER);
        assert_eq!(port32_to16(5), 5);
        for p in [1u16, 48, port_no::IN_PORT, port_no::ALL, port_no::NONE] {
            assert_eq!(port32_to16(port16_to32(p)), p);
        }
    }

    #[test]
    fn match_roundtrip_tcp() {
        let mut b = BytesMut::new();
        put_match(&mut b, &tcp_match()).unwrap();
        assert_eq!(b.len() % 8, 0);
        let mut r = Reader::new("t", &b);
        assert_eq!(get_match(&mut r).unwrap(), tcp_match());
    }

    #[test]
    fn match_roundtrip_arp_and_icmp_and_vlan() {
        let arp = FlowMatch {
            dl_type: Some(0x0806),
            nw_proto: Some(1),
            nw_src: Ipv4Prefix::parse("10.0.0.1"),
            nw_dst: Ipv4Prefix::parse("10.0.0.0/16"),
            ..Default::default()
        };
        let icmp = FlowMatch {
            dl_type: Some(0x0800),
            nw_proto: Some(1),
            tp_src: Some(8),
            tp_dst: Some(0),
            ..Default::default()
        };
        let vlan = FlowMatch {
            dl_vlan: Some(100),
            dl_vlan_pcp: Some(5),
            dl_type: Some(0x0800),
            nw_tos: Some(0x20),
            ..Default::default()
        };
        for m in [arp, icmp, vlan, FlowMatch::any()] {
            let mut b = BytesMut::new();
            put_match(&mut b, &m).unwrap();
            let mut r = Reader::new("t", &b);
            assert_eq!(get_match(&mut r).unwrap(), m);
        }
    }

    #[test]
    fn prerequisites_enforced() {
        // tp_dst without nw_proto
        let m = FlowMatch {
            dl_type: Some(0x0800),
            tp_dst: Some(22),
            ..Default::default()
        };
        assert!(oxm_payload(&m).is_err());
        // nw fields without dl_type
        let m = FlowMatch {
            nw_proto: Some(6),
            ..Default::default()
        };
        assert!(oxm_payload(&m).is_err());
        // pcp without vid
        let m = FlowMatch {
            dl_vlan_pcp: Some(3),
            ..Default::default()
        };
        assert!(oxm_payload(&m).is_err());
        // tp on ARP
        let m = FlowMatch {
            dl_type: Some(0x0806),
            tp_dst: Some(1),
            ..Default::default()
        };
        assert!(oxm_payload(&m).is_err());
    }

    #[test]
    fn flow_mod_roundtrip_with_goto_and_actions() {
        let fm = FlowMod {
            table_id: 2,
            command: FlowModCommand::Add,
            m: tcp_match(),
            cookie: 0xbeef,
            idle_timeout: 10,
            hard_timeout: 0,
            priority: 500,
            buffer_id: None,
            out_port: None,
            flags: 1,
            actions: vec![
                Action::SetDlDst(MacAddr::from_seed(5)),
                Action::SetNwDst("10.9.9.9".parse().unwrap()),
                Action::SetTpDst(8080),
                Action::SetVlanVid(300),
                Action::StripVlan,
                Action::Enqueue {
                    port: 4,
                    queue_id: 2,
                },
                Action::out(4),
            ],
            goto_table: Some(3),
        };
        assert_eq!(
            roundtrip(Message::FlowMod(fm.clone())),
            Message::FlowMod(fm)
        );
    }

    #[test]
    fn packet_in_roundtrip_carries_in_port_via_oxm() {
        let m = Message::PacketIn {
            buffer_id: Some(9),
            total_len: 100,
            in_port: 6,
            reason: PacketInReason::NoMatch,
            table_id: 1,
            data: Bytes::from_static(b"frame"),
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn packet_out_roundtrip() {
        let m = Message::PacketOut {
            buffer_id: None,
            in_port: port_no::CONTROLLER,
            actions: vec![Action::out(port_no::FLOOD)],
            data: Bytes::from_static(b"bytes"),
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn features_reply_without_ports() {
        let m = Message::FeaturesReply(SwitchFeatures {
            datapath_id: 5,
            n_buffers: 256,
            n_tables: 8,
            capabilities: 0x4f,
            actions: 0,
            ports: Vec::new(),
        });
        assert_eq!(roundtrip(m.clone()), m);
        // With ports it must refuse.
        let bad = Message::FeaturesReply(SwitchFeatures {
            datapath_id: 5,
            n_buffers: 0,
            n_tables: 1,
            capabilities: 0,
            actions: 0,
            ports: vec![PortDesc {
                port_no: 1,
                hw_addr: MacAddr::ZERO,
                name: "p".into(),
                config_down: false,
                link_down: false,
                curr_speed: 0,
                max_speed: 0,
            }],
        });
        assert!(encode(&bad, 1).is_err());
    }

    #[test]
    fn port_desc_multipart_roundtrip() {
        let ports = vec![
            PortDesc {
                port_no: 1,
                hw_addr: MacAddr::from_seed(1),
                name: "p1".into(),
                config_down: false,
                link_down: true,
                curr_speed: 123_456,
                max_speed: 10_000_000,
            },
            PortDesc {
                port_no: 2,
                hw_addr: MacAddr::from_seed(2),
                name: "p2".into(),
                config_down: true,
                link_down: false,
                curr_speed: 1_000_000,
                max_speed: 1_000_000,
            },
        ];
        let m = Message::StatsReply(StatsReply::PortDesc(ports));
        assert_eq!(roundtrip(m.clone()), m);
        let req = Message::StatsRequest(StatsRequest::PortDesc);
        assert_eq!(roundtrip(req.clone()), req);
    }

    #[test]
    fn stats_roundtrips() {
        for m in [
            Message::StatsRequest(StatsRequest::Desc),
            Message::StatsRequest(StatsRequest::Flow {
                table_id: 0,
                m: tcp_match(),
            }),
            Message::StatsRequest(StatsRequest::Aggregate {
                table_id: 0xff,
                m: FlowMatch::any(),
            }),
            Message::StatsRequest(StatsRequest::Port { port_no: 3 }),
            Message::StatsReply(StatsReply::Desc {
                description: "yanc".into(),
            }),
            Message::StatsReply(StatsReply::Flow(vec![FlowStats {
                table_id: 1,
                m: tcp_match(),
                priority: 10,
                cookie: 4,
                duration_sec: 9,
                packet_count: 100,
                byte_count: 9999,
            }])),
            Message::StatsReply(StatsReply::Aggregate {
                packet_count: 1,
                byte_count: 2,
                flow_count: 3,
            }),
            Message::StatsReply(StatsReply::Port(vec![PortStats {
                port_no: 2,
                rx_packets: 10,
                tx_packets: 20,
                rx_bytes: 30,
                tx_bytes: 40,
                rx_dropped: 1,
                tx_dropped: 2,
            }])),
        ] {
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn flow_removed_and_port_messages() {
        let fr = Message::FlowRemoved {
            m: tcp_match(),
            cookie: 11,
            priority: 7,
            reason: FlowRemovedReason::HardTimeout,
            duration_sec: 33,
            packet_count: 5,
            byte_count: 50,
        };
        assert_eq!(roundtrip(fr.clone()), fr);
        let ps = Message::PortStatus {
            reason: PortReason::Add,
            desc: PortDesc {
                port_no: 9,
                hw_addr: MacAddr::from_seed(9),
                name: "uplink".into(),
                config_down: false,
                link_down: false,
                curr_speed: 40_000_000,
                max_speed: 40_000_000,
            },
        };
        assert_eq!(roundtrip(ps.clone()), ps);
        let pm = Message::PortMod {
            port_no: 9,
            hw_addr: MacAddr::from_seed(9),
            down: true,
        };
        assert_eq!(roundtrip(pm.clone()), pm);
    }

    #[test]
    fn simple_messages() {
        for m in [
            Message::Hello,
            Message::FeaturesRequest,
            Message::BarrierRequest,
            Message::BarrierReply,
            Message::SetConfig {
                miss_send_len: 1400,
            },
            Message::EchoRequest(Bytes::from_static(b"x")),
        ] {
            assert_eq!(roundtrip(m.clone()), m);
        }
    }
}
