//! # yanc-openflow — OpenFlow 1.0 and 1.3 protocol implementation
//!
//! A version-independent message model ([`Message`], [`FlowMatch`],
//! [`Action`], [`FlowMod`], …) plus real wire codecs for OpenFlow 1.0
//! ([`v10`]) and OpenFlow 1.3 ([`v13`]), and a streaming [`FrameCodec`]
//! for reassembling messages off a control channel.
//!
//! The split mirrors the paper's driver architecture (§4.1): yanc
//! applications speak one stable vocabulary (files in `/net`); per-version
//! *drivers* translate it to the protocol a given switch understands.
//! Capability differences are surfaced as encode errors — a 1.0 codec
//! refuses `goto_table`, a 1.3 codec enforces OXM prerequisites — so a
//! driver can detect and report exactly what its protocol cannot express.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod multipart;
pub mod types;
pub mod v10;
pub mod v13;
pub mod wire;

pub use multipart::{Reassembler, StatsPart, REPLY_MORE};
pub use types::{
    flow_mod_flags, port_no, Action, FlowMatch, FlowMod, FlowModCommand, FlowRemovedReason,
    FlowStats, Ipv4Prefix, Message, PacketInReason, PortDesc, PortReason, PortStats, StatsReply,
    StatsRequest, SwitchFeatures, Version,
};
pub use wire::{frame, CodecError, CodecResult, FrameCodec, RawFrame, HEADER_LEN};

/// Encode `msg` for the given protocol version.
pub fn encode(version: Version, msg: &Message, xid: u32) -> CodecResult<bytes::Bytes> {
    match version {
        Version::V1_0 => v10::encode(msg, xid),
        Version::V1_3 => v13::encode(msg, xid),
    }
}

/// Decode a reassembled frame, dispatching on its version byte.
pub fn decode(frame: &RawFrame) -> CodecResult<Message> {
    match frame.protocol() {
        Some(Version::V1_0) => v10::decode(frame),
        Some(Version::V1_3) => v13::decode(frame),
        None => Err(CodecError::new(
            "decode",
            format!("unknown version 0x{:02x}", frame.version),
        )),
    }
}
