//! Version-independent OpenFlow object model.
//!
//! Drivers, switches and the yanc flow codec all speak this model; the
//! [`crate::v10`] and [`crate::v13`] modules translate it to and from real
//! wire bytes for their protocol version. This mirrors the paper's driver
//! argument (§4.1): the file system exposes one stable vocabulary while
//! per-version drivers handle protocol differences — including refusing
//! features their version cannot express (a 1.0 driver cannot install a
//! multi-table flow).

use std::fmt;
use std::net::Ipv4Addr;

use bytes::Bytes;
use yanc_packet::{MacAddr, PacketSummary};

/// Reserved port numbers (OpenFlow 1.0 16-bit encoding; the 1.3 codec maps
/// them to their 32-bit counterparts).
pub mod port_no {
    /// Send back out the ingress port.
    pub const IN_PORT: u16 = 0xfff8;
    /// Submit to the flow table (packet-out only).
    pub const TABLE: u16 = 0xfff9;
    /// Legacy L2 processing.
    pub const NORMAL: u16 = 0xfffa;
    /// Flood to all ports except ingress (and blocked ports).
    pub const FLOOD: u16 = 0xfffb;
    /// All ports except ingress.
    pub const ALL: u16 = 0xfffc;
    /// Send to the controller as a packet-in.
    pub const CONTROLLER: u16 = 0xfffd;
    /// The switch-local port.
    pub const LOCAL: u16 = 0xfffe;
    /// Wildcard/none.
    pub const NONE: u16 = 0xffff;
}

/// An IPv4 prefix (address + prefix length) for CIDR matching.
///
/// The paper: "fields such as IP source take the CIDR notation".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Prefix {
    /// Network address.
    pub addr: Ipv4Addr,
    /// Prefix length, 0..=32.
    pub prefix_len: u8,
}

impl Ipv4Prefix {
    /// A host (/32) prefix.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix {
            addr,
            prefix_len: 32,
        }
    }

    /// Whether `ip` falls within the prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        if self.prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(self.prefix_len.min(32)));
        (u32::from(self.addr) & mask) == (u32::from(ip) & mask)
    }

    /// The netmask as a 32-bit value.
    pub fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(self.prefix_len.min(32)))
        }
    }

    /// Parse `a.b.c.d` or `a.b.c.d/len`.
    pub fn parse(s: &str) -> Option<Ipv4Prefix> {
        match s.split_once('/') {
            Some((a, l)) => {
                let addr = a.parse().ok()?;
                let prefix_len: u8 = l.parse().ok()?;
                if prefix_len > 32 {
                    return None;
                }
                Some(Ipv4Prefix { addr, prefix_len })
            }
            None => Some(Ipv4Prefix::host(s.parse().ok()?)),
        }
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix_len == 32 {
            write!(f, "{}", self.addr)
        } else {
            write!(f, "{}/{}", self.addr, self.prefix_len)
        }
    }
}

/// A flow match: every `None` field is a wildcard (the paper: "absence of a
/// match file implies a wildcard").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<u16>,
    /// Ethernet source.
    pub dl_src: Option<MacAddr>,
    /// Ethernet destination.
    pub dl_dst: Option<MacAddr>,
    /// VLAN id.
    pub dl_vlan: Option<u16>,
    /// VLAN priority.
    pub dl_vlan_pcp: Option<u8>,
    /// EtherType.
    pub dl_type: Option<u16>,
    /// IP TOS (DSCP byte).
    pub nw_tos: Option<u8>,
    /// IP protocol (or ARP opcode).
    pub nw_proto: Option<u8>,
    /// IPv4 source prefix.
    pub nw_src: Option<Ipv4Prefix>,
    /// IPv4 destination prefix.
    pub nw_dst: Option<Ipv4Prefix>,
    /// L4 source port (or ICMP type).
    pub tp_src: Option<u16>,
    /// L4 destination port (or ICMP code).
    pub tp_dst: Option<u16>,
}

impl FlowMatch {
    /// The match-everything wildcard.
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Whether this match accepts a packet with the given headers arriving
    /// on `in_port`.
    pub fn matches(&self, pkt: &PacketSummary, in_port: u16) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(m) = self.dl_src {
            if m != pkt.dl_src {
                return false;
            }
        }
        if let Some(m) = self.dl_dst {
            if m != pkt.dl_dst {
                return false;
            }
        }
        if let Some(v) = self.dl_vlan {
            if pkt.dl_vlan != Some(v) {
                return false;
            }
        }
        if let Some(v) = self.dl_vlan_pcp {
            if pkt.dl_vlan_pcp != Some(v) {
                return false;
            }
        }
        if let Some(t) = self.dl_type {
            if t != pkt.dl_type {
                return false;
            }
        }
        if let Some(t) = self.nw_tos {
            if pkt.nw_tos != Some(t) {
                return false;
            }
        }
        if let Some(p) = self.nw_proto {
            if pkt.nw_proto != Some(p) {
                return false;
            }
        }
        if let Some(pre) = self.nw_src {
            match pkt.nw_src {
                Some(ip) if pre.contains(ip) => {}
                _ => return false,
            }
        }
        if let Some(pre) = self.nw_dst {
            match pkt.nw_dst {
                Some(ip) if pre.contains(ip) => {}
                _ => return false,
            }
        }
        if let Some(p) = self.tp_src {
            if pkt.tp_src != Some(p) {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if pkt.tp_dst != Some(p) {
                return false;
            }
        }
        true
    }

    /// An exact match for `pkt` arriving on `in_port` — what the paper's
    /// router daemon installs per table miss.
    pub fn exact(pkt: &PacketSummary, in_port: u16) -> FlowMatch {
        FlowMatch {
            in_port: Some(in_port),
            dl_src: Some(pkt.dl_src),
            dl_dst: Some(pkt.dl_dst),
            dl_vlan: pkt.dl_vlan,
            dl_vlan_pcp: pkt.dl_vlan_pcp,
            dl_type: Some(pkt.dl_type),
            nw_tos: pkt.nw_tos,
            nw_proto: pkt.nw_proto,
            nw_src: pkt.nw_src.map(Ipv4Prefix::host),
            nw_dst: pkt.nw_dst.map(Ipv4Prefix::host),
            tp_src: pkt.tp_src,
            tp_dst: pkt.tp_dst,
        }
    }

    /// Whether every packet matched by `other` is also matched by `self`
    /// (i.e. `self` is equal or strictly wider). Used by strict-delete and
    /// the slicer's header-space checks.
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        fn f<T: PartialEq>(wide: &Option<T>, narrow: &Option<T>) -> bool {
            match (wide, narrow) {
                (None, _) => true,
                (Some(a), Some(b)) => a == b,
                (Some(_), None) => false,
            }
        }
        let pre_ok = |wide: &Option<Ipv4Prefix>, narrow: &Option<Ipv4Prefix>| match (wide, narrow) {
            (None, _) => true,
            (Some(w), Some(n)) => w.prefix_len <= n.prefix_len && w.contains(n.addr),
            (Some(_), None) => false,
        };
        f(&self.in_port, &other.in_port)
            && f(&self.dl_src, &other.dl_src)
            && f(&self.dl_dst, &other.dl_dst)
            && f(&self.dl_vlan, &other.dl_vlan)
            && f(&self.dl_vlan_pcp, &other.dl_vlan_pcp)
            && f(&self.dl_type, &other.dl_type)
            && f(&self.nw_tos, &other.nw_tos)
            && f(&self.nw_proto, &other.nw_proto)
            && pre_ok(&self.nw_src, &other.nw_src)
            && pre_ok(&self.nw_dst, &other.nw_dst)
            && f(&self.tp_src, &other.tp_src)
            && f(&self.tp_dst, &other.tp_dst)
    }

    /// Number of specified (non-wildcard) fields — a crude specificity
    /// measure used in tests and diagnostics.
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        n += u32::from(self.in_port.is_some());
        n += u32::from(self.dl_src.is_some());
        n += u32::from(self.dl_dst.is_some());
        n += u32::from(self.dl_vlan.is_some());
        n += u32::from(self.dl_vlan_pcp.is_some());
        n += u32::from(self.dl_type.is_some());
        n += u32::from(self.nw_tos.is_some());
        n += u32::from(self.nw_proto.is_some());
        n += u32::from(self.nw_src.is_some());
        n += u32::from(self.nw_dst.is_some());
        n += u32::from(self.tp_src.is_some());
        n += u32::from(self.tp_dst.is_some());
        n
    }
}

/// A flow or packet-out action, version-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out a port (possibly a reserved one; `max_len` caps
    /// controller-bound truncation).
    Output {
        /// Destination port (see [`port_no`]).
        port: u16,
        /// Bytes to send on CONTROLLER output.
        max_len: u16,
    },
    /// Set the VLAN id (tagging if untagged).
    SetVlanVid(u16),
    /// Set the VLAN priority.
    SetVlanPcp(u8),
    /// Remove the VLAN tag.
    StripVlan,
    /// Rewrite the Ethernet source.
    SetDlSrc(MacAddr),
    /// Rewrite the Ethernet destination.
    SetDlDst(MacAddr),
    /// Rewrite the IPv4 source.
    SetNwSrc(Ipv4Addr),
    /// Rewrite the IPv4 destination.
    SetNwDst(Ipv4Addr),
    /// Rewrite the IP TOS byte.
    SetNwTos(u8),
    /// Rewrite the L4 source port.
    SetTpSrc(u16),
    /// Rewrite the L4 destination port.
    SetTpDst(u16),
    /// Enqueue on a port queue (QoS).
    Enqueue {
        /// Destination port.
        port: u16,
        /// Queue id.
        queue_id: u32,
    },
}

impl Action {
    /// Shorthand for a plain output action.
    pub fn out(port: u16) -> Action {
        Action::Output {
            port,
            max_len: 0xffff,
        }
    }
}

/// `FlowMod` commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModCommand {
    /// Insert (replacing an identical match+priority entry).
    Add,
    /// Modify actions of all matching (subsumed) entries.
    Modify,
    /// Modify actions of the exactly-matching entry.
    ModifyStrict,
    /// Delete all matching (subsumed) entries.
    Delete,
    /// Delete the exactly-matching entry.
    DeleteStrict,
}

/// Flags for flow mods.
pub mod flow_mod_flags {
    /// Send a `FlowRemoved` when the entry expires or is deleted.
    pub const SEND_FLOW_REM: u16 = 1;
    /// Check for overlapping entries on add.
    pub const CHECK_OVERLAP: u16 = 2;
}

/// A flow-table modification.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMod {
    /// Target table (always 0 for OpenFlow 1.0).
    pub table_id: u8,
    /// Command.
    pub command: FlowModCommand,
    /// Match.
    pub m: FlowMatch,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Priority (higher wins).
    pub priority: u16,
    /// Buffered packet to apply the flow to.
    pub buffer_id: Option<u32>,
    /// For deletes: restrict to flows with this out port.
    pub out_port: Option<u16>,
    /// See [`flow_mod_flags`].
    pub flags: u16,
    /// Actions (empty = drop).
    pub actions: Vec<Action>,
    /// OpenFlow ≥1.1 goto-table instruction; a 1.0 driver must refuse this.
    pub goto_table: Option<u8>,
}

impl FlowMod {
    /// A minimal ADD flow mod.
    pub fn add(m: FlowMatch, priority: u16, actions: Vec<Action>) -> FlowMod {
        FlowMod {
            table_id: 0,
            command: FlowModCommand::Add,
            m,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            priority,
            buffer_id: None,
            out_port: None,
            flags: 0,
            actions,
            goto_table: None,
        }
    }
}

/// Why a packet-in was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// No matching flow entry.
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
}

/// Why a port-status message was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortReason {
    /// Port added.
    Add,
    /// Port removed.
    Delete,
    /// Port state/config changed.
    Modify,
}

/// Why a flow was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowRemovedReason {
    /// Idle timeout fired.
    IdleTimeout,
    /// Hard timeout fired.
    HardTimeout,
    /// Deleted by a flow mod.
    Delete,
}

/// Port configuration/state description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDesc {
    /// Port number.
    pub port_no: u16,
    /// Hardware address.
    pub hw_addr: MacAddr,
    /// Interface name (at most 15 bytes on the wire).
    pub name: String,
    /// Administratively down.
    pub config_down: bool,
    /// Link is down.
    pub link_down: bool,
    /// Current speed in kbps.
    pub curr_speed: u32,
    /// Maximum speed in kbps.
    pub max_speed: u32,
}

/// Switch capabilities advertised in the features reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchFeatures {
    /// Datapath id.
    pub datapath_id: u64,
    /// Number of packet buffers.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// Capability bitmap (version-specific semantics preserved verbatim).
    pub capabilities: u32,
    /// Supported-actions bitmap (1.0 only; zero for 1.3).
    pub actions: u32,
    /// Port inventory (carried in the 1.0 features reply; retrieved via a
    /// PortDesc multipart exchange in 1.3 — the codec leaves this empty).
    pub ports: Vec<PortDesc>,
}

/// Per-flow statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStats {
    /// Table containing the flow.
    pub table_id: u8,
    /// The flow's match.
    pub m: FlowMatch,
    /// Priority.
    pub priority: u16,
    /// Cookie.
    pub cookie: u64,
    /// Seconds alive.
    pub duration_sec: u32,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
}

/// Per-port statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortStats {
    /// Port number.
    pub port_no: u16,
    /// Packets received.
    pub rx_packets: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Receive drops.
    pub rx_dropped: u64,
    /// Transmit drops.
    pub tx_dropped: u64,
}

/// Multipart/stats request bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsRequest {
    /// Switch description.
    Desc,
    /// Flows matching a filter in a table (`0xff` = all tables).
    Flow {
        /// Table filter.
        table_id: u8,
        /// Match filter (wildcard-subsumption).
        m: FlowMatch,
    },
    /// Stats for one port (`port_no::NONE` = all).
    Port {
        /// Port filter.
        port_no: u16,
    },
    /// Port descriptions (1.3's replacement for ports-in-features).
    PortDesc,
    /// Aggregate packet/byte/flow counts.
    Aggregate {
        /// Table filter.
        table_id: u8,
        /// Match filter.
        m: FlowMatch,
    },
}

/// Multipart/stats reply bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsReply {
    /// Switch description strings.
    Desc {
        /// Manufacturer + software description.
        description: String,
    },
    /// Flow statistics.
    Flow(Vec<FlowStats>),
    /// Port statistics.
    Port(Vec<PortStats>),
    /// Port descriptions.
    PortDesc(Vec<PortDesc>),
    /// Aggregate counters.
    Aggregate {
        /// Total packets.
        packet_count: u64,
        /// Total bytes.
        byte_count: u64,
        /// Matching flow count.
        flow_count: u32,
    },
}

/// A version-independent OpenFlow message. The [`crate::v10`] and
/// [`crate::v13`] codecs translate this to/from wire bytes; combinations a
/// version cannot express fail to encode with a descriptive error.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Version negotiation.
    Hello,
    /// Protocol error report.
    Error {
        /// Error type (version-specific namespace).
        err_type: u16,
        /// Error code.
        code: u16,
        /// Offending data.
        data: Bytes,
    },
    /// Liveness probe.
    EchoRequest(Bytes),
    /// Liveness response.
    EchoReply(Bytes),
    /// Ask for switch features.
    FeaturesRequest,
    /// Switch features.
    FeaturesReply(SwitchFeatures),
    /// Packet delivered to the controller.
    PacketIn {
        /// Buffer id if the switch buffered the packet.
        buffer_id: Option<u32>,
        /// Original frame length.
        total_len: u16,
        /// Ingress port.
        in_port: u16,
        /// Why it was sent.
        reason: PacketInReason,
        /// Table that triggered it (0 in 1.0).
        table_id: u8,
        /// Frame bytes (possibly truncated to `miss_send_len`).
        data: Bytes,
    },
    /// Controller-sourced packet.
    PacketOut {
        /// Buffer to release, if any.
        buffer_id: Option<u32>,
        /// Nominal ingress port for action processing.
        in_port: u16,
        /// Actions to apply.
        actions: Vec<Action>,
        /// Frame bytes (ignored when `buffer_id` is set).
        data: Bytes,
    },
    /// Flow-table modification.
    FlowMod(FlowMod),
    /// Flow expiry/deletion notification.
    FlowRemoved {
        /// The removed flow's match.
        m: FlowMatch,
        /// Cookie.
        cookie: u64,
        /// Priority.
        priority: u16,
        /// Why.
        reason: FlowRemovedReason,
        /// Seconds the flow lived.
        duration_sec: u32,
        /// Packets matched over its lifetime.
        packet_count: u64,
        /// Bytes matched over its lifetime.
        byte_count: u64,
    },
    /// Port add/remove/change notification.
    PortStatus {
        /// Why.
        reason: PortReason,
        /// Current description.
        desc: PortDesc,
    },
    /// Port configuration change.
    PortMod {
        /// Target port.
        port_no: u16,
        /// Its hardware address (sanity check).
        hw_addr: MacAddr,
        /// Administratively bring the port down/up.
        down: bool,
    },
    /// Statistics/multipart request.
    StatsRequest(StatsRequest),
    /// Statistics/multipart reply.
    StatsReply(StatsReply),
    /// Barrier request.
    BarrierRequest,
    /// Barrier reply.
    BarrierReply,
    /// Ask for switch config.
    GetConfigRequest,
    /// Switch config.
    GetConfigReply {
        /// Bytes of each missed packet sent to the controller.
        miss_send_len: u16,
    },
    /// Set switch config.
    SetConfig {
        /// Bytes of each missed packet to send to the controller.
        miss_send_len: u16,
    },
}

/// The protocol versions this crate implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Version {
    /// OpenFlow 1.0 (wire 0x01).
    V1_0,
    /// OpenFlow 1.3 (wire 0x04).
    V1_3,
}

impl Version {
    /// The wire version byte.
    pub fn wire(self) -> u8 {
        match self {
            Version::V1_0 => 0x01,
            Version::V1_3 => 0x04,
        }
    }

    /// From a wire version byte.
    pub fn from_wire(b: u8) -> Option<Version> {
        match b {
            0x01 => Some(Version::V1_0),
            0x04 => Some(Version::V1_3),
            _ => None,
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Version::V1_0 => write!(f, "OpenFlow 1.0"),
            Version::V1_3 => write!(f, "OpenFlow 1.3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_packet::build_tcp_syn;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn ssh_pkt() -> PacketSummary {
        let f = build_tcp_syn(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            40000,
            22,
        );
        PacketSummary::parse(&f).unwrap()
    }

    #[test]
    fn prefix_contains() {
        let p = Ipv4Prefix::parse("10.0.0.0/8").unwrap();
        assert!(p.contains(ip("10.255.1.2")));
        assert!(!p.contains(ip("11.0.0.1")));
        let any = Ipv4Prefix::parse("0.0.0.0/0").unwrap();
        assert!(any.contains(ip("1.2.3.4")));
        let host = Ipv4Prefix::parse("10.0.0.1").unwrap();
        assert_eq!(host.prefix_len, 32);
        assert!(host.contains(ip("10.0.0.1")));
        assert!(!host.contains(ip("10.0.0.2")));
        assert!(Ipv4Prefix::parse("10.0.0.0/33").is_none());
        assert!(Ipv4Prefix::parse("garbage").is_none());
    }

    #[test]
    fn prefix_display_roundtrip() {
        for s in ["10.0.0.1", "10.0.0.0/8", "0.0.0.0/0"] {
            assert_eq!(Ipv4Prefix::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(FlowMatch::any().matches(&ssh_pkt(), 1));
        assert_eq!(FlowMatch::any().specificity(), 0);
    }

    #[test]
    fn field_matching() {
        let pkt = ssh_pkt();
        let mut m = FlowMatch {
            tp_dst: Some(22),
            ..Default::default()
        };
        assert!(m.matches(&pkt, 1));
        m.tp_dst = Some(23);
        assert!(!m.matches(&pkt, 1));
        let m = FlowMatch {
            in_port: Some(3),
            ..Default::default()
        };
        assert!(m.matches(&pkt, 3));
        assert!(!m.matches(&pkt, 4));
        let m = FlowMatch {
            nw_dst: Some(Ipv4Prefix::parse("10.0.0.0/24").unwrap()),
            ..Default::default()
        };
        assert!(m.matches(&pkt, 1));
        let m = FlowMatch {
            nw_dst: Some(Ipv4Prefix::parse("10.9.0.0/24").unwrap()),
            ..Default::default()
        };
        assert!(!m.matches(&pkt, 1));
    }

    #[test]
    fn l3_match_requires_l3_packet() {
        // An ARP-less match on nw_proto must not match a packet without it.
        let m = FlowMatch {
            nw_tos: Some(0x10),
            ..Default::default()
        };
        let pkt = PacketSummary {
            dl_type: 0x88cc,
            ..Default::default()
        }; // LLDP
        assert!(!m.matches(&pkt, 1));
    }

    #[test]
    fn exact_match_matches_only_itself() {
        let pkt = ssh_pkt();
        let m = FlowMatch::exact(&pkt, 7);
        assert!(m.matches(&pkt, 7));
        assert!(!m.matches(&pkt, 8));
        let mut other = pkt;
        other.tp_src = Some(40001);
        assert!(!m.matches(&other, 7));
        assert_eq!(m.specificity(), 10); // vlan fields absent for untagged
    }

    #[test]
    fn subsumption() {
        let wide = FlowMatch {
            tp_dst: Some(22),
            ..Default::default()
        };
        let narrow = FlowMatch::exact(&ssh_pkt(), 1);
        assert!(FlowMatch::any().subsumes(&wide));
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(wide.subsumes(&wide));
        let p8 = FlowMatch {
            nw_dst: Some(Ipv4Prefix::parse("10.0.0.0/8").unwrap()),
            ..Default::default()
        };
        let p24 = FlowMatch {
            nw_dst: Some(Ipv4Prefix::parse("10.0.0.0/24").unwrap()),
            ..Default::default()
        };
        assert!(p8.subsumes(&p24));
        assert!(!p24.subsumes(&p8));
    }

    #[test]
    fn version_bytes() {
        assert_eq!(Version::V1_0.wire(), 1);
        assert_eq!(Version::V1_3.wire(), 4);
        assert_eq!(Version::from_wire(4), Some(Version::V1_3));
        assert_eq!(Version::from_wire(9), None);
    }
}
