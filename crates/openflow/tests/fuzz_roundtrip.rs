//! Fuzz-style codec hardening (extends E17): seeded random messages must
//! survive encode→decode→encode with byte-identical output on both wire
//! versions, and *every* truncation or single-byte corruption of a valid
//! frame must come back as a `CodecError` — never a panic, never an
//! out-of-bounds read. The generator is a plain splitmix64 stream, so any
//! failure replays from the seed in the assertion message.

use bytes::Bytes;
use yanc_openflow::{
    decode, encode, Action, FlowMatch, FlowMod, FrameCodec, Ipv4Prefix, Message, RawFrame, Version,
    HEADER_LEN,
};
use yanc_packet::MacAddr;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self) -> bool {
        self.next() % 2 == 0
    }

    fn mac(&mut self) -> MacAddr {
        let v = self.next().to_be_bytes();
        MacAddr([v[0], v[1], v[2], v[3], v[4], v[5]])
    }
}

/// A match valid under both 1.0 semantics and 1.3 OXM prerequisites:
/// network fields only atop IPv4, transport fields only atop TCP/UDP.
fn gen_match(rng: &mut Rng) -> FlowMatch {
    let mut m = FlowMatch::default();
    if rng.chance() {
        m.in_port = Some(1 + rng.below(999) as u16);
    }
    if rng.chance() {
        m.dl_src = Some(rng.mac());
    }
    if rng.chance() {
        m.dl_dst = Some(rng.mac());
    }
    if rng.chance() {
        m.dl_vlan = Some(rng.below(4095) as u16);
        if rng.chance() {
            m.dl_vlan_pcp = Some(rng.below(8) as u8);
        }
    }
    if rng.chance() {
        m.dl_type = Some(0x0800);
        if rng.chance() {
            m.nw_src = Some(Ipv4Prefix {
                addr: (rng.next() as u32 & 0xffff_ff00).into(),
                prefix_len: 24,
            });
        }
        if rng.chance() {
            m.nw_tos = Some((rng.below(64) as u8) << 2);
        }
        if rng.chance() {
            m.nw_proto = Some(if rng.chance() { 6 } else { 17 });
            if rng.chance() {
                m.tp_dst = Some(rng.next() as u16);
            }
            if rng.chance() {
                m.tp_src = Some(rng.next() as u16);
            }
        }
    }
    m
}

fn gen_actions(rng: &mut Rng) -> Vec<Action> {
    (0..rng.below(4))
        .map(|_| match rng.below(6) {
            0 => Action::out(1 + rng.below(99) as u16),
            1 => Action::SetVlanVid(rng.below(4095) as u16),
            2 => Action::StripVlan,
            3 => Action::SetDlSrc(rng.mac()),
            4 => Action::SetNwDst((rng.next() as u32).into()),
            _ => Action::SetTpDst(rng.next() as u16),
        })
        .collect()
}

fn gen_message(rng: &mut Rng) -> Message {
    match rng.below(8) {
        0 => Message::Hello,
        1 => Message::EchoRequest(Bytes::from(
            (0..rng.below(16))
                .map(|_| rng.next() as u8)
                .collect::<Vec<_>>(),
        )),
        2 => Message::FeaturesRequest,
        3 => Message::BarrierRequest,
        4 | 5 => Message::FlowMod(FlowMod::add(
            gen_match(rng),
            rng.next() as u16,
            gen_actions(rng),
        )),
        6 => Message::PacketOut {
            buffer_id: None,
            in_port: 1 + rng.below(99) as u16,
            actions: gen_actions(rng),
            data: Bytes::from(
                (0..rng.below(64))
                    .map(|_| rng.next() as u8)
                    .collect::<Vec<_>>(),
            ),
        },
        _ => Message::EchoReply(Bytes::new()),
    }
}

fn reassemble(bytes: &[u8]) -> RawFrame {
    let mut c = FrameCodec::new();
    c.feed(bytes);
    c.next_frame().unwrap().unwrap()
}

#[test]
fn encode_decode_encode_is_byte_identical() {
    for seed in 0..400u64 {
        let mut rng = Rng::new(seed);
        let msg = gen_message(&mut rng);
        for v in [Version::V1_0, Version::V1_3] {
            let xid = rng.next() as u32;
            let first = encode(v, &msg, xid)
                .unwrap_or_else(|e| panic!("seed {seed} {v:?}: encode failed for {msg:?}: {e}"));
            let decoded = decode(&reassemble(&first))
                .unwrap_or_else(|e| panic!("seed {seed} {v:?}: decode failed: {e}"));
            let second = encode(v, &decoded, xid).unwrap();
            assert_eq!(
                first, second,
                "seed {seed} {v:?}: re-encode diverged for {msg:?} -> {decoded:?}"
            );
        }
    }
}

#[test]
fn truncations_error_but_never_panic() {
    for seed in 0..150u64 {
        let mut rng = Rng::new(seed ^ 0x00ff_00ff);
        let msg = gen_message(&mut rng);
        for v in [Version::V1_0, Version::V1_3] {
            let bytes = encode(v, &msg, 7).unwrap();
            let whole = reassemble(&bytes);
            // Every proper prefix of the body: decode must return, not panic.
            for cut in 0..whole.body.len() {
                let hacked = RawFrame {
                    body: whole.body.slice(0..cut),
                    ..whole.clone()
                };
                let _ = decode(&hacked); // Err is expected; panics are bugs
            }
            // A partial frame never comes out of the reassembler at all.
            for cut in 0..bytes.len() {
                let mut c = FrameCodec::new();
                c.feed(&bytes[..cut]);
                match c.next_frame() {
                    Ok(None) => {}
                    Ok(Some(f)) => panic!("seed {seed}: partial frame yielded {f:?}"),
                    Err(_) => {} // corrupt-length rejection is fine
                }
            }
        }
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    for seed in 0..150u64 {
        let mut rng = Rng::new(seed ^ 0xfeed);
        let msg = gen_message(&mut rng);
        for v in [Version::V1_0, Version::V1_3] {
            let bytes = encode(v, &msg, 9).unwrap();
            let whole = reassemble(&bytes);
            for _ in 0..16 {
                let mut body = whole.body.to_vec();
                if body.is_empty() {
                    break;
                }
                let i = rng.below(body.len());
                body[i] ^= 1 << rng.below(8);
                let hacked = RawFrame {
                    body: Bytes::from(body),
                    ..whole.clone()
                };
                let _ = decode(&hacked); // any Result is acceptable
            }
            // Corrupting the header length field must be caught by the
            // reassembler (bad length) or starve it (Ok(None)) — only the
            // intact length may yield a frame, and HEADER_LEN is the floor.
            let mut framed = bytes.to_vec();
            framed[2] = 0;
            framed[3] = rng.below(HEADER_LEN) as u8;
            let mut c = FrameCodec::new();
            c.feed(&framed);
            assert!(
                c.next_frame().is_err(),
                "seed {seed}: sub-header length accepted"
            );
        }
    }
}
