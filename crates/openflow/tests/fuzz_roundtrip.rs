//! Fuzz-style codec hardening (extends E17): seeded random messages must
//! survive encode→decode→encode with byte-identical output on both wire
//! versions, and *every* truncation or single-byte corruption of a valid
//! frame must come back as a `CodecError` — never a panic, never an
//! out-of-bounds read. The generator is a plain splitmix64 stream, so any
//! failure replays from the seed in the assertion message.

use bytes::Bytes;
use yanc_openflow::{
    decode, encode, multipart, Action, FlowMatch, FlowMod, FlowStats, FrameCodec, Ipv4Prefix,
    Message, PortDesc, PortStats, RawFrame, Reassembler, StatsReply, Version, HEADER_LEN,
};
use yanc_packet::MacAddr;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self) -> bool {
        self.next() % 2 == 0
    }

    fn mac(&mut self) -> MacAddr {
        let v = self.next().to_be_bytes();
        MacAddr([v[0], v[1], v[2], v[3], v[4], v[5]])
    }
}

/// A match valid under both 1.0 semantics and 1.3 OXM prerequisites:
/// network fields only atop IPv4, transport fields only atop TCP/UDP.
fn gen_match(rng: &mut Rng) -> FlowMatch {
    let mut m = FlowMatch::default();
    if rng.chance() {
        m.in_port = Some(1 + rng.below(999) as u16);
    }
    if rng.chance() {
        m.dl_src = Some(rng.mac());
    }
    if rng.chance() {
        m.dl_dst = Some(rng.mac());
    }
    if rng.chance() {
        m.dl_vlan = Some(rng.below(4095) as u16);
        if rng.chance() {
            m.dl_vlan_pcp = Some(rng.below(8) as u8);
        }
    }
    if rng.chance() {
        m.dl_type = Some(0x0800);
        if rng.chance() {
            m.nw_src = Some(Ipv4Prefix {
                addr: (rng.next() as u32 & 0xffff_ff00).into(),
                prefix_len: 24,
            });
        }
        if rng.chance() {
            m.nw_tos = Some((rng.below(64) as u8) << 2);
        }
        if rng.chance() {
            m.nw_proto = Some(if rng.chance() { 6 } else { 17 });
            if rng.chance() {
                m.tp_dst = Some(rng.next() as u16);
            }
            if rng.chance() {
                m.tp_src = Some(rng.next() as u16);
            }
        }
    }
    m
}

fn gen_actions(rng: &mut Rng) -> Vec<Action> {
    (0..rng.below(4))
        .map(|_| match rng.below(6) {
            0 => Action::out(1 + rng.below(99) as u16),
            1 => Action::SetVlanVid(rng.below(4095) as u16),
            2 => Action::StripVlan,
            3 => Action::SetDlSrc(rng.mac()),
            4 => Action::SetNwDst((rng.next() as u32).into()),
            _ => Action::SetTpDst(rng.next() as u16),
        })
        .collect()
}

fn gen_message(rng: &mut Rng) -> Message {
    match rng.below(8) {
        0 => Message::Hello,
        1 => Message::EchoRequest(Bytes::from(
            (0..rng.below(16))
                .map(|_| rng.next() as u8)
                .collect::<Vec<_>>(),
        )),
        2 => Message::FeaturesRequest,
        3 => Message::BarrierRequest,
        4 | 5 => Message::FlowMod(FlowMod::add(
            gen_match(rng),
            rng.next() as u16,
            gen_actions(rng),
        )),
        6 => Message::PacketOut {
            buffer_id: None,
            in_port: 1 + rng.below(99) as u16,
            actions: gen_actions(rng),
            data: Bytes::from(
                (0..rng.below(64))
                    .map(|_| rng.next() as u8)
                    .collect::<Vec<_>>(),
            ),
        },
        _ => Message::EchoReply(Bytes::new()),
    }
}

fn reassemble(bytes: &[u8]) -> RawFrame {
    let mut c = FrameCodec::new();
    c.feed(bytes);
    c.next_frame().unwrap().unwrap()
}

#[test]
fn encode_decode_encode_is_byte_identical() {
    for seed in 0..400u64 {
        let mut rng = Rng::new(seed);
        let msg = gen_message(&mut rng);
        for v in [Version::V1_0, Version::V1_3] {
            let xid = rng.next() as u32;
            let first = encode(v, &msg, xid)
                .unwrap_or_else(|e| panic!("seed {seed} {v:?}: encode failed for {msg:?}: {e}"));
            let decoded = decode(&reassemble(&first))
                .unwrap_or_else(|e| panic!("seed {seed} {v:?}: decode failed: {e}"));
            let second = encode(v, &decoded, xid).unwrap();
            assert_eq!(
                first, second,
                "seed {seed} {v:?}: re-encode diverged for {msg:?} -> {decoded:?}"
            );
        }
    }
}

#[test]
fn truncations_error_but_never_panic() {
    for seed in 0..150u64 {
        let mut rng = Rng::new(seed ^ 0x00ff_00ff);
        let msg = gen_message(&mut rng);
        for v in [Version::V1_0, Version::V1_3] {
            let bytes = encode(v, &msg, 7).unwrap();
            let whole = reassemble(&bytes);
            // Every proper prefix of the body: decode must return, not panic.
            for cut in 0..whole.body.len() {
                let hacked = RawFrame {
                    body: whole.body.slice(0..cut),
                    ..whole.clone()
                };
                let _ = decode(&hacked); // Err is expected; panics are bugs
            }
            // A partial frame never comes out of the reassembler at all.
            for cut in 0..bytes.len() {
                let mut c = FrameCodec::new();
                c.feed(&bytes[..cut]);
                match c.next_frame() {
                    Ok(None) => {}
                    Ok(Some(f)) => panic!("seed {seed}: partial frame yielded {f:?}"),
                    Err(_) => {} // corrupt-length rejection is fine
                }
            }
        }
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    for seed in 0..150u64 {
        let mut rng = Rng::new(seed ^ 0xfeed);
        let msg = gen_message(&mut rng);
        for v in [Version::V1_0, Version::V1_3] {
            let bytes = encode(v, &msg, 9).unwrap();
            let whole = reassemble(&bytes);
            for _ in 0..16 {
                let mut body = whole.body.to_vec();
                if body.is_empty() {
                    break;
                }
                let i = rng.below(body.len());
                body[i] ^= 1 << rng.below(8);
                let hacked = RawFrame {
                    body: Bytes::from(body),
                    ..whole.clone()
                };
                let _ = decode(&hacked); // any Result is acceptable
            }
            // Corrupting the header length field must be caught by the
            // reassembler (bad length) or starve it (Ok(None)) — only the
            // intact length may yield a frame, and HEADER_LEN is the floor.
            let mut framed = bytes.to_vec();
            framed[2] = 0;
            framed[3] = rng.below(HEADER_LEN) as u8;
            let mut c = FrameCodec::new();
            c.feed(&framed);
            assert!(
                c.next_frame().is_err(),
                "seed {seed}: sub-header length accepted"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Multipart segmentation fuzz (tentpole: batched stats streaming).
// ---------------------------------------------------------------------

fn gen_flow_stats(rng: &mut Rng) -> FlowStats {
    FlowStats {
        table_id: rng.below(4) as u8,
        m: gen_match(rng),
        priority: rng.next() as u16,
        cookie: rng.next(),
        duration_sec: rng.next() as u32,
        packet_count: rng.next(),
        byte_count: rng.next(),
    }
}

fn gen_port_stats(rng: &mut Rng) -> PortStats {
    PortStats {
        port_no: 1 + rng.below(999) as u16,
        rx_packets: rng.next(),
        tx_packets: rng.next(),
        rx_bytes: rng.next(),
        tx_bytes: rng.next(),
        rx_dropped: rng.next(),
        tx_dropped: rng.next(),
    }
}

fn gen_port_desc(rng: &mut Rng) -> PortDesc {
    let n = 1 + rng.below(999) as u16;
    PortDesc {
        port_no: n,
        hw_addr: rng.mac(),
        name: format!("eth{n}"),
        config_down: rng.chance(),
        link_down: rng.chance(),
        curr_speed: rng.next() as u32,
        max_speed: rng.next() as u32,
    }
}

/// A pageable stats reply with `n` entries, restricted to what `v` can
/// express (1.0 has no PortDesc multipart).
fn gen_pageable_reply(rng: &mut Rng, v: Version, n: usize) -> StatsReply {
    let kinds = if v == Version::V1_0 { 2 } else { 3 };
    match rng.below(kinds) {
        0 => StatsReply::Flow((0..n).map(|_| gen_flow_stats(rng)).collect()),
        1 => StatsReply::Port((0..n).map(|_| gen_port_stats(rng)).collect()),
        _ => StatsReply::PortDesc((0..n).map(|_| gen_port_desc(rng)).collect()),
    }
}

fn reply_len(r: &StatsReply) -> usize {
    match r {
        StatsReply::Flow(v) => v.len(),
        StatsReply::Port(v) => v.len(),
        StatsReply::PortDesc(v) => v.len(),
        _ => 1,
    }
}

#[test]
fn multipart_split_reassemble_roundtrips() {
    for seed in 0..150u64 {
        let mut rng = Rng::new(seed ^ 0x5eed);
        for v in [Version::V1_0, Version::V1_3] {
            let n = rng.below(40);
            let page = 1 + rng.below(9);
            let original = gen_pageable_reply(&mut rng, v, n);
            let parts = multipart::paginate(&original, page);
            assert_eq!(parts.len(), n.div_ceil(page).max(1), "seed {seed} {v:?}");
            let mut asm = Reassembler::new();
            let mut done = None;
            for (i, p) in parts.iter().enumerate() {
                assert!(done.is_none(), "seed {seed}: reply completed early");
                let bytes = multipart::encode_part(v, &p.reply, p.more, 3).unwrap();
                let frame = reassemble(&bytes);
                assert!(multipart::is_stats_reply(&frame));
                let flags = multipart::part_flags(&frame).unwrap();
                assert_eq!(
                    flags & multipart::REPLY_MORE != 0,
                    i + 1 < parts.len(),
                    "seed {seed} {v:?} part {i}: REPLY_MORE wrong on the wire"
                );
                done = asm.push(multipart::decode_part(&frame).unwrap()).unwrap();
            }
            let got = done.unwrap_or_else(|| panic!("seed {seed} {v:?}: stream never completed"));
            assert_eq!(reply_len(&got), n, "seed {seed} {v:?}");
            assert_eq!(got, original, "seed {seed} {v:?}: reassembly diverged");
            assert!(!asm.in_flight());
        }
    }
}

#[test]
fn multipart_truncated_final_part_errors_never_panics() {
    for seed in 0..60u64 {
        let mut rng = Rng::new(seed ^ 0x70f0);
        for v in [Version::V1_0, Version::V1_3] {
            let n = 3 + rng.below(6);
            let original = gen_pageable_reply(&mut rng, v, n);
            let parts = multipart::paginate(&original, 2);
            let last = parts.last().unwrap();
            let bytes = multipart::encode_part(v, &last.reply, last.more, 5).unwrap();
            let whole = reassemble(&bytes);
            // Every proper prefix of the final part's body: decode_part
            // must return (usually Err), never panic or index OOB.
            for cut in 0..whole.body.len() {
                let hacked = RawFrame {
                    body: whole.body.slice(0..cut),
                    ..whole.clone()
                };
                let _ = multipart::decode_part(&hacked);
                let _ = multipart::part_flags(&hacked);
            }
        }
    }
}

#[test]
fn multipart_flag_mismatch_is_an_error_never_a_panic() {
    for seed in 0..60u64 {
        let mut rng = Rng::new(seed ^ 0xf1a6);
        for v in [Version::V1_0, Version::V1_3] {
            // A continuation whose follow-up switches type mid-stream.
            let mut asm = Reassembler::new();
            let first = StatsReply::Flow(vec![gen_flow_stats(&mut rng)]);
            let second = StatsReply::Port(vec![gen_port_stats(&mut rng)]);
            let b1 = multipart::encode_part(v, &first, true, 8).unwrap();
            let b2 = multipart::encode_part(v, &second, false, 8).unwrap();
            assert!(asm
                .push(multipart::decode_part(&reassemble(&b1)).unwrap())
                .unwrap()
                .is_none());
            let err = asm
                .push(multipart::decode_part(&reassemble(&b2)).unwrap())
                .unwrap_err();
            assert!(err.reason.contains("mid-stream"), "seed {seed}: {err}");

            // REPLY_MORE forged onto an unpageable reply: the flag survives
            // the wire and the reassembler rejects it typed, not by panic.
            let agg = StatsReply::Aggregate {
                packet_count: rng.next(),
                byte_count: rng.next(),
                flow_count: rng.next() as u32,
            };
            let forged = multipart::encode_part(v, &agg, true, 9).unwrap();
            let part = multipart::decode_part(&reassemble(&forged)).unwrap();
            assert!(part.more);
            let err = Reassembler::new().push(part).unwrap_err();
            assert!(err.reason.contains("unpageable"), "seed {seed}: {err}");

            // Random bit-flips in the flags word never panic anything.
            let bytes = multipart::encode_part(v, &first, rng.chance(), 10).unwrap();
            let mut buf = bytes.to_vec();
            buf[HEADER_LEN + 2 + rng.below(2)] ^= 1 << rng.below(8);
            let frame = reassemble(&buf);
            if let Ok(p) = multipart::decode_part(&frame) {
                let _ = Reassembler::new().push(p);
            }
        }
    }
}
