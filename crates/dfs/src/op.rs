//! Synchronization operations exchanged between controller nodes.
//!
//! The replicator turns local file-system activity into [`SyncOp`]s; the
//! cluster routes them (per backend policy) and replicas apply them.
//! Ordering is last-writer-wins on a Lamport timestamp `(counter, node)`,
//! which every backend shares — they differ only in *routing* (who sees a
//! write when), which is exactly the trade-off space §6 of the paper
//! gestures at.

use yanc_vfs::VPath;

/// Lamport timestamp: `(counter, node id)` — totally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp {
    /// Logical counter.
    pub counter: u64,
    /// Tie-breaking node id.
    pub node: usize,
}

/// What changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Create/replace a regular file with these contents.
    PutFile(Vec<u8>),
    /// Ensure a directory exists.
    MkDir,
    /// Create/replace a symlink with this target.
    PutSymlink(String),
    /// Remove whatever is at the path (recursively for directories).
    Remove,
}

/// One replicated mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncOp {
    /// Path the op applies to.
    pub path: VPath,
    /// The mutation.
    pub kind: OpKind,
    /// Origin timestamp for LWW ordering.
    pub stamp: Stamp,
}

/// FNV-1a content hash used for echo suppression (applying a remote op
/// re-raises local notify events; the hash lets the replicator recognize
/// and drop them).
pub fn content_hash(kind: &OpKind) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match kind {
        OpKind::PutFile(data) => {
            eat(b"F");
            eat(data);
        }
        OpKind::MkDir => eat(b"D"),
        OpKind::PutSymlink(t) => {
            eat(b"L");
            eat(t.as_bytes());
        }
        OpKind::Remove => eat(b"R"),
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_totally_ordered() {
        let a = Stamp {
            counter: 1,
            node: 2,
        };
        let b = Stamp {
            counter: 2,
            node: 0,
        };
        let c = Stamp {
            counter: 1,
            node: 3,
        };
        assert!(a < b);
        assert!(a < c); // counter ties broken by node
        let mut v = vec![b, c, a];
        v.sort();
        assert_eq!(v, vec![a, c, b]);
    }

    #[test]
    fn hashes_distinguish_kinds_and_content() {
        let f1 = OpKind::PutFile(b"x".to_vec());
        let f2 = OpKind::PutFile(b"y".to_vec());
        assert_ne!(content_hash(&f1), content_hash(&f2));
        assert_eq!(
            content_hash(&f1),
            content_hash(&OpKind::PutFile(b"x".to_vec()))
        );
        assert_ne!(content_hash(&OpKind::MkDir), content_hash(&OpKind::Remove));
        assert_ne!(
            content_hash(&OpKind::PutSymlink("a".into())),
            content_hash(&OpKind::PutSymlink("b".into()))
        );
    }
}
