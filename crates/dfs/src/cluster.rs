//! The distributed controller (paper §6): "you can layer any number of
//! distributed file systems on top of the yanc file system and arrive at a
//! distributed SDN controller. Each distributed file system has a different
//! implementation (centralized, peer-to-peer with a DHT, etc.) with varying
//! trade-offs."
//!
//! [`Cluster`] replicates the `/net` subtree across [`Node`]s through one
//! of three interchangeable backends:
//!
//! * [`Backend::Central`] — NFS-like: every write funnels through a
//!   primary, which re-distributes it (2 network hops for non-primary
//!   writers; the primary is a hotspot),
//! * [`Backend::Dht`] — peer-to-peer: each path hashes to an owner that
//!   orders and re-distributes writes (load spreads; still 2 hops),
//! * [`Backend::Policy`] — WheelFS-like: the consistency class is read
//!   from the `user.consistency` xattr on the nearest ancestor —
//!   `eventual` broadcasts directly (1 hop, LWW), anything else behaves
//!   like `Central` (the paper plans exactly this use of xattrs, §5.1).
//!
//! Propagation runs on a virtual clock so visibility latency is measurable
//! and deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use yanc_vfs::{Credentials, Filesystem, Mode, VPath, VfsResult};

use crate::node::{Node, NodeStats};
use crate::op::SyncOp;

/// Replication strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// All writes ordered by one primary node.
    Central {
        /// The primary's node id.
        primary: usize,
    },
    /// Writes ordered by a per-path owner (consistent hashing).
    Dht,
    /// Per-subtree policy from the `user.consistency` xattr.
    Policy,
}

/// Aggregate cluster statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClusterStats {
    /// Total op deliveries (network messages).
    pub messages: u64,
    /// Ops routed through an ordering node (primary/owner).
    pub forwarded: u64,
}

/// Atomic mirror of [`ClusterStats`] plus the last observed convergence
/// lag, refreshed after every [`Cluster::pump`] for proc rendering.
#[derive(Debug, Default)]
struct SharedClusterStats {
    messages: AtomicU64,
    forwarded: AtomicU64,
    last_lag_us: AtomicU64,
}

struct InFlight {
    at_us: u64,
    seq: u64,
    dst: usize,
    op: SyncOp,
    /// Whether the destination should re-distribute after applying
    /// (primary/owner hop).
    redistribute: bool,
    src: usize,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.at_us, self.seq) == (other.at_us, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// A set of controller nodes replicating one `/net` subtree.
pub struct Cluster {
    /// The nodes. `nodes[i].fs` is node *i*'s local view of the network.
    pub nodes: Vec<Node>,
    backend: Backend,
    /// One-way inter-node latency in microseconds.
    pub latency_us: u64,
    root: VPath,
    queue: BinaryHeap<Reverse<InFlight>>,
    now_us: u64,
    seq: u64,
    /// Statistics.
    pub stats: ClusterStats,
    /// Nodes currently partitioned/crashed (deliveries dropped).
    down: Vec<bool>,
    shared: Arc<SharedClusterStats>,
}

impl Cluster {
    /// Build a cluster of `n` fresh nodes replicating `root`.
    pub fn new(n: usize, backend: Backend, latency_us: u64, root: &str) -> Self {
        let nodes = (0..n)
            .map(|id| {
                let fs = Arc::new(Filesystem::new());
                fs.mkdir_all(root, Mode::DIR_DEFAULT, &Credentials::root())
                    .unwrap();
                Node::new(id, fs, root)
            })
            .collect();
        Cluster {
            nodes,
            backend,
            latency_us,
            root: VPath::new(root),
            queue: BinaryHeap::new(),
            now_us: 0,
            seq: 0,
            stats: ClusterStats::default(),
            down: vec![false; n],
            shared: Arc::new(SharedClusterStats::default()),
        }
    }

    /// Build from existing per-node filesystems (so runtimes can be
    /// attached to them beforehand).
    pub fn from_filesystems(
        fss: Vec<Arc<Filesystem>>,
        backend: Backend,
        latency_us: u64,
        root: &str,
    ) -> Self {
        let n = fss.len();
        let nodes = fss
            .into_iter()
            .enumerate()
            .map(|(id, fs)| {
                fs.mkdir_all(root, Mode::DIR_DEFAULT, &Credentials::root())
                    .unwrap();
                Node::new(id, fs, root)
            })
            .collect();
        Cluster {
            nodes,
            backend,
            latency_us,
            root: VPath::new(root),
            queue: BinaryHeap::new(),
            now_us: 0,
            seq: 0,
            stats: ClusterStats::default(),
            down: vec![false; n],
            shared: Arc::new(SharedClusterStats::default()),
        }
    }

    /// Mount `<root>/.proc` on every node's replica and expose each node's
    /// replication totals plus cluster aggregates beneath
    /// `<root>/.proc/dfs`. The proc trees are node-local: refresh writes
    /// raise no notify events, so they are never replicated. Idempotent.
    pub fn enable_introspection(&self) -> VfsResult<()> {
        let proc = self.root.join(".proc");
        let base = proc.join("dfs");
        for node in &self.nodes {
            node.fs.mount_proc(proc.as_str())?;
            let id = node.id;
            node.fs
                .proc_file(base.join("node_id").as_str(), move || format!("{id}\n"))?;
            type NodeGetter = fn(&NodeStats) -> &AtomicU64;
            let per_node: [(&str, NodeGetter); 3] = [
                ("ops_out", |s| &s.ops_out),
                ("ops_in", |s| &s.ops_in),
                ("lww_drops", |s| &s.lww_drops),
            ];
            for (file, get) in per_node {
                let st = node.stats();
                node.fs.proc_file(base.join(file).as_str(), move || {
                    format!("{}\n", get(&st).load(Ordering::Relaxed))
                })?;
            }
            type ClusterGetter = fn(&SharedClusterStats) -> &AtomicU64;
            let aggregates: [(&str, ClusterGetter); 3] = [
                ("cluster/messages", |s| &s.messages),
                ("cluster/forwarded", |s| &s.forwarded),
                ("cluster/convergence_lag_us", |s| &s.last_lag_us),
            ];
            for (file, get) in aggregates {
                let sh = self.shared.clone();
                node.fs.proc_file(base.join_path(file).as_str(), move || {
                    format!("{}\n", get(&sh).load(Ordering::Relaxed))
                })?;
            }
        }
        Ok(())
    }

    fn sync_shared(&self) {
        self.shared
            .messages
            .store(self.stats.messages, Ordering::Relaxed);
        self.shared
            .forwarded
            .store(self.stats.forwarded, Ordering::Relaxed);
    }

    /// Virtual time.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Mark a node down (crash / partition): deliveries to and from it are
    /// dropped until [`Cluster::set_up`].
    pub fn set_down(&mut self, node: usize) {
        self.down[node] = true;
    }

    /// Bring a node back. (It does not resynchronize history — a real DFS
    /// would; tests cover the divergence.)
    pub fn set_up(&mut self, node: usize) {
        self.down[node] = false;
    }

    fn owner_of(&self, path: &VPath) -> usize {
        // FNV over the path string.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.as_str().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.nodes.len() as u64) as usize
    }

    /// Consistency class for a path on the originating node (Policy mode):
    /// nearest-ancestor `user.consistency` xattr, default `primary`.
    fn consistency_of(&self, node: usize, path: &VPath) -> String {
        let fs = &self.nodes[node].fs;
        let mut cur = path.clone();
        loop {
            if let Ok(v) = fs.get_xattr(cur.as_str(), "user.consistency", &Credentials::root()) {
                return String::from_utf8_lossy(&v).into_owned();
            }
            if cur.is_root() || cur == self.root {
                return "primary".to_string();
            }
            cur = cur.parent();
        }
    }

    fn enqueue(&mut self, delay: u64, dst: usize, op: SyncOp, redistribute: bool, src: usize) {
        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            at_us: self.now_us + delay,
            seq: self.seq,
            dst,
            op,
            redistribute,
            src,
        }));
    }

    /// Route a freshly-collected local op from `src`.
    fn route(&mut self, src: usize, op: SyncOp) {
        let n = self.nodes.len();
        match self.backend {
            Backend::Central { primary } => {
                if src == primary {
                    for dst in (0..n).filter(|d| *d != src) {
                        self.enqueue(self.latency_us, dst, op.clone(), false, src);
                    }
                } else {
                    self.stats.forwarded += 1;
                    self.enqueue(self.latency_us, primary, op, true, src);
                }
            }
            Backend::Dht => {
                let owner = self.owner_of(&op.path);
                if src == owner {
                    for dst in (0..n).filter(|d| *d != src) {
                        self.enqueue(self.latency_us, dst, op.clone(), false, src);
                    }
                } else {
                    self.stats.forwarded += 1;
                    self.enqueue(self.latency_us, owner, op, true, src);
                }
            }
            Backend::Policy => {
                let class = self.consistency_of(src, &op.path);
                if class == "eventual" {
                    for dst in (0..n).filter(|d| *d != src) {
                        self.enqueue(self.latency_us, dst, op.clone(), false, src);
                    }
                } else {
                    // primary-class: node 0 orders.
                    if src == 0 {
                        for dst in 1..n {
                            self.enqueue(self.latency_us, dst, op.clone(), false, src);
                        }
                    } else {
                        self.stats.forwarded += 1;
                        self.enqueue(self.latency_us, 0, op, true, src);
                    }
                }
            }
        }
    }

    /// Collect local ops from every node and deliver everything in flight.
    /// Advances virtual time through the deliveries. Returns the number of
    /// messages delivered.
    pub fn pump(&mut self) -> u64 {
        let mut delivered = 0;
        loop {
            // Gather fresh local mutations.
            let mut produced = false;
            for id in 0..self.nodes.len() {
                if self.down[id] {
                    // Drop a down node's outbound ops on the floor (they
                    // stay applied locally — divergence until repair).
                    let _ = self.nodes[id].collect_ops();
                    continue;
                }
                for op in self.nodes[id].collect_ops() {
                    produced = true;
                    self.route(id, op);
                }
            }
            match self.queue.pop() {
                None if !produced => break,
                None => continue,
                Some(Reverse(f)) => {
                    self.now_us = self.now_us.max(f.at_us);
                    if self.down[f.dst] || self.down[f.src] {
                        continue; // partition drops the message
                    }
                    delivered += 1;
                    self.stats.messages += 1;
                    self.nodes[f.dst].apply(&f.op);
                    if f.redistribute {
                        let n = self.nodes.len();
                        let via = f.dst;
                        for dst in (0..n).filter(|d| *d != via && *d != f.src) {
                            self.enqueue(self.latency_us, dst, f.op.clone(), false, via);
                        }
                    }
                }
            }
        }
        self.sync_shared();
        delivered
    }

    /// Write a file on one node and return the virtual time until every
    /// live node can read it — the visibility-latency probe used by the
    /// benchmarks. The lag is also mirrored to
    /// `<root>/.proc/dfs/cluster/convergence_lag_us`.
    pub fn timed_write(&mut self, node: usize, path: &str, data: &[u8]) -> u64 {
        let start = self.now_us;
        self.nodes[node]
            .fs
            .write_file(path, data, &Credentials::root())
            .expect("write on origin");
        self.pump();
        let lag = self.now_us - start;
        self.shared.last_lag_us.store(lag, Ordering::Relaxed);
        lag
    }

    /// Whether all live nodes agree on the contents of `path`.
    pub fn converged(&self, path: &str) -> bool {
        let mut val: Option<Option<Vec<u8>>> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if self.down[i] {
                continue;
            }
            let cur = n.fs.read_file(path, &Credentials::root()).ok();
            match &val {
                None => val = Some(cur),
                Some(v) if *v == cur => {}
                Some(_) => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(c: &Cluster, node: usize, path: &str) -> Option<String> {
        c.nodes[node]
            .fs
            .read_to_string(path, &Credentials::root())
            .ok()
    }

    #[test]
    fn central_replicates_everywhere() {
        let mut c = Cluster::new(3, Backend::Central { primary: 0 }, 100, "/net");
        c.nodes[1]
            .fs
            .write_file("/net/flag", b"on", &Credentials::root())
            .unwrap();
        c.pump();
        for i in 0..3 {
            assert_eq!(read(&c, i, "/net/flag").as_deref(), Some("on"), "node {i}");
        }
        assert!(c.converged("/net/flag"));
        // Non-primary write took 2 hops of latency.
        assert_eq!(c.now_us(), 200);
        assert_eq!(c.stats.forwarded, 1);
    }

    #[test]
    fn primary_write_is_one_hop() {
        let mut c = Cluster::new(3, Backend::Central { primary: 0 }, 100, "/net");
        let t = c.timed_write(0, "/net/flag", b"x");
        assert_eq!(t, 100);
        let t = c.timed_write(2, "/net/flag2", b"y");
        assert_eq!(t, 200);
    }

    #[test]
    fn dht_spreads_ownership() {
        let mut c = Cluster::new(4, Backend::Dht, 50, "/net");
        // Writes to many paths: owners differ, so *some* writes are 1-hop
        // from some nodes — and all converge.
        for i in 0..8 {
            let p = format!("/net/k{i}");
            c.nodes[i % 4]
                .fs
                .write_file(&p, b"v", &Credentials::root())
                .unwrap();
        }
        c.pump();
        for i in 0..8 {
            let p = format!("/net/k{i}");
            assert!(c.converged(&p), "{p}");
            assert_eq!(read(&c, 0, &p).as_deref(), Some("v"));
        }
    }

    #[test]
    fn policy_eventual_is_one_hop_primary_is_two() {
        let mut c = Cluster::new(3, Backend::Policy, 100, "/net");
        // Mark /net/counters as eventual on every node (policy is local).
        for n in &c.nodes {
            n.fs.mkdir_all("/net/counters", Mode::DIR_DEFAULT, &Credentials::root())
                .unwrap();
            n.fs.set_xattr(
                "/net/counters",
                "user.consistency",
                b"eventual",
                &Credentials::root(),
            )
            .unwrap();
        }
        c.pump(); // absorb the mkdir replication
        let t_eventual = c.timed_write(2, "/net/counters/c1", b"9");
        let t_primary = c.timed_write(2, "/net/flows_file", b"f");
        assert_eq!(t_eventual, 100);
        assert_eq!(t_primary, 200);
        assert!(c.converged("/net/counters/c1"));
        assert!(c.converged("/net/flows_file"));
    }

    #[test]
    fn concurrent_writes_converge_lww() {
        let mut c = Cluster::new(3, Backend::Dht, 10, "/net");
        // Two nodes write the same path before any propagation.
        c.nodes[1]
            .fs
            .write_file("/net/x", b"from1", &Credentials::root())
            .unwrap();
        c.nodes[2]
            .fs
            .write_file("/net/x", b"from2", &Credentials::root())
            .unwrap();
        c.pump();
        assert!(c.converged("/net/x"), "all replicas agree after LWW");
    }

    #[test]
    fn partition_diverges_then_heals_forward() {
        let mut c = Cluster::new(3, Backend::Central { primary: 0 }, 10, "/net");
        c.set_down(2);
        c.timed_write(0, "/net/a", b"1");
        assert_eq!(read(&c, 2, "/net/a"), None, "partitioned node missed it");
        c.set_up(2);
        // New writes reach the healed node (no history replay — documented).
        c.timed_write(0, "/net/b", b"2");
        assert_eq!(read(&c, 2, "/net/b").as_deref(), Some("2"));
    }

    #[test]
    fn directory_trees_replicate() {
        let mut c = Cluster::new(2, Backend::Central { primary: 0 }, 10, "/net");
        let creds = Credentials::root();
        c.nodes[1]
            .fs
            .mkdir_all("/net/switches/sw1/flows/f1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        c.nodes[1]
            .fs
            .write_file("/net/switches/sw1/flows/f1/version", b"1", &creds)
            .unwrap();
        c.pump();
        assert_eq!(
            c.nodes[0]
                .fs
                .read_to_string("/net/switches/sw1/flows/f1/version", &creds)
                .unwrap(),
            "1"
        );
        // Delete replicates too.
        c.nodes[0]
            .fs
            .unlink("/net/switches/sw1/flows/f1/version", &creds)
            .unwrap();
        c.pump();
        assert!(c.nodes[1]
            .fs
            .lstat("/net/switches/sw1/flows/f1/version", &creds)
            .is_err());
    }

    #[test]
    fn introspection_exposes_replication_state() {
        let mut c = Cluster::new(2, Backend::Central { primary: 0 }, 10, "/net");
        c.enable_introspection().unwrap();
        c.enable_introspection().unwrap(); // idempotent
        let creds = Credentials::root();
        let lag = c.timed_write(0, "/net/a", b"1");
        assert!(lag > 0);

        let cat = |n: usize, p: &str| {
            c.nodes[n]
                .fs
                .read_to_string(p, &creds)
                .unwrap()
                .trim()
                .to_owned()
        };
        assert_eq!(cat(0, "/net/.proc/dfs/node_id"), "0");
        assert_eq!(cat(1, "/net/.proc/dfs/node_id"), "1");
        // Origin produced at least one op; the replica applied it.
        assert_eq!(
            cat(0, "/net/.proc/dfs/ops_out"),
            c.nodes[0].ops_out.to_string()
        );
        assert_eq!(
            cat(1, "/net/.proc/dfs/ops_in"),
            c.nodes[1].ops_in.to_string()
        );
        assert!(c.nodes[1].ops_in > 0);
        // Cluster aggregates mirror the plain stats, on every node.
        assert_eq!(
            cat(1, "/net/.proc/dfs/cluster/messages"),
            c.stats.messages.to_string()
        );
        assert_eq!(
            cat(0, "/net/.proc/dfs/cluster/convergence_lag_us"),
            lag.to_string()
        );
        // Proc refresh writes never replicate: pumping is a no-op.
        let before = c.stats.messages;
        c.pump();
        assert_eq!(c.stats.messages, before);
    }
}
