//! A controller node: a local file system replica plus the replicator that
//! turns its notify stream into [`SyncOp`]s and applies remote ops.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use yanc_vfs::{Credentials, EventKind, EventMask, Filesystem, Mode, VPath, WatchGuard};

use crate::op::{content_hash, OpKind, Stamp, SyncOp};

/// Lock-free mirror of a node's replication totals; shared with the
/// `<root>/.proc/dfs` render closures, which cannot borrow the mutably
/// owned [`Node`]. The plain `pub` fields on [`Node`] remain the primary
/// programmatic interface.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Ops this node has produced.
    pub ops_out: AtomicU64,
    /// Ops this node has applied from peers.
    pub ops_in: AtomicU64,
    /// Remote ops dropped by LWW.
    pub lww_drops: AtomicU64,
}

/// One controller node.
pub struct Node {
    /// Node id (index in the cluster).
    pub id: usize,
    /// The node-local file system replica. Applications and drivers on
    /// this node use it directly — they never see the replication layer.
    pub fs: Arc<Filesystem>,
    creds: Credentials,
    watch: WatchGuard,
    /// Echo suppression: hashes of remotely-applied state per path.
    applied: HashMap<VPath, u64>,
    /// LWW guard: newest stamp applied per path.
    newest: HashMap<VPath, Stamp>,
    /// Lamport counter for locally-originated ops.
    counter: u64,
    /// Ops this node has produced (metrics).
    pub ops_out: u64,
    /// Ops this node has applied from peers (metrics).
    pub ops_in: u64,
    /// Remote ops dropped by LWW (conflicts resolved away).
    pub lww_drops: u64,
    stats: Arc<NodeStats>,
}

impl Node {
    /// Create a node replicating the subtree under `root` (usually `/net`).
    pub fn new(id: usize, fs: Arc<Filesystem>, root: &str) -> Self {
        let watch = fs
            .watch(root)
            .subtree()
            .mask(EventMask::ALL)
            .register()
            .expect("unowned watch registration cannot fail");
        Node {
            id,
            fs,
            creds: Credentials::root(),
            watch,
            applied: HashMap::new(),
            newest: HashMap::new(),
            counter: 0,
            ops_out: 0,
            ops_in: 0,
            lww_drops: 0,
            stats: Arc::new(NodeStats::default()),
        }
    }

    /// The node's shared replication totals.
    pub fn stats(&self) -> Arc<NodeStats> {
        self.stats.clone()
    }

    /// Snapshot the current state of `path` as an op kind, or `Remove` if
    /// it no longer exists.
    fn snapshot(&self, path: &VPath) -> OpKind {
        match self.fs.lstat(path.as_str(), &self.creds) {
            Err(_) => OpKind::Remove,
            Ok(st) if st.is_dir() => OpKind::MkDir,
            Ok(st) if st.is_symlink() => match self.fs.readlink(path.as_str(), &self.creds) {
                Ok(t) => OpKind::PutSymlink(t),
                Err(_) => OpKind::Remove,
            },
            Ok(_) => match self.fs.read_file(path.as_str(), &self.creds) {
                Ok(d) => OpKind::PutFile(d),
                Err(_) => OpKind::Remove,
            },
        }
    }

    /// Drain local notify events into outbound ops (coalescing repeated
    /// touches of the same path, newest state wins).
    pub fn collect_ops(&mut self) -> Vec<SyncOp> {
        let mut dirty: Vec<VPath> = Vec::new();
        let mut seen: HashSet<VPath> = HashSet::new();
        for ev in self.watch.receiver().try_iter() {
            // Attribute-only changes are not replicated (consistency
            // metadata is node-local policy).
            if ev.kind == EventKind::Attrib {
                continue;
            }
            if seen.insert(ev.path.clone()) {
                dirty.push(ev.path.clone());
            }
        }
        let mut out = Vec::new();
        for path in dirty {
            let kind = self.snapshot(&path);
            let h = content_hash(&kind);
            // Echo of a remotely-applied op?
            if self.applied.get(&path) == Some(&h) {
                continue;
            }
            self.counter += 1;
            let stamp = Stamp {
                counter: self.counter,
                node: self.id,
            };
            self.newest.insert(path.clone(), stamp);
            self.ops_out += 1;
            self.stats.ops_out.fetch_add(1, Ordering::Relaxed);
            out.push(SyncOp { path, kind, stamp });
        }
        out
    }

    /// Apply a remote op (LWW: stale stamps are dropped).
    pub fn apply(&mut self, op: &SyncOp) {
        if let Some(have) = self.newest.get(&op.path) {
            if *have >= op.stamp {
                self.lww_drops += 1;
                self.stats.lww_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.newest.insert(op.path.clone(), op.stamp);
        // Keep our Lamport clock ahead of everything we've seen.
        self.counter = self.counter.max(op.stamp.counter);
        self.applied.insert(op.path.clone(), content_hash(&op.kind));
        self.ops_in += 1;
        self.stats.ops_in.fetch_add(1, Ordering::Relaxed);
        let p = op.path.as_str();
        match &op.kind {
            OpKind::MkDir => {
                let _ = self.fs.mkdir_all(p, Mode::DIR_DEFAULT, &self.creds);
            }
            OpKind::PutFile(data) => {
                let _ =
                    self.fs
                        .mkdir_all(op.path.parent().as_str(), Mode::DIR_DEFAULT, &self.creds);
                let _ = self.fs.write_file(p, data, &self.creds);
            }
            OpKind::PutSymlink(target) => {
                let _ =
                    self.fs
                        .mkdir_all(op.path.parent().as_str(), Mode::DIR_DEFAULT, &self.creds);
                if self.fs.lstat(p, &self.creds).is_ok() {
                    let _ = self.fs.unlink(p, &self.creds);
                }
                let _ = self.fs.symlink(target, p, &self.creds);
            }
            OpKind::Remove => match self.fs.lstat(p, &self.creds) {
                Ok(st) if st.is_dir() => {
                    remove_tree(&self.fs, &op.path, &self.creds);
                }
                Ok(_) => {
                    let _ = self.fs.unlink(p, &self.creds);
                }
                Err(_) => {}
            },
        }
        // Echo events raised by this apply are suppressed later by the
        // `applied` content-hash check in collect_ops — deliberately NOT
        // drained here, so a concurrent local write's event (which would be
        // interleaved in the same queue) is never discarded.
    }
}

/// Best-effort recursive removal (used when replicating a subtree delete
/// onto a replica that kept POSIX rmdir semantics for that path).
fn remove_tree(fs: &Arc<Filesystem>, dir: &VPath, creds: &Credentials) {
    if let Ok(entries) = fs.readdir(dir.as_str(), creds) {
        for e in entries {
            let p = dir.join(&e.name);
            match fs.lstat(p.as_str(), creds) {
                Ok(st) if st.is_dir() => remove_tree(fs, &p, creds),
                Ok(_) => {
                    let _ = fs.unlink(p.as_str(), creds);
                }
                Err(_) => {}
            }
        }
    }
    let _ = fs.rmdir(dir.as_str(), creds);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize) -> Node {
        let fs = Arc::new(Filesystem::new());
        fs.mkdir_all("/net", Mode::DIR_DEFAULT, &Credentials::root())
            .unwrap();
        Node::new(id, fs, "/net")
    }

    #[test]
    fn local_writes_become_ops() {
        let mut n = node(0);
        n.fs.mkdir_all("/net/switches/sw1", Mode::DIR_DEFAULT, &Credentials::root())
            .unwrap();
        n.fs.write_file("/net/switches/sw1/id", b"0x1", &Credentials::root())
            .unwrap();
        let ops = n.collect_ops();
        assert!(ops
            .iter()
            .any(|o| o.path.as_str() == "/net/switches/sw1" && o.kind == OpKind::MkDir));
        assert!(ops.iter().any(|o| o.path.as_str() == "/net/switches/sw1/id"
            && o.kind == OpKind::PutFile(b"0x1".to_vec())));
        assert_eq!(n.ops_out, ops.len() as u64);
    }

    #[test]
    fn apply_then_no_echo() {
        let mut a = node(0);
        let mut b = node(1);
        a.fs.write_file("/net/flag", b"on", &Credentials::root())
            .unwrap();
        let ops = a.collect_ops();
        for op in &ops {
            b.apply(op);
        }
        assert_eq!(
            b.fs.read_to_string("/net/flag", &Credentials::root())
                .unwrap(),
            "on"
        );
        // b's replicator does not re-emit what it just applied.
        assert!(b.collect_ops().is_empty());
    }

    #[test]
    fn lww_resolves_conflicts() {
        let mut a = node(0);
        let op_old = SyncOp {
            path: VPath::new("/net/x"),
            kind: OpKind::PutFile(b"old".to_vec()),
            stamp: Stamp {
                counter: 5,
                node: 1,
            },
        };
        let op_new = SyncOp {
            path: VPath::new("/net/x"),
            kind: OpKind::PutFile(b"new".to_vec()),
            stamp: Stamp {
                counter: 9,
                node: 2,
            },
        };
        a.apply(&op_new);
        a.apply(&op_old); // stale: dropped
        assert_eq!(
            a.fs.read_to_string("/net/x", &Credentials::root()).unwrap(),
            "new"
        );
        assert_eq!(a.lww_drops, 1);
        // Local counter advanced past the remote stamp.
        assert!(a.counter >= 9);
    }

    #[test]
    fn symlink_and_remove_ops() {
        let mut a = node(0);
        let mut b = node(1);
        a.fs.mkdir_all("/net/d", Mode::DIR_DEFAULT, &Credentials::root())
            .unwrap();
        a.fs.symlink("/net/d", "/net/link", &Credentials::root())
            .unwrap();
        for op in a.collect_ops() {
            b.apply(&op);
        }
        assert_eq!(
            b.fs.readlink("/net/link", &Credentials::root()).unwrap(),
            "/net/d"
        );
        // Now remove on a; replicate; b follows.
        a.fs.unlink("/net/link", &Credentials::root()).unwrap();
        for op in a.collect_ops() {
            b.apply(&op);
        }
        assert!(b.fs.lstat("/net/link", &Credentials::root()).is_err());
    }

    #[test]
    fn coalescing_keeps_final_state() {
        let mut a = node(0);
        let creds = Credentials::root();
        a.fs.write_file("/net/f", b"1", &creds).unwrap();
        a.fs.write_file("/net/f", b"2", &creds).unwrap();
        a.fs.write_file("/net/f", b"3", &creds).unwrap();
        let ops = a.collect_ops();
        let puts: Vec<&SyncOp> = ops.iter().filter(|o| o.path.as_str() == "/net/f").collect();
        assert_eq!(puts.len(), 1);
        assert_eq!(puts[0].kind, OpKind::PutFile(b"3".to_vec()));
    }
}
