//! # yanc-dfs — the distributed controller layer
//!
//! Paper §6: a distributed SDN controller is "any number of distributed
//! file systems layered on top of the yanc file system". This crate
//! replicates the `/net` subtree across controller [`Node`]s with three
//! interchangeable [`Backend`]s (central/NFS-like, DHT, and WheelFS-like
//! xattr-selected policy), last-writer-wins convergence, virtual-clock
//! propagation for measurable visibility latency, and fault injection
//! (node partitions).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod node;
pub mod op;

pub use cluster::{Backend, Cluster, ClusterStats};
pub use node::{Node, NodeStats};
pub use op::{content_hash, OpKind, Stamp, SyncOp};
