//! E4 + E8 — control-plane operations end to end: flow-commit latency vs
//! field count (through a live driver), and LLDP topology-discovery cost
//! vs topology size/diameter.
//!
//! Shape expectations: commit cost grows roughly linearly in the number of
//! field files (each is a create+write+close); discovery work grows with
//! link count, and the discovered topology always equals ground truth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::FlowSpec;
use yanc_apps::TopologyDaemon;
use yanc_driver::Runtime;
use yanc_harness::{build_fat_tree, build_line, build_ring, build_tree, settle, PumpApp};
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix, Version};
use yanc_packet::MacAddr;

/// A field-setter on a match under construction.
type FieldSetter = Box<dyn Fn(&mut FlowMatch)>;

/// A spec with exactly `k` populated match fields (k ≤ 10).
fn spec_with_fields(k: usize) -> FlowSpec {
    let mut m = FlowMatch::any();
    let setters: Vec<FieldSetter> = vec![
        Box::new(|m| m.in_port = Some(1)),
        Box::new(|m| m.dl_src = Some(MacAddr::from_seed(1))),
        Box::new(|m| m.dl_dst = Some(MacAddr::from_seed(2))),
        Box::new(|m| m.dl_type = Some(0x0800)),
        Box::new(|m| m.nw_tos = Some(0x20)),
        Box::new(|m| m.nw_proto = Some(6)),
        Box::new(|m| m.nw_src = Ipv4Prefix::parse("10.0.0.0/24")),
        Box::new(|m| m.nw_dst = Ipv4Prefix::parse("10.1.0.0/16")),
        Box::new(|m| m.tp_src = Some(1000)),
        Box::new(|m| m.tp_dst = Some(22)),
    ];
    for s in setters.iter().take(k) {
        s(&mut m);
    }
    FlowSpec {
        m,
        actions: vec![Action::out(2)],
        priority: 500,
        ..Default::default()
    }
}

fn bench_flow_commit(c: &mut Criterion) {
    println!("\nE4: syscalls per flow commit, by populated match-field count");
    println!("{:>8} {:>10}", "fields", "syscalls");
    let mut rows: Vec<(usize, u64)> = Vec::new();
    let mut last_rt = None;
    for k in [1usize, 4, 7, 10] {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(1, 4, 1, vec![Version::V1_0], Version::V1_0);
        rt.pump().unwrap();
        rt.enable_introspection().unwrap();
        let before = rt.yfs.filesystem().counters().snapshot();
        rt.yfs.write_flow("sw1", "f", &spec_with_fields(k)).unwrap();
        let used = rt.yfs.filesystem().counters().snapshot().since(&before);
        println!("{k:>8} {:>10}", used.total());
        rows.push((k, used.total()));
        last_rt = Some(rt);
    }
    println!();
    // Leave a machine-readable artifact next to EXPERIMENTS.md: the E4
    // table plus full syscall/latency metrics from the k=10 run.
    let table = rows
        .iter()
        .map(|(k, n)| format!("{{\"fields\": {k}, \"syscalls\": {n}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let rt = last_rt.expect("E4 ran at least once");
    yanc_harness::write_bench_report(
        "control_plane",
        rt.yfs.filesystem(),
        &[("commit_syscalls", format!("[{table}]"))],
    );

    let mut g = c.benchmark_group("flow_commit_e2e");
    g.sample_size(10);
    for k in [1usize, 5, 10] {
        g.bench_with_input(BenchmarkId::new("fields", k), &k, |b, &k| {
            let mut rt = Runtime::new();
            rt.add_switch_with_driver(1, 4, 1, vec![Version::V1_0], Version::V1_0);
            rt.pump().unwrap();
            let mut i = 0u32;
            b.iter(|| {
                i += 1;
                rt.yfs
                    .write_flow("sw1", &format!("f{i}"), &spec_with_fields(k))
                    .unwrap();
                rt.pump().unwrap();
            })
        });
    }
    g.finish();
}

fn bench_discovery(c: &mut Criterion) {
    println!("E8: LLDP discovery — links found / events processed per topology");
    println!(
        "{:>16} {:>10} {:>10} {:>12}",
        "topology", "switches", "links", "net events"
    );
    type TopoBuilder = Box<dyn Fn(&mut Runtime) -> yanc_harness::Topo>;
    let shapes: Vec<(&str, TopoBuilder)> = vec![
        ("line-8", Box::new(|rt| build_line(rt, 8, Version::V1_0))),
        ("ring-8", Box::new(|rt| build_ring(rt, 8, Version::V1_0))),
        (
            "tree-d3f2",
            Box::new(|rt| build_tree(rt, 3, 2, Version::V1_0)),
        ),
        (
            "fat-tree-2",
            Box::new(|rt| build_fat_tree(rt, 2, Version::V1_0)),
        ),
    ];
    for (label, build) in &shapes {
        let mut rt = Runtime::new();
        let topo = build(&mut rt);
        let ev_before = rt.net.stats.events;
        let mut topod = TopologyDaemon::new(rt.yfs.clone()).unwrap();
        topod.probe().unwrap();
        settle(&mut rt, &mut [&mut topod as &mut dyn PumpApp]);
        let links = rt.yfs.topology().unwrap().len();
        println!(
            "{label:>16} {:>10} {links:>10} {:>12}",
            topo.switches.len(),
            rt.net.stats.events - ev_before
        );
    }
    println!();

    let mut g = c.benchmark_group("topo_discovery");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("line", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let mut rt = Runtime::new();
                    build_line(&mut rt, n, Version::V1_0);
                    rt
                },
                |mut rt| {
                    let mut topod = TopologyDaemon::new(rt.yfs.clone()).unwrap();
                    topod.probe().unwrap();
                    settle(&mut rt, &mut [&mut topod as &mut dyn PumpApp]);
                    assert_eq!(rt.yfs.topology().unwrap().len(), 2 * (n - 1));
                    rt
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flow_commit, bench_discovery);
criterion_main!(benches);
