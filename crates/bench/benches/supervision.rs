//! E19 — process management under deterministic fault injection: how many
//! virtual ticks a kill→restart→reconverge cycle costs (and how much of
//! the control plane it re-reads), what the restart-storm backoff schedule
//! looks like, and what rate-limiting a greedy app costs the rest.
//!
//! Shape expectations: restart latency equals the backoff delay plus the
//! re-probe settle time and is identical across reruns; the backoff table
//! doubles per restart until the budget is spent; throttling caps the
//! greedy app's syscalls per tick without touching its neighbours.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::{YancApp, YancFs, YancResult};
use yanc_apps::TopologyDaemon;
use yanc_driver::Runtime;
use yanc_harness::{build_line, settle_supervised};
use yanc_init::{Fault, ProcessCtx, ProcessSpec, ProcessState, RestartPolicy, Supervisor};
use yanc_openflow::Version;
use yanc_vfs::{AppLimits, Credentials};

fn topod_factory(ctx: &ProcessCtx) -> YancResult<Box<dyn YancApp>> {
    Ok(Box::new(TopologyDaemon::new(ctx.yfs.clone())?) as Box<dyn YancApp>)
}

/// Run the supervised kill+channel-fault scenario on an `n`-switch line;
/// report `(restart latency ticks, ticks to quiesce, total syscalls)`.
fn faulted_line_run(n: usize) -> (u64, u64, u64) {
    let mut rt = Runtime::new();
    build_line(&mut rt, n, Version::V1_3);
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let pid = sup
        .spawn(
            ProcessSpec::new("topod").policy(RestartPolicy {
                restart: true,
                backoff_base: 1,
                max_restarts: 4,
            }),
            topod_factory,
        )
        .unwrap();
    sup.faults.at(1, Fault::DropControl { dpid: 2, frames: 2 });
    sup.faults.at(6, Fault::KillApp { pid });
    settle_supervised(&mut rt, &mut sup);
    assert_eq!(sup.state(pid), Some(ProcessState::Running));
    assert_eq!(rt.yfs.topology().unwrap().len(), 2 * (n - 1));
    let syscalls: u64 = rt
        .yfs
        .filesystem()
        .read_to_string("/net/.proc/scopes/net/total", &Credentials::root())
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    (sup.last_restart_latency(pid), sup.now(), syscalls)
}

/// Always crashes; used to drive the restart-storm backoff schedule.
struct Crasher;
impl YancApp for Crasher {
    fn name(&self) -> &str {
        "crasher"
    }
    fn run_once(&mut self) -> YancResult<bool> {
        Err(yanc_vfs::VfsError::new(yanc_vfs::Errno::EIO, "crasher: boom").into())
    }
}

/// Record `(restart #, tick it was rescheduled at)` until the budget is
/// spent and the process degrades to `failed`.
fn restart_storm(base: u64, max_restarts: u32) -> Vec<(u64, u64)> {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 2, 1, vec![Version::V1_0], Version::V1_0);
    rt.pump().unwrap();
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let pid = sup
        .spawn(
            ProcessSpec::new("crasher").policy(RestartPolicy {
                restart: true,
                backoff_base: base,
                max_restarts,
            }),
            |_ctx: &ProcessCtx| Ok(Box::new(Crasher) as Box<dyn YancApp>),
        )
        .unwrap();
    let mut schedule = Vec::new();
    let mut seen = 0u64;
    for _ in 0..4096 {
        sup.step(&mut rt);
        let r = sup.restarts(pid);
        if r > seen {
            schedule.push((r, sup.now()));
            seen = r;
        }
        if sup.state(pid) == Some(ProcessState::Failed) {
            break;
        }
    }
    assert_eq!(sup.state(pid), Some(ProcessState::Failed));
    schedule
}

/// Scans the root in a tight loop — the token bucket's worst customer.
struct GreedyScanner {
    yfs: YancFs,
    done: Arc<AtomicU64>,
}
impl YancApp for GreedyScanner {
    fn name(&self) -> &str {
        "greedy"
    }
    fn run_once(&mut self) -> YancResult<bool> {
        let fs = self.yfs.filesystem();
        for _ in 0..64 {
            fs.stat(self.yfs.root().as_str(), self.yfs.creds())?;
            self.done.fetch_add(1, Ordering::Relaxed);
        }
        Ok(false)
    }
}

/// Run a token-limited greedy scanner beside an unlimited topod for
/// `ticks`; report `(throttle preemptions, stats completed)`.
fn throttle_run(tokens: u64, ticks: usize) -> (u64, u64) {
    let mut rt = Runtime::new();
    build_line(&mut rt, 3, Version::V1_0);
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let done = Arc::new(AtomicU64::new(0));
    let d = done.clone();
    let greedy = sup
        .spawn(
            ProcessSpec::new("greedy").limits(AppLimits {
                syscall_tokens: Some(tokens),
                ..Default::default()
            }),
            move |ctx: &ProcessCtx| {
                Ok(Box::new(GreedyScanner {
                    yfs: ctx.yfs.clone(),
                    done: d.clone(),
                }) as Box<dyn YancApp>)
            },
        )
        .unwrap();
    sup.spawn(ProcessSpec::new("topod"), topod_factory).unwrap();
    for _ in 0..ticks {
        sup.step(&mut rt);
    }
    assert_eq!(sup.state(greedy), Some(ProcessState::Running));
    (sup.throttles(greedy), done.load(Ordering::Relaxed))
}

fn bench_supervision(c: &mut Criterion) {
    println!("\nE19a: kill + channel faults — restart latency and reconvergence cost");
    println!(
        "{:>8} {:>16} {:>14} {:>10}",
        "line-n", "restart ticks", "settle ticks", "syscalls"
    );
    let mut latency_rows = Vec::new();
    for n in [3usize, 5, 8] {
        let (latency, settle_ticks, syscalls) = faulted_line_run(n);
        println!("{n:>8} {latency:>16} {settle_ticks:>14} {syscalls:>10}");
        latency_rows.push(format!(
            "{{\"switches\": {n}, \"restart_latency_ticks\": {latency}, \
             \"settle_ticks\": {settle_ticks}, \"syscalls\": {syscalls}}}"
        ));
    }

    println!("\nE19b: restart storm — backoff schedule (base 2, budget 6)");
    println!("{:>10} {:>14}", "restart", "at tick");
    let schedule = restart_storm(2, 6);
    let mut storm_rows = Vec::new();
    for (r, tick) in &schedule {
        println!("{r:>10} {tick:>14}");
        storm_rows.push(format!("{{\"restart\": {r}, \"tick\": {tick}}}"));
    }

    println!("\nE19c: token-bucket throttling of a greedy scanner (20 ticks)");
    println!("{:>10} {:>12} {:>12}", "tokens", "throttles", "stats done");
    let mut throttle_rows = Vec::new();
    for tokens in [4u64, 16, 64] {
        let (throttles, done) = throttle_run(tokens, 20);
        println!("{tokens:>10} {throttles:>12} {done:>12}");
        throttle_rows.push(format!(
            "{{\"tokens\": {tokens}, \"throttles\": {throttles}, \"stats_done\": {done}}}"
        ));
    }
    println!();

    // Machine-readable artifact, plus full kernel metrics from a fresh
    // faulted run so the report is self-contained.
    let mut rt = Runtime::new();
    build_line(&mut rt, 3, Version::V1_3);
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let pid = sup.spawn(ProcessSpec::new("topod"), topod_factory).unwrap();
    sup.faults.at(6, Fault::KillApp { pid });
    settle_supervised(&mut rt, &mut sup);
    yanc_harness::write_bench_report(
        "supervision",
        rt.yfs.filesystem(),
        &[
            ("restart_latency", format!("[{}]", latency_rows.join(", "))),
            ("restart_storm", format!("[{}]", storm_rows.join(", "))),
            ("throttling", format!("[{}]", throttle_rows.join(", "))),
        ],
    );

    let mut g = c.benchmark_group("supervised_recovery");
    g.sample_size(10);
    for n in [3usize, 5] {
        g.bench_with_input(BenchmarkId::new("kill_reconverge_line", n), &n, |b, &n| {
            b.iter(|| faulted_line_run(n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_supervision);
criterion_main!(benches);
