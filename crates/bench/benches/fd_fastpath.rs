//! E21 — the descriptor-relative fast path: installing 1000 flows with
//! one `open_dir` + `mkdirat` + batched writes per flow, against the
//! path-per-call baseline that re-resolves `/net/switches/<sw>/flows/...`
//! for every field file.
//!
//! Two deterministic tables (the machine-independent claim) plus a
//! wall-clock criterion series:
//!   * **install**: simulated syscalls per 1k-flow burst, path-per-call vs
//!     fd-relative — the ≥5× reduction EXPERIMENTS.md E21 pins,
//!   * **idle consumer**: scheduler-visible syscalls across 1000 idle
//!     ticks, busy-scan (`readdir` per tick) vs `yanc_poll`
//!     (`is_ready` is free; one charged `wait` only when data arrives).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::{FlowSpec, YancFs};
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix};
use yanc_packet::MacAddr;
use yanc_vfs::{Credentials, EventMask, Filesystem};

/// All ten match fields populated — the worst case for one-file-per-field.
fn rich_spec(i: usize) -> FlowSpec {
    FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            dl_src: Some(MacAddr::from_seed(1)),
            dl_dst: Some(MacAddr::from_seed(2)),
            dl_type: Some(0x0800),
            nw_tos: Some(0x20),
            nw_proto: Some(6),
            nw_src: Ipv4Prefix::parse("10.0.0.0/24"),
            nw_dst: Ipv4Prefix::parse("10.1.0.0/16"),
            tp_src: Some(1000),
            tp_dst: Some((i % 60_000) as u16),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 900,
        ..Default::default()
    }
}

fn world() -> YancFs {
    let yfs = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
    yfs.create_switch("sw0", 0x21, 0, 0, 0, 1).unwrap();
    yfs
}

fn path_burst(yfs: &YancFs, n: usize) {
    for i in 0..n {
        yfs.write_flow("sw0", &format!("p{i}"), &rich_spec(i))
            .unwrap();
    }
}

fn fd_burst(yfs: &YancFs, n: usize) {
    let flows = yfs.open_flows_dir("sw0").unwrap();
    for i in 0..n {
        yfs.write_flow_at(flows, &format!("d{i}"), &rich_spec(i))
            .unwrap();
    }
    yfs.filesystem().close(flows, yfs.creds()).unwrap();
}

fn bench(c: &mut Criterion) {
    const N: usize = 1000;

    // Table 1: the E21 install claim.
    let yfs = world();
    let before = yfs.filesystem().counters().snapshot();
    path_burst(&yfs, N);
    let path_cost = yfs
        .filesystem()
        .counters()
        .snapshot()
        .since(&before)
        .total();
    let yfs = world();
    let before = yfs.filesystem().counters().snapshot();
    fd_burst(&yfs, N);
    let fd_cost = yfs
        .filesystem()
        .counters()
        .snapshot()
        .since(&before)
        .total();
    let ratio = path_cost as f64 / fd_cost as f64;
    println!("\nE21: simulated syscalls per {N}-flow install (10-field specs)");
    println!("{:>16} {:>12} {:>10}", "strategy", "syscalls", "per flow");
    println!(
        "{:>16} {:>12} {:>10.1}",
        "path-per-call",
        path_cost,
        path_cost as f64 / N as f64
    );
    println!(
        "{:>16} {:>12} {:>10.1}",
        "fd-relative",
        fd_cost,
        fd_cost as f64 / N as f64
    );
    println!("{:>16} {ratio:>12.2}x", "reduction");
    assert!(ratio >= 5.0, "E21 regression: only {ratio:.2}x");

    // Table 2: the consumer side. A busy-scanned flows directory charges a
    // readdir every tick; a poll set answers "anything new?" for free and
    // charges one Poll only when woken with data.
    let yfs = world();
    let fs = yfs.filesystem();
    let watch = fs
        .watch(yfs.switch_dir("sw0").join("flows").as_str())
        .subtree()
        .mask(EventMask::ALL)
        .register()
        .unwrap();
    let ps = fs.poll_create(&Credentials::root());
    ps.add_watch("flows", watch.receiver().clone());
    const TICKS: usize = 1000;
    let before = fs.counters().snapshot();
    for _ in 0..TICKS {
        let _ = fs
            .readdir(yfs.switch_dir("sw0").join("flows").as_str(), yfs.creds())
            .unwrap();
    }
    let busy_cost = fs.counters().snapshot().since(&before).total();
    let before = fs.counters().snapshot();
    for _ in 0..TICKS {
        assert!(!ps.is_ready()); // the scheduler's free check
    }
    yfs.write_flow_at(yfs.open_flows_dir("sw0").unwrap(), "wake", &rich_spec(0))
        .unwrap();
    assert!(ps.is_ready());
    let woken = ps.wait(16, Duration::ZERO).unwrap();
    assert!(!woken.is_empty());
    let poll_cost = fs.counters().snapshot().since(&before).total();
    println!("\nE21b: consumer syscalls across {TICKS} idle ticks + one wakeup");
    println!("{:>16} {:>12}", "strategy", "syscalls");
    println!("{:>16} {:>12}", "busy readdir", busy_cost);
    println!("{:>16} {:>12}", "yanc_poll", poll_cost);
    println!();

    yanc_harness::write_bench_report(
        "fd_fastpath",
        fs,
        &[
            (
                "experiment",
                "\"E21 descriptor-relative fast path\"".to_string(),
            ),
            ("flows", N.to_string()),
            ("path_per_call_syscalls", path_cost.to_string()),
            ("fd_relative_syscalls", fd_cost.to_string()),
            ("reduction", format!("{ratio:.2}")),
            ("idle_ticks", TICKS.to_string()),
            ("busy_scan_syscalls", busy_cost.to_string()),
            ("poll_syscalls", poll_cost.to_string()),
        ],
    );

    // Wall-clock series: the syscall gap is also a time gap.
    let mut g = c.benchmark_group("fd_fastpath");
    g.sample_size(10);
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::new("path_per_call", n), &n, |b, &n| {
            b.iter_with_setup(world, |yfs| path_burst(&yfs, n))
        });
        g.bench_with_input(BenchmarkId::new("fd_relative", n), &n, |b, &n| {
            b.iter_with_setup(world, |yfs| fd_burst(&yfs, n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
