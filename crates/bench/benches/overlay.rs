//! E24 — overlay/union views: what 1,000 copy-on-write tenant views over
//! one shared base tree cost, read-through vs copy-up, plus one validated
//! atomic commit that must survive crash replay byte-identically.
//!
//! Deterministic, machine-independent metrics (the BENCH_overlay.json
//! payload): charged syscalls per view for a read-through sweep (no
//! copy-up, zero bytes staged), charged syscalls and staged bytes per
//! view for a first write (full copy-up of the target file), and the
//! record/byte size of one atomic view commit. Every per-view number is
//! asserted identical across all 1,000 views — overlay costs must not
//! depend on which tenant pays them. The criterion series shows the
//! wall-clock side of the same phases.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use yanc_apps::WhatIf;
use yanc_vfs::{Credentials, Filesystem, Limits, Mode, Overlay};

const VIEWS: usize = 1000;

/// One shared base: a switch with three flows, three key files each.
fn base_world(journal: bool) -> Arc<Filesystem> {
    let fs = Arc::new(Filesystem::builder().build());
    if journal {
        fs.enable_journal();
    }
    let r = Credentials::root();
    for f in ["ssh", "web", "dns"] {
        let dir = format!("/base/switches/sw0/flows/{f}");
        fs.mkdir_all(&dir, Mode::DIR_DEFAULT, &r).unwrap();
        fs.write_file(&format!("{dir}/match.tp_dst"), b"22\n", &r)
            .unwrap();
        fs.write_file(&format!("{dir}/action.out"), b"2\n", &r)
            .unwrap();
        fs.write_file(&format!("{dir}/priority"), b"900\n", &r)
            .unwrap();
    }
    fs.mkdir_all("/views", Mode::DIR_DEFAULT, &r).unwrap();
    fs
}

/// `n` tenant views over the shared base, each with its own upper layer.
fn make_views(fs: &Arc<Filesystem>, n: usize) -> Vec<Overlay> {
    let r = Credentials::root();
    (0..n)
        .map(|i| {
            let ov = Overlay::new(fs.clone(), &["/base"], &format!("/views/t{i}"));
            ov.ensure_upper(&r).unwrap();
            ov
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let fs = base_world(true);
    let r = Credentials::root();
    let base_syscalls = fs.counters().total();
    let views = make_views(&fs, VIEWS);
    let setup_syscalls = fs.counters().total() - base_syscalls;

    // Read-through: every view reads a base flow key. No copy-up, no
    // staged bytes — the overlay resolves through to the shared lower.
    let s0 = fs.counters().snapshot();
    for ov in &views {
        let v = ov
            .read_to_string("/switches/sw0/flows/ssh/priority", &r)
            .unwrap();
        assert_eq!(v, "900\n");
    }
    let read_total = fs.counters().snapshot().since(&s0).total();
    assert_eq!(
        read_total % VIEWS as u64,
        0,
        "read-through cost differs across views"
    );
    let read_per_view = read_total / VIEWS as u64;
    for ov in &views {
        let st = ov.stats();
        assert_eq!(st.copy_ups, 0, "read-through triggered a copy-up");
        assert_eq!(st.copy_up_bytes, 0);
    }

    // Copy-up: every view overwrites that key. First write pays a full
    // copy-up of the file (content + metadata) into the private upper;
    // the base stays untouched and every tenant pays the same price.
    let s1 = fs.counters().snapshot();
    for ov in &views {
        ov.write_file("/switches/sw0/flows/ssh/priority", b"100\n", &r)
            .unwrap();
    }
    let write_total = fs.counters().snapshot().since(&s1).total();
    assert_eq!(
        write_total % VIEWS as u64,
        0,
        "copy-up cost differs across views"
    );
    let write_per_view = write_total / VIEWS as u64;
    let bytes_per_view = views[0].stats().copy_up_bytes;
    for ov in &views {
        let st = ov.stats();
        assert_eq!(st.copy_ups, 1, "first write must copy up exactly once");
        assert_eq!(st.copy_up_bytes, bytes_per_view, "staged bytes differ");
    }
    assert_eq!(
        fs.read_to_string("/base/switches/sw0/flows/ssh/priority", &r)
            .unwrap(),
        "900\n",
        "a tenant write leaked into the shared base"
    );
    assert!(
        write_per_view > read_per_view,
        "copy-up should cost more than read-through"
    );

    // One view performs a validated atomic commit: stage a new flow via
    // the what-if app, parse-validate the merged tree, publish it as a
    // single journaled transaction.
    let session = WhatIf::begin(fs.clone(), "/base", "/staging/commit-view", &r).unwrap();
    session
        .stage_flow(
            "sw0",
            "lb",
            &[
                ("match.tp_dst", "443"),
                ("action.out", "4"),
                ("priority", "800"),
            ],
        )
        .unwrap();
    let valid_flows = session.validate().expect("staged view failed validation");
    assert_eq!(valid_flows, 4);
    let report = session.commit().unwrap();
    assert!(report.records > 0);
    assert!(fs.exists("/base/switches/sw0/flows/lb/priority", &r));

    // Crash replay: rebuild from the journal alone. The whole history —
    // 1,000 copy-ups plus the commit frame — must replay to the exact
    // same tree, proving the commit is a single all-or-nothing record.
    let live_digest = fs.tree_digest();
    let (warm, replay) =
        Filesystem::restore_from_journal(&fs.journal_bytes(), Limits::default(), 8, true);
    assert_eq!(
        warm.tree_digest(),
        live_digest,
        "crash replay diverged from the live tree"
    );

    println!("\nE24: {VIEWS} tenant views over one shared base tree");
    println!("{:>28} {:>12}", "metric", "value");
    println!("{:>28} {:>12}", "view setup syscalls", setup_syscalls);
    println!("{:>28} {:>12}", "read-through syscalls/view", read_per_view);
    println!("{:>28} {:>12}", "copy-up syscalls/view", write_per_view);
    println!("{:>28} {:>12}", "copy-up bytes/view", bytes_per_view);
    println!("{:>28} {:>12}", "commit records", report.records);
    println!("{:>28} {:>12}", "commit bytes", report.bytes);
    println!("{:>28} {:>12}", "replay records", replay.records_replayed);

    yanc_harness::write_bench_report(
        "overlay",
        &fs,
        &[
            (
                "experiment",
                "\"E24 overlay views: copy-on-write cost + atomic commit\"".to_string(),
            ),
            ("views", VIEWS.to_string()),
            ("view_setup_syscalls", setup_syscalls.to_string()),
            ("read_through_syscalls_per_view", read_per_view.to_string()),
            ("copy_up_syscalls_per_view", write_per_view.to_string()),
            ("copy_up_bytes_per_view", bytes_per_view.to_string()),
            ("commit_records", report.records.to_string()),
            ("commit_bytes", report.bytes.to_string()),
            ("commit_whiteouts", report.whiteouts.to_string()),
            ("replay_records", replay.records_replayed.to_string()),
            (
                "replay_digest_matches",
                (warm.tree_digest() == live_digest).to_string(),
            ),
            (
                "note",
                "\"per-view counts are asserted identical across all views; wall-clock series in criterion output is machine-dependent\"".to_string(),
            ),
        ],
    );

    // Wall-clock series: view creation + first-write copy-up, a pure
    // read-through sweep over warm views, and a staged commit cycle.
    let mut g = c.benchmark_group("overlay");
    g.sample_size(10);
    g.bench_function("create_256_views_and_copy_up", |b| {
        b.iter(|| {
            let fs = base_world(false);
            let views = make_views(&fs, 256);
            for ov in &views {
                ov.write_file("/switches/sw0/flows/ssh/priority", b"1\n", &r)
                    .unwrap();
            }
        })
    });
    g.bench_function("read_through_1000_views", |b| {
        b.iter(|| {
            for ov in &views {
                ov.read_to_string("/switches/sw0/flows/web/priority", &r)
                    .unwrap();
            }
        })
    });
    let commit_fs = base_world(false);
    g.bench_function("stage_validate_commit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s =
                WhatIf::begin(commit_fs.clone(), "/base", &format!("/staging/b{i}"), &r).unwrap();
            i += 1;
            s.stage_flow("sw0", "tmp", &[("priority", "7")]).unwrap();
            s.validate().unwrap();
            s.commit().unwrap();
            commit_fs
                .unlink("/base/switches/sw0/flows/tmp/priority", &r)
                .unwrap();
            commit_fs.rmdir("/base/switches/sw0/flows/tmp", &r).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
