//! E22 — the sharded dentry cache: a 1k-flow `stat` sweep over
//! `/net/switches/sw0/flows/d<i>`, cold (cache-off filesystem) vs warm
//! (second sweep on a cache-on filesystem) vs post-invalidation (after a
//! `chmod` on the flows directory bumped its generation).
//!
//! The deterministic, machine-independent metric is **inode-table
//! reads** (`Tables::with_inode` acquisitions): a cold depth-5 stat
//! walks every component through the inode table, a warm one is served
//! from dentry-cache hits and touches the table only for the final
//! stat itself. EXPERIMENTS.md E22 pins the reads ratio at ≥3×; the
//! wall-clock criterion series shows the same gap in time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::{FlowSpec, YancFs};
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix};
use yanc_packet::MacAddr;
use yanc_vfs::{Filesystem, Mode};

fn spec(i: usize) -> FlowSpec {
    FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            dl_src: Some(MacAddr::from_seed(1)),
            dl_dst: Some(MacAddr::from_seed(2)),
            nw_dst: Ipv4Prefix::parse("10.1.0.0/16"),
            tp_dst: Some((i % 60_000) as u16),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 900,
        ..Default::default()
    }
}

/// A switch with `n` installed flows on the given filesystem flavour.
fn world(dcache: bool, n: usize) -> YancFs {
    let fs = Filesystem::builder().dcache(dcache).build();
    let yfs = YancFs::init(Arc::new(fs), "/net").unwrap();
    yfs.create_switch("sw0", 0x21, 0, 0, 0, 1).unwrap();
    let flows = yfs.open_flows_dir("sw0").unwrap();
    for i in 0..n {
        yfs.write_flow_at(flows, &format!("d{i}"), &spec(i))
            .unwrap();
    }
    yfs.filesystem().close(flows, yfs.creds()).unwrap();
    yfs
}

/// Stat every flow directory once; return (inode-table reads, charged
/// syscalls) for the sweep.
fn sweep(yfs: &YancFs, n: usize) -> (u64, u64) {
    let fs = yfs.filesystem();
    let reads = fs.inode_table_reads();
    let sys = fs.counters().snapshot();
    for i in 0..n {
        fs.stat(&format!("/net/switches/sw0/flows/d{i}"), yfs.creds())
            .unwrap();
    }
    (
        fs.inode_table_reads() - reads,
        fs.counters().snapshot().since(&sys).total(),
    )
}

fn bench(c: &mut Criterion) {
    const N: usize = 1000;

    // Cold: no cache at all — every component of every path walks the
    // inode table.
    let off = world(false, N);
    let (cold_reads, cold_sys) = sweep(&off, N);

    // Warm: first sweep fills the cache, second is the measurement.
    let on = world(true, N);
    sweep(&on, N);
    let (warm_reads, warm_sys) = sweep(&on, N);

    // Post-invalidation: chmod on the flows directory bumps its
    // generation, so the d<i> entries refill (the prefix stays warm).
    on.filesystem()
        .chmod("/net/switches/sw0/flows", Mode::DIR_DEFAULT, on.creds())
        .unwrap();
    let (post_reads, _) = sweep(&on, N);

    let ratio = cold_reads as f64 / warm_reads as f64;
    println!("\nE22: inode-table reads per {N}-flow stat sweep (depth-5 paths)");
    println!("{:>20} {:>12} {:>10}", "phase", "reads", "per stat");
    println!(
        "{:>20} {:>12} {:>10.1}",
        "cold (cache off)",
        cold_reads,
        cold_reads as f64 / N as f64
    );
    println!(
        "{:>20} {:>12} {:>10.1}",
        "warm",
        warm_reads,
        warm_reads as f64 / N as f64
    );
    println!(
        "{:>20} {:>12} {:>10.1}",
        "post-invalidation",
        post_reads,
        post_reads as f64 / N as f64
    );
    println!("{:>20} {ratio:>12.2}x", "cold/warm");
    assert!(ratio >= 3.0, "E22 regression: only {ratio:.2}x");
    // The cache is transparent to the syscall accounting model: a stat
    // is one charged syscall whether it hit or missed.
    assert_eq!(cold_sys, warm_sys, "dcache changed charged syscalls");
    // Invalidation is surgical: refilling one generation-bumped level
    // costs far less than a cold walk.
    assert!(
        post_reads < cold_reads,
        "invalidation refill cost a full cold walk"
    );

    let stats = on.filesystem().dcache_stats();
    yanc_harness::write_bench_report(
        "dcache",
        on.filesystem(),
        &[
            ("experiment", "\"E22 sharded dentry cache\"".to_string()),
            ("flows", N.to_string()),
            ("cold_table_reads", cold_reads.to_string()),
            ("warm_table_reads", warm_reads.to_string()),
            ("post_invalidation_table_reads", post_reads.to_string()),
            ("reads_ratio", format!("{ratio:.2}")),
            ("dcache_hits", stats.hits.to_string()),
            ("dcache_misses", stats.misses.to_string()),
            ("dcache_invalidations", stats.invalidations.to_string()),
            (
                "note",
                "\"reads ratio is deterministic; wall-clock series in criterion output is single-core and machine-dependent\"".to_string(),
            ),
        ],
    );

    // Wall-clock series: the reads gap is also a time gap. Both sweeps
    // are idempotent on their filesystem, so no per-iter setup.
    let mut g = c.benchmark_group("dcache");
    g.sample_size(10);
    for n in [256usize, 1000] {
        g.bench_with_input(BenchmarkId::new("cold_stat_sweep", n), &n, |b, &n| {
            b.iter(|| sweep(&off, n))
        });
        g.bench_with_input(BenchmarkId::new("warm_stat_sweep", n), &n, |b, &n| {
            b.iter(|| sweep(&on, n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
