//! E5 + E15 + E16 — packet-in fan-out cost vs subscriber count (file path
//! vs zero-copy bus), and notify delivery scaling vs watch count.
//!
//! Shape expectations: file-path fan-out cost grows linearly in
//! subscribers (each gets a private hex copy) while the bus cost is flat
//! apart from ring pushes; notify emit cost grows with the number of
//! *matching* watches and stays near-flat for non-matching ones.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use libyanc::{FastPacketIn, PacketBus};
use yanc::{PacketInRecord, YancFs};
use yanc_vfs::{EventMask, Filesystem};

fn bench_fanout(c: &mut Criterion) {
    // Deterministic syscall series for EXPERIMENTS.md.
    println!("\nE5/E15: fs syscalls per packet-in publish, by subscriber count");
    println!("{:>12} {:>12}", "subscribers", "syscalls");
    for n in [1usize, 2, 4, 8, 16, 32] {
        let yfs = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
        let _subs: Vec<_> = (0..n)
            .map(|i| yfs.subscribe_events(&format!("app{i}")).unwrap())
            .collect();
        let rec = PacketInRecord {
            switch: "sw1".into(),
            in_port: 1,
            buffer_id: None,
            reason: "no_match".into(),
            data: Bytes::from(vec![0u8; 256]),
        };
        let before = yfs.filesystem().counters().snapshot();
        yfs.publish_packet_in(&rec).unwrap();
        let used = yfs.filesystem().counters().snapshot().since(&before);
        println!("{n:>12} {:>12}", used.total());
    }
    println!();

    let mut g = c.benchmark_group("packetin_fanout");
    g.sample_size(10);
    for n in [1usize, 8, 32] {
        // File path.
        g.bench_with_input(BenchmarkId::new("fs_path", n), &n, |b, &n| {
            let yfs = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
            let subs: Vec<_> = (0..n)
                .map(|i| yfs.subscribe_events(&format!("app{i}")).unwrap())
                .collect();
            let rec = PacketInRecord {
                switch: "sw1".into(),
                in_port: 1,
                buffer_id: None,
                reason: "no_match".into(),
                data: Bytes::from(vec![0u8; 1500]),
            };
            b.iter(|| {
                yfs.publish_packet_in(&rec).unwrap();
                for s in &subs {
                    let got = s.drain_all();
                    assert_eq!(got.len(), 1);
                }
            })
        });
        // Zero-copy bus.
        g.bench_with_input(BenchmarkId::new("zero_copy_bus", n), &n, |b, &n| {
            let bus = PacketBus::new(16);
            let rings: Vec<_> = (0..n).map(|i| bus.subscribe(&format!("app{i}"))).collect();
            let pkt = FastPacketIn {
                switch: "sw1".into(),
                in_port: 1,
                buffer_id: None,
                data: Bytes::from(vec![0u8; 1500]),
            };
            b.iter(|| {
                assert_eq!(bus.publish(&pkt), n);
                for r in &rings {
                    r.pop().unwrap();
                }
            })
        });
    }
    g.finish();
}

fn bench_payload_sweep(c: &mut Criterion) {
    // E15: cost vs payload size. The fs path hex-encodes (2x expansion +
    // copy per subscriber); the bus clones a refcount.
    let mut g = c.benchmark_group("zerocopy_packetin_payload");
    g.sample_size(10);
    for size in [64usize, 512, 1500, 9000] {
        g.bench_with_input(BenchmarkId::new("fs_path_4subs", size), &size, |b, &sz| {
            let yfs = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
            let subs: Vec<_> = (0..4)
                .map(|i| yfs.subscribe_events(&format!("a{i}")).unwrap())
                .collect();
            let rec = PacketInRecord {
                switch: "sw1".into(),
                in_port: 1,
                buffer_id: None,
                reason: "no_match".into(),
                data: Bytes::from(vec![0u8; sz]),
            };
            b.iter(|| {
                yfs.publish_packet_in(&rec).unwrap();
                for s in &subs {
                    s.drain_all();
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("bus_4subs", size), &size, |b, &sz| {
            let bus = PacketBus::new(16);
            let rings: Vec<_> = (0..4).map(|i| bus.subscribe(&format!("a{i}"))).collect();
            let pkt = FastPacketIn {
                switch: "sw1".into(),
                in_port: 1,
                buffer_id: None,
                data: Bytes::from(vec![0u8; sz]),
            };
            b.iter(|| {
                bus.publish(&pkt);
                for r in &rings {
                    r.pop().unwrap();
                }
            })
        });
    }
    g.finish();
}

fn bench_notify(c: &mut Criterion) {
    // E16: emit cost with k watches on the same directory vs k watches
    // elsewhere.
    let mut g = c.benchmark_group("notify_scaling");
    g.sample_size(10);
    for k in [1usize, 10, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("matching_watches", k), &k, |b, &k| {
            let fs = Filesystem::new();
            let creds = yanc_vfs::Credentials::root();
            fs.mkdir_all("/watched", yanc_vfs::Mode::DIR_DEFAULT, &creds)
                .unwrap();
            let watches: Vec<_> = (0..k)
                .map(|_| {
                    fs.watch("/watched")
                        .mask(EventMask::ALL)
                        .register()
                        .unwrap()
                })
                .collect();
            b.iter(|| {
                fs.write_file("/watched/f", b"x", &creds).unwrap();
                for w in &watches {
                    while w.receiver().try_recv().is_ok() {}
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("nonmatching_watches", k), &k, |b, &k| {
            let fs = Filesystem::new();
            let creds = yanc_vfs::Credentials::root();
            fs.mkdir_all("/watched", yanc_vfs::Mode::DIR_DEFAULT, &creds)
                .unwrap();
            fs.mkdir_all("/elsewhere", yanc_vfs::Mode::DIR_DEFAULT, &creds)
                .unwrap();
            let _watches: Vec<_> = (0..k)
                .map(|_| {
                    fs.watch("/elsewhere")
                        .mask(EventMask::ALL)
                        .register()
                        .unwrap()
                })
                .collect();
            b.iter(|| fs.write_file("/watched/f", b"x", &creds).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fanout, bench_payload_sweep, bench_notify);
criterion_main!(benches);
