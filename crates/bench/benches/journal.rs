//! E23 — write-ahead journal + snapshot/restore: what durability costs on
//! the mutation path and what it saves on restart.
//!
//! Deterministic, machine-independent metrics (the BENCH_journal.json
//! payload): journal records per charged mutating syscall, bytes appended
//! per flow install, snapshot size for a 1k-flow world, and the replay
//! syscall count of a warm restart versus the syscall count of rebuilding
//! the same world cold — the E19/E23 comparison. The criterion series
//! shows the wall-clock side: journaled vs unjournaled install sweeps and
//! the restore itself.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::{FlowSpec, YancFs};
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix};
use yanc_packet::MacAddr;
use yanc_vfs::{Filesystem, Limits};

fn spec(i: usize) -> FlowSpec {
    FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            dl_src: Some(MacAddr::from_seed(1)),
            dl_dst: Some(MacAddr::from_seed(2)),
            nw_dst: Ipv4Prefix::parse("10.2.0.0/16"),
            tp_dst: Some((i % 60_000) as u16),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 900,
        ..Default::default()
    }
}

/// A 1k-flow switch world, journaled or not. Journaling is enabled on the
/// virgin filesystem so the log covers the entire build. `batched` installs
/// through a flows-dir descriptor (the E21 fast path, ~2 syscalls/flow);
/// path-addressed installs write every key file by full path — the cost a
/// cold restart actually pays when it re-runs discovery without the batch
/// descriptor plumbing warmed up.
fn world(journal: bool, batched: bool, n: usize) -> YancFs {
    let fs = Filesystem::builder().build();
    if journal {
        fs.enable_journal();
    }
    let yfs = YancFs::init(Arc::new(fs), "/net").unwrap();
    yfs.create_switch("sw0", 0x22, 0, 0, 0, 1).unwrap();
    if batched {
        let flows = yfs.open_flows_dir("sw0").unwrap();
        for i in 0..n {
            yfs.write_flow_at(flows, &format!("d{i}"), &spec(i))
                .unwrap();
        }
        yfs.filesystem().close(flows, yfs.creds()).unwrap();
    } else {
        for i in 0..n {
            yfs.write_flow("sw0", &format!("d{i}"), &spec(i)).unwrap();
        }
    }
    yfs
}

fn bench(c: &mut Criterion) {
    const N: usize = 1000;

    // Cold references: the same world built from nothing, no journal.
    // Path-addressed is what a cold restart pays re-running discovery;
    // the batched build is the E21 lower bound on live installs.
    let cold_path = world(false, false, N);
    let cold_path_syscalls = cold_path.filesystem().counters().total();
    let cold = world(false, true, N);
    let cold_syscalls = cold.filesystem().counters().total();

    // Journaled world: identical history to the batched build, every
    // mutation logged.
    let on = world(true, true, N);
    let fs = on.filesystem();
    let live_digest = fs.tree_digest();
    let stats_before_snap = fs.journal_stats();
    assert!(
        stats_before_snap.records > 0,
        "journaled build logged nothing"
    );
    // Journaling must not change the charged-syscall model.
    assert_eq!(
        fs.counters().total(),
        cold_syscalls,
        "journal changed the syscall accounting"
    );

    // Snapshot + compaction: the steady-state footprint of the 1k-flow tree.
    let bytes_full = fs.journal_bytes().len() as u64;
    fs.journal_snapshot();
    let compacted = fs.journal_compact();
    let stats = fs.journal_stats();
    assert!(compacted > 0);

    // Warm restart: replay the (compacted) log; suffix is empty so the
    // cost is pure snapshot install — then again from the full pre-compact
    // world rebuilt, to get a representative replay cost.
    let (warm, report) =
        Filesystem::restore_from_journal(&fs.journal_bytes(), Limits::default(), 8, true);
    assert!(report.snapshot_used);
    assert_eq!(warm.tree_digest(), live_digest, "restore diverged");
    assert_eq!(
        report.replay_syscalls, 0,
        "snapshot install must be syscall-free"
    );
    // Replay-heavy variant: a fresh journaled world restored without any
    // snapshot beyond the virgin anchor — every record replays. One
    // syscall per record beats the path-addressed cold rebuild (it cannot
    // beat the E21 batch build, which deliberately under-counts: one
    // charged batch covers a dozen journal records).
    let replayed_world = world(true, true, N);
    let rbytes = replayed_world.filesystem().journal_bytes();
    let (warm2, rep2) = Filesystem::restore_from_journal(&rbytes, Limits::default(), 8, true);
    assert_eq!(
        warm2.tree_digest(),
        replayed_world.filesystem().tree_digest()
    );
    assert!(
        rep2.replay_syscalls < cold_path_syscalls,
        "E23 regression: warm replay ({}) not cheaper than path-addressed cold build ({cold_path_syscalls})",
        rep2.replay_syscalls
    );

    let records_per_syscall = stats_before_snap.records as f64 / cold_syscalls as f64;
    let bytes_per_record = bytes_full as f64 / stats_before_snap.records.max(1) as f64;
    println!("\nE23: journal cost/benefit for a {N}-flow world");
    println!("{:>28} {:>12}", "metric", "value");
    println!(
        "{:>28} {:>12}",
        "cold build (path-addressed)", cold_path_syscalls
    );
    println!("{:>28} {:>12}", "cold build (E21 batched)", cold_syscalls);
    println!(
        "{:>28} {:>12}",
        "journal records", stats_before_snap.records
    );
    println!("{:>28} {:>12.3}", "records/syscall", records_per_syscall);
    println!("{:>28} {:>12}", "journal bytes (pre-snap)", bytes_full);
    println!("{:>28} {:>12.1}", "bytes/record", bytes_per_record);
    println!("{:>28} {:>12}", "snapshot bytes", stats.snapshot_bytes);
    println!("{:>28} {:>12}", "compacted bytes", compacted);
    println!(
        "{:>28} {:>12}",
        "warm replay syscalls", rep2.replay_syscalls
    );
    println!(
        "{:>28} {:>12.1}x",
        "cold/warm",
        cold_path_syscalls as f64 / rep2.replay_syscalls.max(1) as f64
    );

    yanc_harness::write_bench_report(
        "journal",
        fs,
        &[
            (
                "experiment",
                "\"E23 write-ahead journal + snapshot/restore\"".to_string(),
            ),
            ("flows", N.to_string()),
            (
                "cold_build_syscalls_path_addressed",
                cold_path_syscalls.to_string(),
            ),
            ("cold_build_syscalls_batched", cold_syscalls.to_string()),
            ("journal_records", stats_before_snap.records.to_string()),
            (
                "records_per_syscall",
                format!("{records_per_syscall:.3}"),
            ),
            ("journal_bytes_pre_snapshot", bytes_full.to_string()),
            ("bytes_per_record", format!("{bytes_per_record:.1}")),
            ("snapshot_bytes", stats.snapshot_bytes.to_string()),
            ("compacted_bytes", compacted.to_string()),
            ("warm_replay_syscalls", rep2.replay_syscalls.to_string()),
            (
                "warm_replay_records",
                rep2.records_replayed.to_string(),
            ),
            (
                "note",
                "\"counts are deterministic; wall-clock series in criterion output is machine-dependent\"".to_string(),
            ),
        ],
    );

    // Wall-clock series: append overhead on the install path, and the
    // restore itself (replay-heavy log, snapshot-only log).
    let mut g = c.benchmark_group("journal");
    g.sample_size(10);
    for n in [256usize, 1000] {
        g.bench_with_input(BenchmarkId::new("install_unjournaled", n), &n, |b, &n| {
            b.iter(|| world(false, true, n))
        });
        g.bench_with_input(BenchmarkId::new("install_journaled", n), &n, |b, &n| {
            b.iter(|| world(true, true, n))
        });
    }
    g.bench_function("restore_replay_heavy", |b| {
        b.iter(|| Filesystem::restore_from_journal(&rbytes, Limits::default(), 8, true))
    });
    let snap_bytes = fs.journal_bytes();
    g.bench_function("restore_snapshot_only", |b| {
        b.iter(|| Filesystem::restore_from_journal(&snap_bytes, Limits::default(), 8, true))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
