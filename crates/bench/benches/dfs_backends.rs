//! E11 + E12 — distributed-controller trade-offs: write-visibility latency
//! and message cost per backend, vs node count and link latency (§6's
//! "varying trade-offs", measured).
//!
//! Shape expectations (on the virtual clock, deterministic): central —
//! non-primary writes cost 2·latency, primary writes 1·latency, every op
//! funnels through the primary (message hotspot); DHT — same per-write
//! latencies but ordering load spreads over nodes; policy/eventual —
//! every write is 1·latency. Wall-clock replication throughput should
//! degrade gracefully with node count for all backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc_dfs::{Backend, Cluster};
use yanc_vfs::Credentials;

fn visibility_table() {
    println!("\nE12: write-visibility latency (virtual µs, link latency 100µs)");
    println!(
        "{:>8} {:>22} {:>18} {:>18}",
        "nodes", "central(non-primary)", "dht(mean of 8)", "eventual"
    );
    for nodes in [2usize, 4, 8] {
        let mut central = Cluster::new(nodes, Backend::Central { primary: 0 }, 100, "/net");
        let c = central.timed_write(nodes - 1, "/net/x", b"1");

        let mut dht = Cluster::new(nodes, Backend::Dht, 100, "/net");
        let mut total = 0;
        for i in 0..8 {
            total += dht.timed_write(nodes - 1, &format!("/net/k{i}"), b"1");
        }
        let d = total / 8;

        let mut pol = Cluster::new(nodes, Backend::Policy, 100, "/net");
        for n in &pol.nodes {
            n.fs.mkdir_all("/net/ev", yanc_vfs::Mode::DIR_DEFAULT, &Credentials::root())
                .unwrap();
            n.fs.set_xattr(
                "/net/ev",
                "user.consistency",
                b"eventual",
                &Credentials::root(),
            )
            .unwrap();
        }
        pol.pump();
        let e = pol.timed_write(nodes - 1, "/net/ev/x", b"1");
        println!("{nodes:>8} {c:>22} {d:>18} {e:>18}");
    }

    println!("\nE12: ordering-hotspot messages per backend (16 writes from 4 nodes)");
    for (label, backend) in [
        ("central", Backend::Central { primary: 0 }),
        ("dht", Backend::Dht),
    ] {
        let mut cl = Cluster::new(4, backend, 10, "/net");
        for i in 0..16 {
            cl.nodes[i % 4]
                .fs
                .write_file(&format!("/net/k{i}"), b"v", &Credentials::root())
                .unwrap();
        }
        cl.pump();
        println!(
            "  {label:<8} forwarded={:<4} total messages={}",
            cl.stats.forwarded, cl.stats.messages
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    visibility_table();

    let mut g = c.benchmark_group("dfs_replication_throughput");
    g.sample_size(10);
    for nodes in [2usize, 4, 8] {
        for (label, backend) in [
            ("central", Backend::Central { primary: 0 }),
            ("dht", Backend::Dht),
            ("policy", Backend::Policy),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, nodes),
                &(nodes, backend),
                |b, &(n, backend)| {
                    b.iter_with_setup(
                        || Cluster::new(n, backend, 10, "/net"),
                        |mut cl| {
                            for i in 0..50 {
                                cl.nodes[i % n]
                                    .fs
                                    .write_file(
                                        &format!("/net/k{i}"),
                                        b"value",
                                        &Credentials::root(),
                                    )
                                    .unwrap();
                            }
                            cl.pump();
                            cl
                        },
                    )
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
