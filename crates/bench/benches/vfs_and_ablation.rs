//! Substrate micro-benchmarks + ablations of the design choices DESIGN.md
//! calls out:
//!
//! * raw vfs operation latencies (the per-"syscall" cost everything else
//!   multiplies),
//! * ablation A1 — semantic hooks on vs off (what does the schema layer
//!   cost per mkdir?),
//! * ablation A2 — notify fan-out on vs off for plain writes (watching is
//!   "free" for non-watchers),
//! * ablation A3 — flow-table lookup vs table size and match specificity
//!   (priority scan cost in the simulated switch).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::YancHook;
use yanc_dataplane::{entry, FlowTable};
use yanc_openflow::{Action, FlowMatch};
use yanc_packet::{build_tcp_syn, MacAddr, PacketSummary};
use yanc_vfs::{Credentials, EventMask, Filesystem, Mode};

fn bench_vfs_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("vfs_ops");
    g.sample_size(20);
    let fs = Filesystem::new();
    let creds = Credentials::root();
    fs.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &creds)
        .unwrap();
    fs.write_file("/net/switches/sw1/id", b"0x1", &creds)
        .unwrap();

    g.bench_function("stat", |b| {
        b.iter(|| fs.stat("/net/switches/sw1/id", &creds).unwrap())
    });
    g.bench_function("read_small_file", |b| {
        b.iter(|| fs.read_file("/net/switches/sw1/id", &creds).unwrap())
    });
    g.bench_function("write_small_file", |b| {
        b.iter(|| {
            fs.write_file("/net/switches/sw1/scratch", b"xyz", &creds)
                .unwrap()
        })
    });
    let mut i = 0u64;
    g.bench_function("create_unlink", |b| {
        b.iter(|| {
            i += 1;
            let p = format!("/net/switches/sw1/flows/tmp{i}");
            fs.write_file(&p, b"1", &creds).unwrap();
            fs.unlink(&p, &creds).unwrap();
        })
    });
    g.bench_function("deep_path_resolution", |b| {
        fs.mkdir_all("/a/b/c/d/e/f/g/h", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.write_file("/a/b/c/d/e/f/g/h/leaf", b"x", &creds)
            .unwrap();
        b.iter(|| fs.read_file("/a/b/c/d/e/f/g/h/leaf", &creds).unwrap())
    });
    g.finish();
}

fn bench_hook_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hooks");
    g.sample_size(20);
    let creds = Credentials::root();
    let mut i = 0u64;
    g.bench_function("mkdir_flow_without_hooks", |b| {
        let fs = Filesystem::new();
        fs.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        b.iter(|| {
            i += 1;
            fs.mkdir(
                &format!("/net/switches/sw1/flows/f{i}"),
                Mode::DIR_DEFAULT,
                &creds,
            )
            .unwrap()
        })
    });
    let mut j = 0u64;
    g.bench_function("mkdir_flow_with_hooks", |b| {
        let fs = Filesystem::new();
        fs.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.add_hook(Arc::new(YancHook::new("/net")));
        b.iter(|| {
            j += 1;
            // The hook auto-creates version + counters — 2 extra objects.
            fs.mkdir(
                &format!("/net/switches/sw1/flows/g{j}"),
                Mode::DIR_DEFAULT,
                &creds,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_notify_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_notify");
    g.sample_size(20);
    let creds = Credentials::root();
    g.bench_function("write_no_watchers", |b| {
        let fs = Filesystem::new();
        b.iter(|| fs.write_file("/f", b"x", &creds).unwrap())
    });
    g.bench_function("write_100_unrelated_watchers", |b| {
        let fs = Filesystem::new();
        fs.mkdir_all("/other", Mode::DIR_DEFAULT, &creds).unwrap();
        let _w: Vec<_> = (0..100)
            .map(|_| fs.watch("/other").mask(EventMask::ALL).register().unwrap())
            .collect();
        b.iter(|| fs.write_file("/f", b"x", &creds).unwrap())
    });
    g.bench_function("write_one_subtree_watcher", |b| {
        let fs = Filesystem::new();
        let watch = fs
            .watch("/")
            .subtree()
            .mask(EventMask::ALL)
            .register()
            .unwrap();
        b.iter(|| {
            fs.write_file("/f", b"x", &creds).unwrap();
            while watch.receiver().try_recv().is_ok() {}
        })
    });
    g.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flow_table_lookup");
    g.sample_size(20);
    let frame = build_tcp_syn(
        MacAddr::from_seed(1),
        MacAddr::from_seed(2),
        "10.0.0.1".parse().unwrap(),
        "10.0.0.2".parse().unwrap(),
        40000,
        22,
    );
    let pkt = PacketSummary::parse(&frame).unwrap();
    for size in [10usize, 100, 1000] {
        // Worst case: the matching entry is the lowest priority.
        g.bench_with_input(
            BenchmarkId::new("miss_then_hit_last", size),
            &size,
            |b, &n| {
                let mut t = FlowTable::new();
                for i in 0..n {
                    // Non-matching specific entries at high priority.
                    let m = FlowMatch {
                        tp_dst: Some(30000 + i as u16),
                        ..Default::default()
                    };
                    t.add(entry(m, 1000 + i as u16, vec![Action::out(1)]), 0);
                }
                t.add(entry(FlowMatch::any(), 1, vec![Action::out(2)]), 0);
                b.iter(|| t.lookup(&pkt, 1, 64, 0).unwrap())
            },
        );
        g.bench_with_input(BenchmarkId::new("hit_first", size), &size, |b, &n| {
            let mut t = FlowTable::new();
            for i in 0..n {
                let m = FlowMatch {
                    tp_dst: Some(30000 + i as u16),
                    ..Default::default()
                };
                t.add(entry(m, 100, vec![Action::out(1)]), 0);
            }
            let m = FlowMatch {
                tp_dst: Some(22),
                ..Default::default()
            };
            t.add(entry(m, 60000, vec![Action::out(2)]), 0);
            b.iter(|| t.lookup(&pkt, 1, 64, 0).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vfs_ops,
    bench_hook_ablation,
    bench_notify_ablation,
    bench_flow_table
);
criterion_main!(benches);
