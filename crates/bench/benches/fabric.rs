//! E26 — data-center fabric at scale: a k=32 fat tree (1280 switches,
//! 8192 hosts, 40960 ports) brought up, stormed with packet-ins,
//! bulk-programmed and then left idle — every phase reported as exact,
//! machine-independent counts (the BENCH_fabric.json payload).
//!
//! The four claims, matching `tests/fabric_scale.rs` at small k:
//!
//! - bring-up costs exactly `14·switches + 2·ports` charged syscalls
//!   (batched switch + port materialization);
//! - a packet-in storm costs a fixed number of syscalls per packet-in,
//!   independent of fabric size;
//! - bulk flow install through the descriptor fast path costs exactly
//!   6 syscalls per flow plus open/close per switch, and a fixed number
//!   of notify events per flow;
//! - the idle fabric costs **zero** runtime iterations — 1280 quiesced
//!   drivers are free under the event-driven scheduler
//!   (`/net/.proc/driver/sched`).
//!
//! The criterion series puts wall-clock next to the counts: bring-up
//! time vs k, and one storm round on the big fabric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::FlowSpec;
use yanc_dataplane::{FabricTier, FatTree};
use yanc_driver::Runtime;
use yanc_harness::build_fabric;
use yanc_openflow::{Action, FlowMatch, Version};
use yanc_vfs::EventMask;

const K: u16 = 32;

fn total_syscalls(rt: &Runtime) -> u64 {
    rt.yfs.filesystem().counters().total()
}

fn sched_counter(rt: &Runtime, key: &str) -> u64 {
    let text = rt
        .yfs
        .filesystem()
        .read_to_string("/net/.proc/driver/sched", rt.yfs.creds())
        .unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let ft = FatTree::new(K);
    let n_sw = ft.n_switches();
    let n_ports = n_sw * K as usize;

    // ---- Phase 1: bring-up --------------------------------------------
    let mut rt = Runtime::new();
    rt.enable_introspection().unwrap();
    let base = total_syscalls(&rt);
    let topo = build_fabric(&mut rt, K, Version::V1_3);
    let bringup = total_syscalls(&rt) - base;
    assert_eq!(topo.switches.len(), 1280);
    assert_eq!(topo.hosts.len(), 8192);
    assert_eq!(
        bringup,
        (14 * n_sw + 2 * n_ports) as u64,
        "bring-up budget drifted from 14/switch + 2/port"
    );

    // ---- Phase 2: packet-in storm -------------------------------------
    // One ping per edge switch, no flows installed anywhere: every ping
    // ARPs, misses, and becomes exactly one packet-in at its edge. A
    // subscriber drains them so the fan-out path is exercised too.
    let sub = rt.yfs.subscribe_events("storm").unwrap();
    let half = (K / 2) as usize;
    let n_edges = K as usize * half; // 512
    let before = total_syscalls(&rt);
    for e in 0..n_edges {
        // hosts are pod-major, k/2 consecutive slots per edge
        let (src, _) = topo.hosts[e * half];
        let (_, dst_ip) = topo.hosts[e * half + 1];
        rt.net.host_ping(src, dst_ip, 1);
    }
    rt.pump().unwrap();
    let storm_syscalls = total_syscalls(&rt) - before;
    let storm_packetins = sub.poll().len();
    assert_eq!(storm_packetins, n_edges, "one packet-in per stormed edge");
    assert_eq!(
        storm_syscalls % storm_packetins as u64,
        0,
        "storm cost must be an exact per-packet-in rate"
    );
    let syscalls_per_packetin = storm_syscalls / storm_packetins as u64;
    drop(sub);

    // ---- Phase 3: bulk flow install -----------------------------------
    // 4 flows per edge switch (2048 total) through the descriptor fast
    // path, with a subtree watch counting the notify traffic.
    const FLOWS_PER_EDGE: usize = 4;
    let edges: Vec<String> = ft
        .switches()
        .iter()
        .filter(|s| s.tier == FabricTier::Edge)
        .map(|s| s.name.clone())
        .collect();
    let watch = rt
        .yfs
        .filesystem()
        .watch("/net/switches")
        .subtree()
        .mask(EventMask::ALL)
        .register()
        .unwrap();
    let before = total_syscalls(&rt);
    for sw in &edges {
        let fd = rt.yfs.open_flows_dir(sw).unwrap();
        for i in 0..FLOWS_PER_EDGE {
            let spec = FlowSpec {
                m: FlowMatch {
                    in_port: Some(1 + i as u16),
                    ..Default::default()
                },
                actions: vec![Action::out(K / 2 + 1)], // first uplink
                priority: 200 + i as u16,
                ..Default::default()
            };
            rt.yfs.write_flow_at(fd, &format!("up{i}"), &spec).unwrap();
        }
        rt.yfs.filesystem().close(fd, rt.yfs.creds()).unwrap();
    }
    let install_syscalls = total_syscalls(&rt) - before;
    let n_flows = edges.len() * FLOWS_PER_EDGE;
    assert_eq!(
        install_syscalls,
        (edges.len() * (2 + 6 * FLOWS_PER_EDGE)) as u64,
        "bulk install budget drifted from 6/flow + open/close per switch"
    );
    let notify_events = watch.receiver().try_iter().count();
    assert_eq!(
        notify_events % n_flows,
        0,
        "notify traffic must be an exact per-flow rate"
    );
    let events_per_flow = notify_events / n_flows;
    drop(watch);
    rt.pump().unwrap(); // drivers pick the installs up

    // ---- Phase 4: idle fabric -----------------------------------------
    let runs_before = sched_counter(&rt, "runs");
    let idle_before = sched_counter(&rt, "idle_pumps");
    let iterations = rt.pump().unwrap();
    assert_eq!(iterations, 0, "idle fabric must cost zero sweeps");
    assert_eq!(sched_counter(&rt, "runs"), runs_before);
    assert_eq!(sched_counter(&rt, "idle_pumps"), idle_before + 1);

    println!("\nE26: k={K} fat tree — {n_sw} switches, 8192 hosts");
    println!("{:>32} {:>12}", "metric", "value");
    println!("{:>32} {:>12}", "bring-up syscalls", bringup);
    println!(
        "{:>32} {:>12}",
        "  per switch (14 + 2/port)",
        bringup / n_sw as u64
    );
    println!("{:>32} {:>12}", "storm packet-ins", storm_packetins);
    println!(
        "{:>32} {:>12}",
        "  syscalls/packet-in", syscalls_per_packetin
    );
    println!("{:>32} {:>12}", "flows installed", n_flows);
    println!("{:>32} {:>12}", "  syscalls/flow", 6);
    println!("{:>32} {:>12}", "  notify events/flow", events_per_flow);
    println!("{:>32} {:>12}", "idle pump iterations", iterations);

    yanc_harness::write_bench_report(
        "fabric",
        rt.yfs.filesystem(),
        &[
            (
                "experiment",
                "\"E26 data-center fabric at scale\"".to_string(),
            ),
            ("k", K.to_string()),
            ("switches", n_sw.to_string()),
            ("hosts", topo.hosts.len().to_string()),
            ("ports", n_ports.to_string()),
            ("bringup_syscalls", bringup.to_string()),
            (
                "bringup_syscalls_per_switch",
                (bringup / n_sw as u64).to_string(),
            ),
            (
                "bringup_model",
                "\"14 per switch + 2 per port\"".to_string(),
            ),
            ("storm_packetins", storm_packetins.to_string()),
            (
                "storm_syscalls_per_packetin",
                syscalls_per_packetin.to_string(),
            ),
            ("bulk_flows", n_flows.to_string()),
            ("install_syscalls_per_flow", "6".to_string()),
            ("notify_events_per_flow", events_per_flow.to_string()),
            ("idle_pump_iterations", iterations.to_string()),
            ("sched_runs", sched_counter(&rt, "runs").to_string()),
            ("sched_skips", sched_counter(&rt, "skips").to_string()),
            (
                "sched_idle_pumps",
                sched_counter(&rt, "idle_pumps").to_string(),
            ),
            (
                "note",
                "\"counts are deterministic; criterion series is machine-dependent\"".to_string(),
            ),
        ],
    );

    // ---- Wall-clock series --------------------------------------------
    let mut g = c.benchmark_group("fabric");
    g.sample_size(10);
    for k in [4u16, 8, 16] {
        g.bench_with_input(BenchmarkId::new("bringup", k), &k, |b, &k| {
            b.iter(|| {
                let mut rt = Runtime::new();
                build_fabric(&mut rt, k, Version::V1_3)
            })
        });
    }
    g.bench_function("storm_round_k8", |b| {
        let mut rt = Runtime::new();
        let topo = build_fabric(&mut rt, 8, Version::V1_3);
        let mut seq = 1u16;
        b.iter(|| {
            for e in 0..32usize {
                let (src, _) = topo.hosts[e * 4];
                let (_, dst_ip) = topo.hosts[e * 4 + 1];
                rt.net.host_ping(src, dst_ip, seq);
            }
            seq = seq.wrapping_add(1);
            rt.pump().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
