//! E25 — the optimistic lock-free read path: a 1k-flow `stat` sweep
//! over `/net/switches/sw0/flows/d<i>`, locked (readpath-off filesystem)
//! vs warm-optimistic (readpath-on, blocks filled) vs post-invalidation
//! (a `chmod` on the flows directory bumped its shard's seqlock).
//!
//! The deterministic, machine-independent metric is **shard-lock
//! acquisitions** (`Filesystem::lock_acquisitions`): with a warm dcache
//! the locked path still takes exactly one shard read lock per stat; the
//! optimistic path takes **zero**. EXPERIMENTS.md E25 pins warm locks
//! per stat at 0; the wall-clock criterion series shows the same gap in
//! time. A deterministic chmod/stat storm then shows the fallback ladder
//! staying correct: every invalidation costs exactly one locked refill
//! and the served modes are never stale.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc::{FlowSpec, YancFs};
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix};
use yanc_packet::MacAddr;
use yanc_vfs::{Filesystem, Mode};

fn spec(i: usize) -> FlowSpec {
    FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            dl_src: Some(MacAddr::from_seed(1)),
            dl_dst: Some(MacAddr::from_seed(2)),
            nw_dst: Ipv4Prefix::parse("10.1.0.0/16"),
            tp_dst: Some((i % 60_000) as u16),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 900,
        ..Default::default()
    }
}

/// A switch with `n` installed flows, dcache always on, readpath
/// per-flavour.
fn world(readpath: bool, n: usize) -> YancFs {
    let fs = Filesystem::builder().readpath(readpath).build();
    let yfs = YancFs::init(Arc::new(fs), "/net").unwrap();
    yfs.create_switch("sw0", 0x25, 0, 0, 0, 1).unwrap();
    let flows = yfs.open_flows_dir("sw0").unwrap();
    for i in 0..n {
        yfs.write_flow_at(flows, &format!("d{i}"), &spec(i))
            .unwrap();
    }
    yfs.filesystem().close(flows, yfs.creds()).unwrap();
    yfs
}

/// Stat every flow directory once; return (shard-lock acquisitions,
/// charged syscalls) for the sweep.
fn sweep(yfs: &YancFs, n: usize) -> (u64, u64) {
    let fs = yfs.filesystem();
    let locks = fs.lock_acquisitions();
    let sys = fs.counters().snapshot();
    for i in 0..n {
        fs.stat(&format!("/net/switches/sw0/flows/d{i}"), yfs.creds())
            .unwrap();
    }
    (
        fs.lock_acquisitions() - locks,
        fs.counters().snapshot().since(&sys).total(),
    )
}

fn bench(c: &mut Criterion) {
    const N: usize = 1000;

    // Locked arm: readpath off. Warm the dcache first so the measured
    // sweep isolates the read-lock cost of the stat itself — exactly one
    // shard read lock per stat, none for resolution.
    let off = world(false, N);
    sweep(&off, N);
    let (locked_locks, locked_sys) = sweep(&off, N);

    // Optimistic arm: first sweep fills the attribute blocks through the
    // locked fallback, second is the measurement.
    let on = world(true, N);
    sweep(&on, N);
    let hits0 = on.filesystem().readpath_stats().optimistic_hits;
    let (warm_locks, warm_sys) = sweep(&on, N);
    let warm_hits = on.filesystem().readpath_stats().optimistic_hits - hits0;

    // Post-invalidation: chmod a flow dir. That bumps *its shard's*
    // seqlock, so the next sweep pays one locked attr refill for d0 and
    // for every other flow dir that happens to share d0's shard (how
    // many depends on ino-to-shard aliasing), plus any dcache refills.
    // The sweep after that is fully re-warmed.
    on.filesystem()
        .chmod("/net/switches/sw0/flows/d0", Mode(0o700), on.creds())
        .unwrap();
    let fallbacks0 = on.filesystem().readpath_stats().fallbacks;
    let (post_locks, _) = sweep(&on, N);
    let post_fallbacks = on.filesystem().readpath_stats().fallbacks - fallbacks0;
    let (rewarm_locks, _) = sweep(&on, N);

    // Deterministic retry storm: every chmod invalidates the flow's
    // shard, so every following stat is exactly one locked fallback and
    // the mode it returns is exactly the one just written — the ladder
    // converges and never serves a dead generation.
    const STORM: usize = 200;
    let storm_stats0 = on.filesystem().readpath_stats();
    for i in 0..STORM {
        let mode = if i % 2 == 0 { Mode(0o700) } else { Mode(0o755) };
        on.filesystem()
            .chmod("/net/switches/sw0/flows/d0", mode, on.creds())
            .unwrap();
        let st = on
            .filesystem()
            .stat("/net/switches/sw0/flows/d0", on.creds())
            .unwrap();
        assert_eq!(st.mode, mode, "storm served a stale generation");
    }
    let storm_stats = on.filesystem().readpath_stats();
    let storm_fallbacks = storm_stats.fallbacks - storm_stats0.fallbacks;
    let storm_retries = storm_stats.optimistic_retries - storm_stats0.optimistic_retries;

    let per_locked = locked_locks as f64 / N as f64;
    println!("\nE25: shard-lock acquisitions per {N}-flow stat sweep (warm dcache)");
    println!("{:>22} {:>12} {:>10}", "phase", "locks", "per stat");
    println!(
        "{:>22} {locked_locks:>12} {per_locked:>10.2}",
        "locked (readpath off)"
    );
    println!(
        "{:>22} {warm_locks:>12} {:>10.2}",
        "warm optimistic",
        warm_locks as f64 / N as f64
    );
    println!(
        "{:>22} {post_locks:>12} {:>10.2}",
        "post-invalidation",
        post_locks as f64 / N as f64
    );
    println!(
        "{:>22} {storm_fallbacks:>12} (of {STORM} invalidating steps)",
        "storm fallbacks"
    );

    // The pinned claims (deterministic; also pinned as tier-1 tests).
    assert_eq!(
        warm_locks, 0,
        "E25 regression: warm optimistic sweep took shard locks"
    );
    assert_eq!(warm_hits as usize, N, "not every warm stat was optimistic");
    assert_eq!(
        locked_locks as usize, N,
        "locked arm should take exactly one shard lock per warm stat"
    );
    // The read path is transparent to the syscall accounting model.
    assert_eq!(locked_sys, warm_sys, "readpath changed charged syscalls");
    // Invalidation really forced locked refills — and a single refill
    // sweep restores the zero-lock steady state.
    assert!(post_fallbacks > 0, "the chmod invalidated nothing");
    assert!(post_fallbacks as usize <= N);
    assert!(post_locks >= post_fallbacks, "each fallback takes a lock");
    assert_eq!(
        rewarm_locks, 0,
        "one refill sweep must restore the zero-lock steady state"
    );
    // The storm converged through the ladder: one fallback per
    // invalidation, retries bounded by the ladder depth.
    assert_eq!(storm_fallbacks as usize, STORM);
    assert!(storm_retries <= (storm_fallbacks + storm_stats.optimistic_hits) * 4);

    let s = on.filesystem().readpath_stats();
    yanc_harness::write_bench_report(
        "read_fastpath",
        on.filesystem(),
        &[
            ("experiment", "\"E25 lock-free read path\"".to_string()),
            ("flows", N.to_string()),
            ("locked_locks", locked_locks.to_string()),
            ("locked_locks_per_stat", format!("{per_locked:.2}")),
            ("warm_locks", warm_locks.to_string()),
            ("warm_locks_per_stat", "0.00".to_string()),
            ("post_invalidation_locks", post_locks.to_string()),
            ("storm_steps", STORM.to_string()),
            ("storm_fallbacks", storm_fallbacks.to_string()),
            ("storm_retries", storm_retries.to_string()),
            ("optimistic_hits", s.optimistic_hits.to_string()),
            ("optimistic_retries", s.optimistic_retries.to_string()),
            ("fallbacks", s.fallbacks.to_string()),
            ("attr_fills", s.attr_fills.to_string()),
            (
                "note",
                "\"lock counts are deterministic; wall-clock series in criterion output is single-core and machine-dependent\"".to_string(),
            ),
        ],
    );

    // Wall-clock series: the lock gap is also a time gap. Both sweeps
    // are idempotent on their filesystem, so no per-iter setup.
    let mut g = c.benchmark_group("read_fastpath");
    g.sample_size(10);
    for n in [256usize, 1000] {
        g.bench_with_input(BenchmarkId::new("locked_stat_sweep", n), &n, |b, &n| {
            b.iter(|| sweep(&off, n))
        });
        g.bench_with_input(BenchmarkId::new("warm_stat_sweep", n), &n, |b, &n| {
            b.iter(|| sweep(&on, n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
