//! E27 — multi-core driver pump: the same k=8 fabric replay at worker
//! counts 1/2/4/8, with every *claim* pinned on deterministic counters
//! and only the throughput series left to wall clock.
//!
//! Phase A (deterministic, asserted):
//!
//! - **Worker-count invariance** — a seeded storm + stats-poll replay
//!   at workers=1 and workers=4 produces identical sweep counts,
//!   identical total charged syscalls, and an identical content digest
//!   of `/net` (names, bytes, ownership). Parallelism changes which
//!   thread runs a driver, never what the drivers do.
//! - **Fan-in flush cost** — a `write_counters_batch` costs exactly
//!   3 syscalls regardless of entry count, so with epoch fan-in the
//!   counter-write cost of a stats poll is `3·flushes` syscalls for
//!   `replies` stats replies: the syscalls-per-reply ratio is pinned
//!   strictly below 1 at k=8 (80 switches), and the flush/reply counts
//!   themselves are pinned worker-count-invariant.
//! - **Work stealing** — with worker 0 gated as a straggler, every one
//!   of its dispatches is stolen by a peer: steals == runs over the
//!   storm, and the straggler's own run counter does not move.
//!
//! Phase B (criterion, reported only): storm-round throughput at
//! workers=1/2/4/8. This host has a single core, so the series shows
//! coordination overhead rather than speedup; the counters above are
//! the machine-independent record. BENCH_fabric_par.json carries both.

use std::sync::atomic::Ordering;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc_driver::ParRuntime;
use yanc_harness::build_fabric;
use yanc_openflow::Version;

const K: u16 = 8;

fn total_syscalls(rt: &ParRuntime) -> u64 {
    rt.yfs.filesystem().counters().total()
}

/// Seeded replay: bring up a k=8 fabric, storm a ping from every host,
/// poll stats, and pump to idle. Returns everything the invariance
/// claim pins: per-phase sweeps, total syscalls, sched runs, and the
/// schedule-independent content digest of `/net`.
fn run_replay(workers: usize) -> (Vec<u32>, u64, u64, u64) {
    let mut rt = ParRuntime::with_workers(workers);
    let mut sweeps = Vec::new();
    let topo = build_fabric(&mut rt, K, Version::V1_3);
    let hosts = topo.hosts.clone();
    for (i, &(h, _)) in hosts.iter().enumerate() {
        let (_, dst) = hosts[(i + 1) % hosts.len()];
        rt.net.host_ping(h, dst, (i + 1) as u16);
    }
    sweeps.push(rt.pump().unwrap());
    sweeps.push(rt.poll_stats().unwrap());
    sweeps.push(rt.pump().unwrap());
    let sched = rt.sched_stats();
    (
        sweeps,
        total_syscalls(&rt),
        sched.runs.load(Ordering::Relaxed),
        rt.yfs.filesystem().content_digest(),
    )
}

/// Same fabric with epoch fan-in enabled: returns (flushes, replies)
/// after one storm + stats poll.
fn run_fanin(workers: usize) -> (u64, u64) {
    let mut rt = ParRuntime::with_workers(workers);
    let fanin = rt.enable_fanin(0);
    let topo = build_fabric(&mut rt, K, Version::V1_3);
    let hosts = topo.hosts.clone();
    for (i, &(h, _)) in hosts.iter().enumerate() {
        let (_, dst) = hosts[(i + 1) % hosts.len()];
        rt.net.host_ping(h, dst, (i + 1) as u16);
    }
    rt.pump().unwrap();
    rt.poll_stats().unwrap();
    rt.pump().unwrap();
    (fanin.flushes(), fanin.replies())
}

fn bench(c: &mut Criterion) {
    // ---- Phase A.1: worker-count invariance ---------------------------
    let (sweeps_1, syscalls_1, runs_1, content_1) = run_replay(1);
    let (sweeps_4, syscalls_4, runs_4, content_4) = run_replay(4);
    assert_eq!(sweeps_1, sweeps_4, "sweep counts diverged across workers");
    assert_eq!(
        syscalls_1, syscalls_4,
        "total charged syscalls diverged across workers"
    );
    assert_eq!(runs_1, runs_4, "sched runs diverged across workers");
    assert_eq!(
        content_1, content_4,
        "/net content digest diverged across workers"
    );

    // ---- Phase A.2: fan-in flush cost ---------------------------------
    // First pin the constant: one write_counters_batch is 3 syscalls no
    // matter how many counters ride in it.
    let mut probe = ParRuntime::with_workers(1);
    let sw = probe.add_switch_with_driver(0xA, 4, 1, vec![Version::V1_3], Version::V1_3);
    probe.pump().unwrap();
    let dir = probe.yfs.switch_dir(&sw);
    let entries: Vec<(String, u64)> = (0..16)
        .map(|i| (format!("counters/c{i}"), i as u64))
        .collect();
    let before = total_syscalls(&probe);
    probe.yfs.write_counters_batch(&dir, &entries).unwrap();
    let batch_syscalls = total_syscalls(&probe) - before;
    assert_eq!(batch_syscalls, 3, "write_counters_batch cost drifted");

    let (flushes, replies) = run_fanin(1);
    assert!(replies > 0, "stats poll produced no fan-in replies");
    assert!(flushes > 0, "fan-in never flushed");
    let flush_syscalls = batch_syscalls * flushes;
    assert!(
        flush_syscalls < replies,
        "counter-write syscalls per stats reply must be < 1 \
         ({flush_syscalls} flush syscalls for {replies} replies)"
    );
    for workers in [2usize, 4] {
        let (f, r) = run_fanin(workers);
        assert_eq!((f, r), (flushes, replies), "fan-in counts vary by workers");
    }

    // ---- Phase A.3: stealing under a straggler ------------------------
    let mut rt = ParRuntime::with_workers(4);
    let topo = build_fabric(&mut rt, K, Version::V1_3);
    rt.inject_straggler(Some(0));
    let sum = |rt: &ParRuntime,
               f: fn(&yanc_driver::WorkerStats) -> &std::sync::atomic::AtomicU64| {
        rt.worker_stats()
            .iter()
            .map(|w| f(w).load(Ordering::Relaxed))
            .sum::<u64>()
    };
    let runs_before = sum(&rt, |w| &w.runs);
    let steals_before = sum(&rt, |w| &w.steals);
    let straggler_before = rt.worker_stats()[0].runs.load(Ordering::Relaxed);
    let hosts = topo.hosts.clone();
    for (i, &(h, _)) in hosts.iter().enumerate() {
        let (_, dst) = hosts[(i + 1) % hosts.len()];
        rt.net.host_ping(h, dst, (i + 1) as u16);
    }
    rt.pump().unwrap();
    let stolen = sum(&rt, |w| &w.steals) - steals_before;
    let ran = sum(&rt, |w| &w.runs) - runs_before;
    assert!(ran >= 1, "storm dispatched no drivers");
    assert_eq!(stolen, ran, "straggler work not fully stolen");
    assert_eq!(
        rt.worker_stats()[0].runs.load(Ordering::Relaxed),
        straggler_before,
        "gated straggler ran a driver"
    );

    println!("\nE27: k={K} fat tree, multi-core pump");
    println!("{:>36} {:>14}", "metric", "value");
    println!("{:>36} {:>14}", "replay total syscalls (w=1)", syscalls_1);
    println!("{:>36} {:>14}", "replay total syscalls (w=4)", syscalls_4);
    println!(
        "{:>36} {:>14}",
        "content digest match",
        content_1 == content_4
    );
    println!("{:>36} {:>14}", "fan-in stats replies", replies);
    println!("{:>36} {:>14}", "fan-in flushes", flushes);
    println!(
        "{:>36} {:>14.4}",
        "counter syscalls / reply",
        flush_syscalls as f64 / replies as f64
    );
    println!("{:>36} {:>14}", "straggler dispatches stolen", stolen);

    yanc_harness::write_bench_report(
        "fabric_par",
        rt.yfs.filesystem(),
        &[
            ("experiment", "\"E27 multi-core driver pump\"".to_string()),
            ("k", K.to_string()),
            ("switches", topo.switches.len().to_string()),
            ("hosts", hosts.len().to_string()),
            ("replay_sweeps", format!("{sweeps_1:?}")),
            ("replay_syscalls_workers1", syscalls_1.to_string()),
            ("replay_syscalls_workers4", syscalls_4.to_string()),
            ("replay_content_digest_match", "true".to_string()),
            ("batch_write_syscalls", batch_syscalls.to_string()),
            ("fanin_replies", replies.to_string()),
            ("fanin_flushes", flushes.to_string()),
            (
                "fanin_syscalls_per_reply",
                format!("{:.4}", flush_syscalls as f64 / replies as f64),
            ),
            ("straggler_steals", stolen.to_string()),
            ("straggler_runs", ran.to_string()),
            (
                "note",
                "\"counters are deterministic and worker-count-invariant; the \
                 criterion storm series ran on a 1-core host, so it measures \
                 coordination overhead, not speedup\""
                    .to_string(),
            ),
        ],
    );

    // ---- Phase B: wall-clock storm series -----------------------------
    let mut g = c.benchmark_group("fabric_par");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("storm_round_k8", workers),
            &workers,
            |b, &workers| {
                let mut rt = ParRuntime::with_workers(workers);
                let topo = build_fabric(&mut rt, K, Version::V1_3);
                let mut seq = 1u16;
                b.iter(|| {
                    for e in 0..32usize {
                        let (src, _) = topo.hosts[e * 4];
                        let (_, dst_ip) = topo.hosts[e * 4 + 1];
                        rt.net.host_ping(src, dst_ip, seq);
                    }
                    seq = seq.wrapping_add(1);
                    rt.pump().unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
