//! E17 — OpenFlow codec soundness & speed (substrate validation).
//!
//! Series: encode/decode throughput for FlowMod and PacketIn, both
//! protocol versions. Shape expectation: both versions within the same
//! order of magnitude; 1.3 slightly slower (OXM TLVs vs fixed struct).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use yanc_openflow::{
    decode, encode, Action, FlowMatch, FlowMod, FrameCodec, Ipv4Prefix, Message, Version,
};
use yanc_packet::MacAddr;

fn sample_flow_mod() -> Message {
    let m = FlowMatch {
        in_port: Some(3),
        dl_src: Some(MacAddr::from_seed(1)),
        dl_type: Some(0x0800),
        nw_proto: Some(6),
        nw_src: Ipv4Prefix::parse("10.0.0.0/24"),
        nw_dst: Ipv4Prefix::parse("10.1.0.0/16"),
        tp_dst: Some(22),
        ..Default::default()
    };
    let mut fm = FlowMod::add(
        m,
        900,
        vec![
            Action::SetDlDst(MacAddr::from_seed(9)),
            Action::SetNwTos(0x20),
            Action::out(2),
        ],
    );
    fm.idle_timeout = 30;
    fm.cookie = 0xfeed;
    Message::FlowMod(fm)
}

fn sample_packet_in() -> Message {
    Message::PacketIn {
        buffer_id: Some(42),
        total_len: 1500,
        in_port: 7,
        reason: yanc_openflow::PacketInReason::NoMatch,
        table_id: 0,
        data: bytes::Bytes::from(vec![0xa5u8; 128]),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("of_codec");
    g.sample_size(20);
    for v in [Version::V1_0, Version::V1_3] {
        for (label, msg) in [
            ("flow_mod", sample_flow_mod()),
            ("packet_in", sample_packet_in()),
        ] {
            let wire = encode(v, &msg, 1).unwrap();
            g.throughput(Throughput::Bytes(wire.len() as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("encode/{label}"), v),
                &msg,
                |b, m| b.iter(|| encode(v, m, 1).unwrap()),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("decode/{label}"), v),
                &wire,
                |b, w| {
                    b.iter(|| {
                        let mut codec = FrameCodec::new();
                        codec.feed(w);
                        let frame = codec.next_frame().unwrap().unwrap();
                        decode(&frame).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
