//! E14 — the headline §8.1 reproduction: "writing flow entries to
//! thousands of nodes will result in tens of thousands of context
//! switches", against libyanc's shared-memory fastpath.
//!
//! Two measurements per (switches, flows/switch) point:
//!   * deterministic **simulated-syscall counts** (printed once — the
//!     paper's context-switch proxy; exact, machine-independent),
//!   * wall-clock time per full write burst (criterion series).
//!
//! Shape expectation: fs-path syscalls grow as Θ(fields × flows ×
//! switches) — tens of thousands at 1000 switches — while the fastpath
//! performs zero file-system operations and is an order of magnitude
//! faster end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use libyanc::FlowChannel;
use std::sync::Arc;
use yanc::{FlowSpec, YancFs};
use yanc_openflow::{Action, FlowMatch};
use yanc_vfs::Filesystem;

fn spec(i: u16) -> FlowSpec {
    FlowSpec {
        m: FlowMatch {
            dl_type: Some(0x0800),
            nw_proto: Some(6),
            tp_dst: Some(i),
            nw_src: yanc_openflow::Ipv4Prefix::parse("10.0.0.0/24"),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 1000 + i,
        idle_timeout: 30,
        ..Default::default()
    }
}

/// Fresh tree with `n` switch skeletons.
fn world(n: usize) -> YancFs {
    let yfs = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
    for i in 0..n {
        yfs.create_switch(&format!("sw{i}"), i as u64, 0, 0, 0, 1)
            .unwrap();
    }
    yfs
}

fn fs_path_burst(yfs: &YancFs, switches: usize, flows: u16) {
    for s in 0..switches {
        let sw = format!("sw{s}");
        for f in 0..flows {
            yfs.write_flow(&sw, &format!("f{f}"), &spec(f)).unwrap();
        }
    }
}

fn fastpath_burst(ch: &FlowChannel, switches: usize, flows: u16) {
    for s in 0..switches {
        let sw = format!("sw{s}");
        for f in 0..flows {
            ch.install(&sw, &format!("f{f}"), spec(f)).unwrap();
        }
    }
    // Drain as the driver would (without a network, to isolate path cost).
    let _ = ch.drain();
}

fn bench(c: &mut Criterion) {
    // Deterministic syscall table (the paper's actual claim), printed once.
    println!("\nE14: simulated syscalls per flow-write burst (fs path vs libyanc fastpath)");
    println!(
        "{:>9} {:>12} {:>14} {:>14}",
        "switches", "flows/sw", "fs syscalls", "fastpath"
    );
    for (switches, flows) in [(10usize, 1u16), (100, 1), (1000, 1), (100, 10), (1000, 10)] {
        let yfs = world(switches);
        let before = yfs.filesystem().counters().snapshot();
        fs_path_burst(&yfs, switches, flows);
        let used = yfs.filesystem().counters().snapshot().since(&before);
        println!("{switches:>9} {flows:>12} {:>14} {:>14}", used.total(), 0);
    }
    println!();

    let mut g = c.benchmark_group("fastpath_vs_fs");
    g.sample_size(10);
    for switches in [10usize, 100, 500] {
        g.bench_with_input(BenchmarkId::new("fs_path", switches), &switches, |b, &n| {
            b.iter_with_setup(|| world(n), |yfs| fs_path_burst(&yfs, n, 1))
        });
        g.bench_with_input(
            BenchmarkId::new("fastpath", switches),
            &switches,
            |b, &n| b.iter_with_setup(|| FlowChannel::new(n * 2), |ch| fastpath_burst(&ch, n, 1)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
