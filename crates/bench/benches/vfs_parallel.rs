//! E20 — sharded-vfs scaling: ops/sec of a mixed open/read/write +
//! flow-commit workload as real threads are added, for the single-lock
//! configuration (`shards = 1`, every operation serializes on one lock)
//! versus the default sharded configuration (inode/handle tables split
//! across lock shards, canonical-order multi-shard acquisition).
//!
//! Shape expectations: with one shard, added threads mostly add lock
//! hand-offs, so throughput is flat-to-falling; with shards, threads
//! working in disjoint subtrees touch disjoint shards and throughput
//! holds or grows until the host runs out of cores. The speedup column is
//! wall-clock-honest for the machine the bench runs on — on a single-core
//! host it measures contention overhead avoided, not true parallelism.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use yanc_vfs::{Credentials, Filesystem, Mode, OpenFlags};

/// Per-thread working set: a private subtree with one data file and one
/// flow-style directory whose commit protocol is "write fields, bump
/// version last" — the same multi-file pattern `YancFs::write_flow` uses.
fn prepare(fs: &Filesystem, threads: usize) {
    let root = Credentials::root();
    for t in 0..threads {
        let dir = format!("/bench/t{t}");
        fs.mkdir_all(&format!("{dir}/flows/f0"), Mode::DIR_DEFAULT, &root)
            .unwrap();
        fs.write_file(&format!("{dir}/data"), b"seed", &root)
            .unwrap();
    }
}

/// One iteration of the mixed workload, ~10 counted syscalls.
fn mixed_iter(fs: &Filesystem, dir: &str, i: usize, creds: &Credentials) {
    // open/write/read/close cycle on the private data file.
    let fd = fs
        .open(&format!("{dir}/data"), OpenFlags::read_write(), creds)
        .unwrap();
    fs.write(fd, format!("payload-{i}").as_bytes()).unwrap();
    fs.seek(fd, 0).unwrap();
    fs.read(fd, 64).unwrap();
    fs.close(fd, creds).unwrap();
    // stat something shared (read-locks only on the hot shards).
    fs.stat("/bench", creds).unwrap();
    // flow-commit: field files first, version bump last.
    let flow = format!("{dir}/flows/f0");
    fs.write_file(&format!("{flow}/match"), b"tp_dst=22", creds)
        .unwrap();
    fs.write_file(&format!("{flow}/actions"), b"out:2", creds)
        .unwrap();
    fs.write_file(&format!("{flow}/version"), i.to_string().as_bytes(), creds)
        .unwrap();
}

/// Run `threads` workers for `iters` iterations each over a fresh
/// filesystem with `shards` lock shards; return ops/sec (counted syscalls
/// per wall-clock second).
fn run_mixed(shards: usize, threads: usize, iters: usize) -> f64 {
    let fs = Arc::new(Filesystem::builder().shards(shards).build());
    prepare(&fs, threads);
    let before = fs.counters().total();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let fs = Arc::clone(&fs);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let creds = Credentials::root();
                let dir = format!("/bench/t{t}");
                barrier.wait();
                for i in 0..iters {
                    mixed_iter(&fs, &dir, i, &creds);
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ops = fs.counters().total() - before;
    fs.check_invariants().unwrap();
    ops as f64 / elapsed
}

fn bench_vfs_parallel(c: &mut Criterion) {
    let iters = 10_000;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("\nE20: sharded vfs scaling — mixed open/read/write/flow-commit");
    println!("      ({iters} iters/thread, host parallelism {host_cores})");
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "threads", "1-shard ops/s", "8-shard ops/s", "speedup"
    );
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8, 16] {
        let single = run_mixed(1, threads, iters);
        let sharded = run_mixed(8, threads, iters);
        let speedup = sharded / single;
        println!("{threads:>8} {single:>16.0} {sharded:>16.0} {speedup:>8.2}x");
        rows.push(format!(
            "{{\"threads\": {threads}, \"ops_per_sec_1_shard\": {single:.0}, \
             \"ops_per_sec_8_shards\": {sharded:.0}, \"speedup\": {speedup:.2}}}"
        ));
    }
    println!();

    // Machine-readable artifact; the kernel metrics come from a fresh
    // deterministic single-threaded pass so the report tail is stable.
    let fs = Filesystem::builder().build();
    prepare(&fs, 1);
    let creds = Credentials::root();
    for i in 0..64 {
        mixed_iter(&fs, "/bench/t0", i, &creds);
    }
    yanc_harness::write_bench_report(
        "vfs_parallel",
        &fs,
        &[
            ("host_parallelism", host_cores.to_string()),
            ("iters_per_thread", iters.to_string()),
            (
                "note",
                format!(
                    "\"wall-clock ops/sec on a {host_cores}-core host; threads only \
                     run concurrently (and the shard configurations separate) when \
                     host_parallelism > 1\""
                ),
            ),
            ("scaling", format!("[{}]", rows.join(", "))),
        ],
    );

    let mut g = c.benchmark_group("vfs_parallel");
    g.sample_size(10);
    for &(shards, threads) in &[(1usize, 8usize), (8, 8)] {
        g.bench_with_input(
            BenchmarkId::new(format!("{shards}shard_mixed"), threads),
            &threads,
            |b, &threads| b.iter(|| run_mixed(shards, threads, 200)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_vfs_parallel);
criterion_main!(benches);
