//! yanc-bench: see benches/
