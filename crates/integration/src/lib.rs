//! yanc-integration: carries root tests/ and examples/
