//! Simulated end hosts with a miniature network stack: ARP resolution,
//! ICMP echo, and UDP/TCP send/receive logging. Hosts are how experiments
//! generate the "real traffic" that exercises reactive controllers (the
//! paper's router daemon installs exact-match paths in response to pings).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use bytes::Bytes;

use yanc_packet::{
    build_arp_reply, build_arp_request, build_icmp_echo, build_tcp_syn, build_udp, icmp_type,
    ip_proto, ArpOp, ArpPacket, EtherType, EthernetFrame, IcmpPacket, Ipv4Packet, MacAddr,
    TcpSegment, UdpDatagram,
};

/// A queued transmission waiting for ARP resolution.
#[derive(Debug, Clone)]
enum Pending {
    Ping {
        dst: Ipv4Addr,
        seq: u16,
    },
    Udp {
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    },
    TcpSyn {
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    },
}

/// A received UDP datagram, recorded for assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedUdp {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// A simulated host.
pub struct SimHost {
    /// Host id (index in the network).
    pub id: u64,
    /// Name, e.g. `h1`.
    pub name: String,
    /// MAC address.
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
    arp_table: HashMap<Ipv4Addr, MacAddr>,
    pending: Vec<Pending>,
    ident: u16,
    /// Echo replies received: `(from, seq)`.
    pub ping_replies: Vec<(Ipv4Addr, u16)>,
    /// Echo requests we answered: `(from, seq)`.
    pub pings_answered: Vec<(Ipv4Addr, u16)>,
    /// UDP datagrams received.
    pub udp_received: Vec<ReceivedUdp>,
    /// TCP SYNs received: `(from, dst_port)`.
    pub tcp_syns_received: Vec<(Ipv4Addr, u16)>,
    /// Total frames received (any kind).
    pub frames_received: u64,
}

impl SimHost {
    /// Create a host; the MAC is derived deterministically from `id`.
    pub fn new(id: u64, name: &str, ip: Ipv4Addr) -> Self {
        SimHost {
            id,
            name: name.to_string(),
            mac: MacAddr::from_seed(0xbeef_0000 | id),
            ip,
            arp_table: HashMap::new(),
            pending: Vec::new(),
            ident: 1,
            ping_replies: Vec::new(),
            pings_answered: Vec::new(),
            udp_received: Vec::new(),
            tcp_syns_received: Vec::new(),
            frames_received: 0,
        }
    }

    /// Pre-populate the ARP table (for tests that skip resolution).
    pub fn learn_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp_table.insert(ip, mac);
    }

    /// Start a ping; returns frames to transmit (the echo request, or an
    /// ARP request with the ping queued behind it).
    pub fn ping(&mut self, dst: Ipv4Addr, seq: u16) -> Vec<Bytes> {
        match self.arp_table.get(&dst) {
            Some(&mac) => {
                vec![build_icmp_echo(
                    self.mac, mac, self.ip, dst, self.ident, seq,
                )]
            }
            None => {
                self.pending.push(Pending::Ping { dst, seq });
                vec![build_arp_request(self.mac, self.ip, dst)]
            }
        }
    }

    /// Send a UDP datagram (resolving the destination first if needed).
    pub fn send_udp(
        &mut self,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    ) -> Vec<Bytes> {
        match self.arp_table.get(&dst) {
            Some(&mac) => vec![build_udp(
                self.mac, mac, self.ip, dst, src_port, dst_port, payload,
            )],
            None => {
                self.pending.push(Pending::Udp {
                    dst,
                    src_port,
                    dst_port,
                    payload,
                });
                vec![build_arp_request(self.mac, self.ip, dst)]
            }
        }
    }

    /// Send a TCP SYN (e.g. "ssh traffic" for slicing experiments).
    pub fn send_tcp_syn(&mut self, dst: Ipv4Addr, src_port: u16, dst_port: u16) -> Vec<Bytes> {
        match self.arp_table.get(&dst) {
            Some(&mac) => vec![build_tcp_syn(
                self.mac, mac, self.ip, dst, src_port, dst_port,
            )],
            None => {
                self.pending.push(Pending::TcpSyn {
                    dst,
                    src_port,
                    dst_port,
                });
                vec![build_arp_request(self.mac, self.ip, dst)]
            }
        }
    }

    fn flush_pending(&mut self, ip: Ipv4Addr) -> Vec<Bytes> {
        let mac = match self.arp_table.get(&ip) {
            Some(m) => *m,
            None => return Vec::new(),
        };
        let (ready, rest): (Vec<Pending>, Vec<Pending>) = std::mem::take(&mut self.pending)
            .into_iter()
            .partition(|p| match p {
                Pending::Ping { dst, .. }
                | Pending::Udp { dst, .. }
                | Pending::TcpSyn { dst, .. } => *dst == ip,
            });
        self.pending = rest;
        ready
            .into_iter()
            .map(|p| match p {
                Pending::Ping { dst, seq } => {
                    build_icmp_echo(self.mac, mac, self.ip, dst, self.ident, seq)
                }
                Pending::Udp {
                    dst,
                    src_port,
                    dst_port,
                    payload,
                } => build_udp(self.mac, mac, self.ip, dst, src_port, dst_port, payload),
                Pending::TcpSyn {
                    dst,
                    src_port,
                    dst_port,
                } => build_tcp_syn(self.mac, mac, self.ip, dst, src_port, dst_port),
            })
            .collect()
    }

    /// Process an incoming frame, returning frames to transmit in response.
    pub fn handle_frame(&mut self, frame: &Bytes) -> Vec<Bytes> {
        self.frames_received += 1;
        let eth = match EthernetFrame::parse(frame) {
            Ok(e) => e,
            Err(_) => return Vec::new(),
        };
        if eth.dst != self.mac && !eth.dst.is_broadcast() && !eth.dst.is_multicast() {
            return Vec::new(); // not for us (promiscuous hosts aren't modelled)
        }
        if eth.ethertype == EtherType::ARP {
            if let Ok(arp) = ArpPacket::parse(&eth.payload) {
                // Learn the sender either way.
                self.arp_table.insert(arp.spa, arp.sha);
                let mut out = self.flush_pending(arp.spa);
                if arp.op == ArpOp::Request && arp.tpa == self.ip {
                    out.push(build_arp_reply(self.mac, self.ip, arp.sha, arp.spa));
                }
                return out;
            }
            return Vec::new();
        }
        if eth.ethertype != EtherType::IPV4 {
            return Vec::new();
        }
        let ip = match Ipv4Packet::parse(&eth.payload) {
            Ok(p) => p,
            Err(_) => return Vec::new(),
        };
        if ip.dst != self.ip {
            return Vec::new();
        }
        match ip.proto {
            p if p == ip_proto::ICMP => {
                if let Ok(icmp) = IcmpPacket::parse(&ip.payload) {
                    if icmp.icmp_type == icmp_type::ECHO_REQUEST {
                        self.pings_answered.push((ip.src, icmp.seq));
                        let reply = IcmpPacket {
                            icmp_type: icmp_type::ECHO_REPLY,
                            code: 0,
                            ident: icmp.ident,
                            seq: icmp.seq,
                            payload: icmp.payload.clone(),
                        };
                        let ipr = Ipv4Packet {
                            tos: 0,
                            id: icmp.seq,
                            ttl: 64,
                            proto: ip_proto::ICMP,
                            src: self.ip,
                            dst: ip.src,
                            payload: reply.encode(),
                        };
                        let back = EthernetFrame {
                            dst: eth.src,
                            src: self.mac,
                            vlan: None,
                            ethertype: EtherType::IPV4,
                            payload: ipr.encode(),
                        };
                        return vec![back.encode()];
                    } else if icmp.icmp_type == icmp_type::ECHO_REPLY {
                        self.ping_replies.push((ip.src, icmp.seq));
                    }
                }
            }
            p if p == ip_proto::UDP => {
                if let Ok(u) = UdpDatagram::parse(&ip.payload, ip.src, ip.dst) {
                    self.udp_received.push(ReceivedUdp {
                        src: ip.src,
                        src_port: u.src_port,
                        dst_port: u.dst_port,
                        payload: u.payload,
                    });
                }
            }
            p if p == ip_proto::TCP => {
                if let Ok(t) = TcpSegment::parse(&ip.payload, ip.src, ip.dst) {
                    if t.flags.syn {
                        self.tcp_syns_received.push((ip.src, t.dst_port));
                    }
                }
            }
            _ => {}
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_packet::PacketSummary;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pair() -> (SimHost, SimHost) {
        (
            SimHost::new(1, "h1", ip("10.0.0.1")),
            SimHost::new(2, "h2", ip("10.0.0.2")),
        )
    }

    /// Deliver frames directly between two hosts until quiescent.
    fn exchange(a: &mut SimHost, b: &mut SimHost, mut frames: Vec<Bytes>) {
        let mut from_a = true;
        while !frames.is_empty() {
            let mut next = Vec::new();
            for f in frames {
                let dst = if from_a { &mut *b } else { &mut *a };
                next.extend(dst.handle_frame(&f));
            }
            frames = next;
            from_a = !from_a;
        }
    }

    #[test]
    fn arp_then_ping_completes() {
        let (mut a, mut b) = pair();
        let frames = a.ping(b.ip, 1);
        // First frame is an ARP request (no table entry yet).
        let s = PacketSummary::parse(&frames[0]).unwrap();
        assert_eq!(s.dl_type, EtherType::ARP.0);
        exchange(&mut a, &mut b, frames);
        assert_eq!(a.ping_replies, vec![(ip("10.0.0.2"), 1)]);
        assert_eq!(b.pings_answered, vec![(ip("10.0.0.1"), 1)]);
    }

    #[test]
    fn cached_arp_skips_resolution() {
        let (mut a, mut b) = pair();
        a.learn_arp(b.ip, b.mac);
        let frames = a.ping(b.ip, 7);
        let s = PacketSummary::parse(&frames[0]).unwrap();
        assert_eq!(s.dl_type, EtherType::IPV4.0);
        exchange(&mut a, &mut b, frames);
        assert_eq!(a.ping_replies, vec![(ip("10.0.0.2"), 7)]);
    }

    #[test]
    fn udp_delivery_recorded() {
        let (mut a, mut b) = pair();
        let frames = a.send_udp(b.ip, 5000, 53, Bytes::from_static(b"query"));
        exchange(&mut a, &mut b, frames);
        assert_eq!(b.udp_received.len(), 1);
        assert_eq!(b.udp_received[0].dst_port, 53);
        assert_eq!(&b.udp_received[0].payload[..], b"query");
    }

    #[test]
    fn tcp_syn_recorded() {
        let (mut a, mut b) = pair();
        let frames = a.send_tcp_syn(b.ip, 40000, 22);
        exchange(&mut a, &mut b, frames);
        assert_eq!(b.tcp_syns_received, vec![(ip("10.0.0.1"), 22)]);
    }

    #[test]
    fn foreign_traffic_ignored() {
        let (mut a, b) = pair();
        let mut c = SimHost::new(3, "h3", ip("10.0.0.3"));
        a.learn_arp(b.ip, b.mac);
        let frames = a.ping(b.ip, 1);
        // Deliver to the wrong host: unicast to b's MAC, c ignores it.
        let out = c.handle_frame(&frames[0]);
        assert!(out.is_empty());
        assert!(c.pings_answered.is_empty());
    }

    #[test]
    fn arp_request_for_other_ip_learns_but_does_not_reply() {
        let (mut a, mut b) = pair();
        let frames = a.ping(ip("10.0.0.99"), 1); // ARP for a third party
        let out = b.handle_frame(&frames[0]);
        assert!(out.is_empty());
        // …but b learned a's mapping opportunistically.
        assert_eq!(b.arp_table.get(&a.ip), Some(&a.mac));
    }
}
