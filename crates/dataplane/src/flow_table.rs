//! A single OpenFlow flow table: priority-ordered matching, strict and
//! loose modify/delete, timeout expiry, and per-entry counters.

use yanc_openflow::{Action, FlowMatch, FlowRemovedReason};
use yanc_packet::PacketSummary;

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// Match.
    pub m: FlowMatch,
    /// Priority: higher wins.
    pub priority: u16,
    /// Actions applied on hit (empty = drop).
    pub actions: Vec<Action>,
    /// OpenFlow ≥1.1 goto-table continuation.
    pub goto_table: Option<u8>,
    /// Controller cookie.
    pub cookie: u64,
    /// Idle timeout in seconds (0 = never).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = never).
    pub hard_timeout: u16,
    /// `SEND_FLOW_REM` etc.
    pub flags: u16,
    /// Installation time (sim seconds).
    pub installed_at: u64,
    /// Last packet hit (sim seconds).
    pub last_hit: u64,
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
}

impl FlowEntry {
    /// Whether this entry forwards to `port` (for out_port-filtered deletes).
    fn outputs_to(&self, port: u16) -> bool {
        self.actions.iter().any(|a| match a {
            Action::Output { port: p, .. } => *p == port,
            Action::Enqueue { port: p, .. } => *p == port,
            _ => false,
        })
    }
}

/// A removed entry plus the reason, for `FlowRemoved` generation.
#[derive(Debug, Clone)]
pub struct RemovedFlow {
    /// The entry at removal time (with final counters).
    pub entry: FlowEntry,
    /// Why it was removed.
    pub reason: FlowRemovedReason,
}

/// A priority-ordered flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    /// Entries sorted by descending priority (stable within a priority).
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over entries (descending priority).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Insert an entry, replacing an existing identical (match, priority)
    /// entry as OpenFlow ADD semantics require. Counters reset on replace.
    pub fn add(&mut self, mut entry: FlowEntry, now: u64) {
        entry.installed_at = now;
        entry.last_hit = now;
        entry.packets = 0;
        entry.bytes = 0;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == entry.priority && e.m == entry.m)
        {
            *e = entry;
            return;
        }
        // Keep descending priority order; insert after equal priorities so
        // earlier installs win ties (stable).
        let pos = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(pos, entry);
    }

    /// Loose modify: update actions of every entry subsumed by `m`.
    /// Returns how many were changed.
    pub fn modify(&mut self, m: &FlowMatch, actions: &[Action], goto_table: Option<u8>) -> usize {
        let mut n = 0;
        for e in self.entries.iter_mut().filter(|e| m.subsumes(&e.m)) {
            e.actions = actions.to_vec();
            e.goto_table = goto_table;
            n += 1;
        }
        n
    }

    /// Strict modify: update only the exact (match, priority) entry.
    pub fn modify_strict(
        &mut self,
        m: &FlowMatch,
        priority: u16,
        actions: &[Action],
        goto_table: Option<u8>,
    ) -> usize {
        let mut n = 0;
        for e in self
            .entries
            .iter_mut()
            .filter(|e| e.priority == priority && e.m == *m)
        {
            e.actions = actions.to_vec();
            e.goto_table = goto_table;
            n += 1;
        }
        n
    }

    /// Loose delete: remove every entry subsumed by `m` (optionally
    /// restricted to entries outputting to `out_port`).
    pub fn delete(&mut self, m: &FlowMatch, out_port: Option<u16>) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let hit = m.subsumes(&e.m) && out_port.map(|p| e.outputs_to(p)).unwrap_or(true);
            if hit {
                removed.push(RemovedFlow {
                    entry: e.clone(),
                    reason: FlowRemovedReason::Delete,
                });
            }
            !hit
        });
        removed
    }

    /// Strict delete: remove only the exact (match, priority) entry.
    pub fn delete_strict(&mut self, m: &FlowMatch, priority: u16) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let hit = e.priority == priority && e.m == *m;
            if hit {
                removed.push(RemovedFlow {
                    entry: e.clone(),
                    reason: FlowRemovedReason::Delete,
                });
            }
            !hit
        });
        removed
    }

    /// Find the highest-priority matching entry and update its counters.
    /// Returns a clone of the matched entry.
    pub fn lookup(
        &mut self,
        pkt: &PacketSummary,
        in_port: u16,
        frame_len: usize,
        now: u64,
    ) -> Option<FlowEntry> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.m.matches(pkt, in_port))?;
        e.packets += 1;
        e.bytes += frame_len as u64;
        e.last_hit = now;
        Some(e.clone())
    }

    /// Read-only lookup (no counter update).
    pub fn peek(&self, pkt: &PacketSummary, in_port: u16) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.m.matches(pkt, in_port))
    }

    /// Remove entries whose idle or hard timeout has fired at `now`.
    pub fn expire(&mut self, now: u64) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let hard = e.hard_timeout > 0 && now >= e.installed_at + u64::from(e.hard_timeout);
            let idle = e.idle_timeout > 0 && now >= e.last_hit + u64::from(e.idle_timeout);
            if hard {
                removed.push(RemovedFlow {
                    entry: e.clone(),
                    reason: FlowRemovedReason::HardTimeout,
                });
                false
            } else if idle {
                removed.push(RemovedFlow {
                    entry: e.clone(),
                    reason: FlowRemovedReason::IdleTimeout,
                });
                false
            } else {
                true
            }
        });
        removed
    }

    /// Aggregate (packets, bytes, flows) over entries subsumed by `m`.
    pub fn aggregate(&self, m: &FlowMatch) -> (u64, u64, u32) {
        let mut p = 0;
        let mut b = 0;
        let mut n = 0;
        for e in self.entries.iter().filter(|e| m.subsumes(&e.m)) {
            p += e.packets;
            b += e.bytes;
            n += 1;
        }
        (p, b, n)
    }
}

/// Construct a fresh entry with zeroed counters.
pub fn entry(m: FlowMatch, priority: u16, actions: Vec<Action>) -> FlowEntry {
    FlowEntry {
        m,
        priority,
        actions,
        goto_table: None,
        cookie: 0,
        idle_timeout: 0,
        hard_timeout: 0,
        flags: 0,
        installed_at: 0,
        last_hit: 0,
        packets: 0,
        bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_openflow::Ipv4Prefix;
    use yanc_packet::{build_tcp_syn, MacAddr};

    fn pkt(dst_port: u16) -> PacketSummary {
        let f = build_tcp_syn(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            40000,
            dst_port,
        );
        PacketSummary::parse(&f).unwrap()
    }

    fn m_tp_dst(p: u16) -> FlowMatch {
        FlowMatch {
            tp_dst: Some(p),
            ..Default::default()
        }
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.add(entry(FlowMatch::any(), 1, vec![Action::out(1)]), 0);
        t.add(entry(m_tp_dst(22), 100, vec![Action::out(2)]), 0);
        let hit = t.lookup(&pkt(22), 1, 64, 0).unwrap();
        assert_eq!(hit.actions, vec![Action::out(2)]);
        let hit = t.lookup(&pkt(80), 1, 64, 0).unwrap();
        assert_eq!(hit.actions, vec![Action::out(1)]);
    }

    #[test]
    fn add_replaces_same_match_and_priority() {
        let mut t = FlowTable::new();
        t.add(entry(m_tp_dst(22), 10, vec![Action::out(1)]), 0);
        t.lookup(&pkt(22), 1, 64, 0).unwrap();
        t.add(entry(m_tp_dst(22), 10, vec![Action::out(9)]), 5);
        assert_eq!(t.len(), 1);
        let e = t.peek(&pkt(22), 1).unwrap();
        assert_eq!(e.actions, vec![Action::out(9)]);
        assert_eq!(e.packets, 0); // counters reset on replace
                                  // Same match at a different priority is a distinct entry.
        t.add(entry(m_tp_dst(22), 11, vec![Action::out(3)]), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.add(entry(FlowMatch::any(), 1, vec![]), 0);
        t.lookup(&pkt(22), 1, 100, 1);
        t.lookup(&pkt(22), 1, 50, 2);
        let e = t.iter().next().unwrap();
        assert_eq!(e.packets, 2);
        assert_eq!(e.bytes, 150);
        assert_eq!(e.last_hit, 2);
        let (p, b, n) = t.aggregate(&FlowMatch::any());
        assert_eq!((p, b, n), (2, 150, 1));
    }

    #[test]
    fn loose_delete_uses_subsumption() {
        let mut t = FlowTable::new();
        t.add(entry(m_tp_dst(22), 5, vec![Action::out(1)]), 0);
        t.add(entry(m_tp_dst(80), 5, vec![Action::out(1)]), 0);
        let wide = FlowMatch::any();
        let removed = t.delete(&wide, None);
        assert_eq!(removed.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn out_port_filtered_delete() {
        let mut t = FlowTable::new();
        t.add(entry(m_tp_dst(22), 5, vec![Action::out(1)]), 0);
        t.add(entry(m_tp_dst(80), 5, vec![Action::out(2)]), 0);
        let removed = t.delete(&FlowMatch::any(), Some(2));
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
        assert!(t.peek(&pkt(22), 1).is_some());
    }

    #[test]
    fn strict_delete_requires_exact_match() {
        let mut t = FlowTable::new();
        t.add(entry(m_tp_dst(22), 5, vec![]), 0);
        assert!(t.delete_strict(&FlowMatch::any(), 5).is_empty());
        assert!(t.delete_strict(&m_tp_dst(22), 6).is_empty());
        assert_eq!(t.delete_strict(&m_tp_dst(22), 5).len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn modify_loose_and_strict() {
        let mut t = FlowTable::new();
        t.add(entry(m_tp_dst(22), 5, vec![Action::out(1)]), 0);
        t.add(entry(m_tp_dst(80), 7, vec![Action::out(1)]), 0);
        assert_eq!(t.modify(&FlowMatch::any(), &[Action::out(9)], None), 2);
        assert!(t.iter().all(|e| e.actions == vec![Action::out(9)]));
        assert_eq!(
            t.modify_strict(&m_tp_dst(22), 5, &[Action::out(4)], Some(1)),
            1
        );
        let e = t.peek(&pkt(22), 1).unwrap();
        assert_eq!(e.actions, vec![Action::out(4)]);
        assert_eq!(e.goto_table, Some(1));
    }

    #[test]
    fn hard_timeout_expiry() {
        let mut t = FlowTable::new();
        let mut e = entry(FlowMatch::any(), 1, vec![]);
        e.hard_timeout = 10;
        t.add(e, 100);
        assert!(t.expire(105).is_empty());
        let removed = t.expire(110);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_traffic() {
        let mut t = FlowTable::new();
        let mut e = entry(FlowMatch::any(), 1, vec![]);
        e.idle_timeout = 10;
        t.add(e, 0);
        t.lookup(&pkt(22), 1, 64, 8); // traffic at t=8
        assert!(t.expire(10).is_empty()); // would have idled without traffic
        let removed = t.expire(18);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn tie_break_prefers_earlier_install() {
        let mut t = FlowTable::new();
        t.add(entry(m_tp_dst(22), 5, vec![Action::out(1)]), 0);
        t.add(
            entry(
                FlowMatch {
                    nw_dst: Some(Ipv4Prefix::parse("10.0.0.2").unwrap()),
                    ..Default::default()
                },
                5,
                vec![Action::out(2)],
            ),
            1,
        );
        // Both match the ssh packet at equal priority; first installed wins.
        let hit = t.lookup(&pkt(22), 1, 64, 2).unwrap();
        assert_eq!(hit.actions, vec![Action::out(1)]);
    }
}
