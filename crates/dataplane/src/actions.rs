//! Applying OpenFlow action lists to real frame bytes.
//!
//! Actions are applied strictly in order, and each `Output` emits the frame
//! *as modified so far* — matching the OpenFlow apply-actions semantics.
//! Field rewrites reparse and re-encode the affected headers so checksums
//! stay valid end to end (hosts verify them on receipt).

use bytes::Bytes;
use std::net::Ipv4Addr;

use yanc_openflow::Action;
use yanc_packet::{
    ip_proto, EtherType, EthernetFrame, Ipv4Packet, ParseResult, TcpSegment, UdpDatagram, VlanTag,
};

/// The result of running an action list.
#[derive(Debug, Clone, Default)]
pub struct ActionOutcome {
    /// `(port, frame)` pairs in action order. Ports may be reserved numbers
    /// (FLOOD, CONTROLLER, …) for the switch to interpret.
    pub outputs: Vec<(u16, Bytes)>,
    /// `(port, queue, frame)` outputs that went through an Enqueue action.
    pub enqueued: Vec<(u16, u32, Bytes)>,
    /// The frame after all field rewrites — what continues down a
    /// multi-table pipeline.
    pub final_frame: Bytes,
}

/// Apply `actions` to `frame`, producing the outputs.
pub fn apply_actions(actions: &[Action], frame: &Bytes) -> ParseResult<ActionOutcome> {
    let mut current = frame.clone();
    let mut out = ActionOutcome::default();
    for a in actions {
        match a {
            Action::Output { port, .. } => out.outputs.push((*port, current.clone())),
            Action::Enqueue { port, queue_id } => {
                out.enqueued.push((*port, *queue_id, current.clone()))
            }
            Action::SetVlanVid(vid) => {
                current = edit_eth(&current, |e| {
                    let pcp = e.vlan.map(|t| t.pcp).unwrap_or(0);
                    e.vlan = Some(VlanTag {
                        pcp,
                        vid: *vid & 0x0fff,
                    });
                })?;
            }
            Action::SetVlanPcp(pcp) => {
                current = edit_eth(&current, |e| {
                    let vid = e.vlan.map(|t| t.vid).unwrap_or(0);
                    e.vlan = Some(VlanTag {
                        pcp: *pcp & 0x7,
                        vid,
                    });
                })?;
            }
            Action::StripVlan => {
                current = edit_eth(&current, |e| e.vlan = None)?;
            }
            Action::SetDlSrc(mac) => current = edit_eth(&current, |e| e.src = *mac)?,
            Action::SetDlDst(mac) => current = edit_eth(&current, |e| e.dst = *mac)?,
            Action::SetNwSrc(ip) => current = edit_ip(&current, |p| p.src = *ip)?,
            Action::SetNwDst(ip) => current = edit_ip(&current, |p| p.dst = *ip)?,
            Action::SetNwTos(tos) => current = edit_ip(&current, |p| p.tos = *tos)?,
            Action::SetTpSrc(port) => current = edit_tp(&current, *port, true)?,
            Action::SetTpDst(port) => current = edit_tp(&current, *port, false)?,
        }
    }
    out.final_frame = current;
    Ok(out)
}

fn edit_eth(frame: &Bytes, f: impl FnOnce(&mut EthernetFrame)) -> ParseResult<Bytes> {
    let mut eth = EthernetFrame::parse(frame)?;
    f(&mut eth);
    Ok(eth.encode())
}

fn edit_ip(frame: &Bytes, f: impl FnOnce(&mut Ipv4Packet)) -> ParseResult<Bytes> {
    let mut eth = EthernetFrame::parse(frame)?;
    if eth.ethertype != EtherType::IPV4 {
        return Ok(frame.clone()); // non-IP: rewrite is a no-op, as on hw
    }
    let mut ip = Ipv4Packet::parse(&eth.payload)?;
    let (old_src, old_dst) = (ip.src, ip.dst);
    f(&mut ip);
    if ip.src != old_src || ip.dst != old_dst {
        reencode_l4(&mut ip, old_src, old_dst)?;
    }
    eth.payload = ip.encode();
    Ok(eth.encode())
}

/// L4 checksums cover the IP pseudo-header; recompute them after an
/// address rewrite.
fn reencode_l4(ip: &mut Ipv4Packet, old_src: Ipv4Addr, old_dst: Ipv4Addr) -> ParseResult<()> {
    match ip.proto {
        p if p == ip_proto::TCP => {
            let seg = TcpSegment::parse(&ip.payload, old_src, old_dst)?;
            ip.payload = seg.encode(ip.src, ip.dst);
        }
        p if p == ip_proto::UDP => {
            let dg = UdpDatagram::parse(&ip.payload, old_src, old_dst)?;
            ip.payload = dg.encode(ip.src, ip.dst);
        }
        _ => {}
    }
    Ok(())
}

fn edit_tp(frame: &Bytes, port: u16, src: bool) -> ParseResult<Bytes> {
    let mut eth = EthernetFrame::parse(frame)?;
    if eth.ethertype != EtherType::IPV4 {
        return Ok(frame.clone());
    }
    let mut ip = Ipv4Packet::parse(&eth.payload)?;
    match ip.proto {
        p if p == ip_proto::TCP => {
            let mut seg = TcpSegment::parse(&ip.payload, ip.src, ip.dst)?;
            if src {
                seg.src_port = port;
            } else {
                seg.dst_port = port;
            }
            ip.payload = seg.encode(ip.src, ip.dst);
        }
        p if p == ip_proto::UDP => {
            let mut dg = UdpDatagram::parse(&ip.payload, ip.src, ip.dst)?;
            if src {
                dg.src_port = port;
            } else {
                dg.dst_port = port;
            }
            ip.payload = dg.encode(ip.src, ip.dst);
        }
        _ => return Ok(frame.clone()),
    }
    eth.payload = ip.encode();
    Ok(eth.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_packet::{build_tcp_syn, build_udp, MacAddr, PacketSummary};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn syn() -> Bytes {
        build_tcp_syn(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            40000,
            22,
        )
    }

    #[test]
    fn output_emits_current_frame_state() {
        let frame = syn();
        let out = apply_actions(
            &[
                Action::out(1),
                Action::SetDlDst(MacAddr::from_seed(9)),
                Action::out(2),
            ],
            &frame,
        )
        .unwrap();
        assert_eq!(out.outputs.len(), 2);
        // First output: unmodified.
        let s0 = PacketSummary::parse(&out.outputs[0].1).unwrap();
        assert_eq!(s0.dl_dst, MacAddr::from_seed(2));
        // Second output: rewritten.
        let s1 = PacketSummary::parse(&out.outputs[1].1).unwrap();
        assert_eq!(s1.dl_dst, MacAddr::from_seed(9));
        assert_eq!(out.outputs[0].0, 1);
        assert_eq!(out.outputs[1].0, 2);
    }

    #[test]
    fn nat_style_rewrite_keeps_checksums_valid() {
        let frame = syn();
        let out = apply_actions(
            &[
                Action::SetNwDst(ip("192.168.5.5")),
                Action::SetTpDst(2222),
                Action::out(1),
            ],
            &frame,
        )
        .unwrap();
        // PacketSummary parses TCP only if the checksum (with the new
        // pseudo-header) verifies.
        let s = PacketSummary::parse(&out.outputs[0].1).unwrap();
        assert_eq!(s.nw_dst, Some(ip("192.168.5.5")));
        assert_eq!(s.tp_dst, Some(2222));
        assert_eq!(s.tp_src, Some(40000));
    }

    #[test]
    fn udp_rewrite() {
        let frame = build_udp(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            68,
            67,
            Bytes::from_static(b"payload"),
        );
        let out =
            apply_actions(&[Action::SetNwSrc(ip("10.0.9.9")), Action::out(3)], &frame).unwrap();
        let s = PacketSummary::parse(&out.outputs[0].1).unwrap();
        assert_eq!(s.nw_src, Some(ip("10.0.9.9")));
        assert_eq!(s.tp_dst, Some(67));
    }

    #[test]
    fn vlan_tag_untag() {
        let frame = syn();
        let out = apply_actions(&[Action::SetVlanVid(100), Action::out(1)], &frame).unwrap();
        let s = PacketSummary::parse(&out.outputs[0].1).unwrap();
        assert_eq!(s.dl_vlan, Some(100));
        let stripped =
            apply_actions(&[Action::StripVlan, Action::out(1)], &out.outputs[0].1).unwrap();
        let s2 = PacketSummary::parse(&stripped.outputs[0].1).unwrap();
        assert_eq!(s2.dl_vlan, None);
        assert_eq!(stripped.outputs[0].1, frame);
    }

    #[test]
    fn enqueue_collects_queue_outputs() {
        let out = apply_actions(
            &[Action::Enqueue {
                port: 2,
                queue_id: 7,
            }],
            &syn(),
        )
        .unwrap();
        assert!(out.outputs.is_empty());
        assert_eq!(out.enqueued.len(), 1);
        assert_eq!(out.enqueued[0].0, 2);
        assert_eq!(out.enqueued[0].1, 7);
    }

    #[test]
    fn empty_action_list_drops() {
        let out = apply_actions(&[], &syn()).unwrap();
        assert!(out.outputs.is_empty());
        assert!(out.enqueued.is_empty());
    }

    #[test]
    fn tos_rewrite() {
        let out = apply_actions(&[Action::SetNwTos(0x28), Action::out(1)], &syn()).unwrap();
        let s = PacketSummary::parse(&out.outputs[0].1).unwrap();
        assert_eq!(s.nw_tos, Some(0x28));
    }
}
