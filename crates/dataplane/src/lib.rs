//! # yanc-dataplane — a simulated OpenFlow network
//!
//! The hardware substrate for the yanc reproduction: OpenFlow switches with
//! priority flow tables, multi-table pipelines, buffers and counters;
//! end hosts with a miniature ARP/ICMP/UDP/TCP stack; and a deterministic
//! discrete-event [`Network`] that moves frames over latency-bearing links
//! and carries *real OpenFlow wire bytes* between switches and their
//! drivers. Virtual time makes every experiment exactly reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actions;
pub mod fabric;
pub mod flow_table;
pub mod host;
pub mod net;
pub mod switch;

pub use actions::{apply_actions, ActionOutcome};
pub use fabric::{FabricHost, FabricLink, FabricSwitch, FabricTier, FatTree};
pub use flow_table::{entry, FlowEntry, FlowTable, RemovedFlow};
pub use host::{ReceivedUdp, SimHost};
pub use net::{ControlHandle, Endpoint, Link, NetStats, Network};
pub use switch::{Effect, SimPort, SimSwitch};
