//! Deterministic k-ary fat-tree fabrics (paper §8: data-center scale).
//!
//! A k-ary fat tree is the canonical folded-Clos data-center fabric:
//! `(k/2)²` core switches, `k` pods of `k/2` aggregation + `k/2` edge
//! switches, and `k/2` hosts per edge switch — `5k²/4` switches and
//! `k³/4` hosts, every switch with exactly `k` ports and full bisection
//! bandwidth. [`FatTree::new`] emits the whole shape — switches, hosts
//! and links — as plain data, fully determined by `k`: the same `k`
//! always yields the same dpids, names, addresses and wiring, which is
//! what makes fabric-scale experiments replayable syscall for syscall.
//!
//! Port plan (1-based, like the rest of the simulator):
//!
//! - **edge(p, e)**: ports `1..=k/2` go down to hosts, port `k/2+1+a`
//!   goes up to agg `a` of the same pod;
//! - **agg(p, a)**: port `1+e` goes down to edge `e`, port `k/2+1+j`
//!   goes up to core group `a`, member `j`;
//! - **core(g, j)** (index `g·k/2 + j`): port `1+p` goes down to pod
//!   `p`'s agg `g`.

use std::net::Ipv4Addr;

use yanc_openflow::Version;

use crate::net::Network;

/// Which layer of the fabric a switch sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricTier {
    /// Core (spine) layer.
    Core,
    /// Pod aggregation layer.
    Agg,
    /// Pod edge (top-of-rack) layer.
    Edge,
}

/// One switch of the fabric, as pure data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSwitch {
    /// Datapath id (unique, deterministic: tier tag in the high bits,
    /// pod/index below).
    pub dpid: u64,
    /// The name the driver will materialize it under (`sw{dpid:x}`).
    pub name: String,
    /// Layer.
    pub tier: FabricTier,
    /// Pod number for agg/edge switches; `None` for core.
    pub pod: Option<u16>,
    /// Ports — always `k` in a fat tree.
    pub n_ports: u16,
}

/// One host of the fabric, as pure data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricHost {
    /// Deterministic name `h<pod>_<edge>_<slot>`.
    pub name: String,
    /// Deterministic address `10.<pod>.<edge>.<slot+2>`.
    pub ip: Ipv4Addr,
    /// The `(dpid, port)` edge attachment.
    pub edge: (u64, u16),
}

/// A switch↔switch link: `((dpid, port), (dpid, port))`.
pub type FabricLink = ((u64, u16), (u64, u16));

/// A deterministic k-ary fat-tree shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatTree {
    k: u16,
    switches: Vec<FabricSwitch>,
    hosts: Vec<FabricHost>,
    links: Vec<FabricLink>,
}

const CORE_BASE: u64 = 0x1_0000;
const AGG_BASE: u64 = 0x2_0000;
const EDGE_BASE: u64 = 0x3_0000;

fn agg_dpid(pod: u16, a: u16) -> u64 {
    AGG_BASE + ((pod as u64) << 8) + a as u64
}

fn edge_dpid(pod: u16, e: u16) -> u64 {
    EDGE_BASE + ((pod as u64) << 8) + e as u64
}

impl FatTree {
    /// Build the k-ary shape. `k` must be even, `2 ≤ k ≤ 254` (the
    /// address plan packs pod/edge/slot into one `10.x.y.z` octet each).
    pub fn new(k: u16) -> Self {
        assert!(k >= 2 && k % 2 == 0 && k <= 254, "k must be even, 2..=254");
        let h = k / 2; // half-k: group size everywhere
        let mut switches = Vec::new();
        let mut links = Vec::new();
        let mut hosts = Vec::new();

        for c in 0..h * h {
            let dpid = CORE_BASE + c as u64;
            switches.push(FabricSwitch {
                dpid,
                name: format!("sw{dpid:x}"),
                tier: FabricTier::Core,
                pod: None,
                n_ports: k,
            });
        }
        for pod in 0..k {
            for a in 0..h {
                let dpid = agg_dpid(pod, a);
                switches.push(FabricSwitch {
                    dpid,
                    name: format!("sw{dpid:x}"),
                    tier: FabricTier::Agg,
                    pod: Some(pod),
                    n_ports: k,
                });
            }
            for e in 0..h {
                let dpid = edge_dpid(pod, e);
                switches.push(FabricSwitch {
                    dpid,
                    name: format!("sw{dpid:x}"),
                    tier: FabricTier::Edge,
                    pod: Some(pod),
                    n_ports: k,
                });
            }
        }

        for pod in 0..k {
            // edge(p,e) port k/2+1+a  <->  agg(p,a) port 1+e
            for e in 0..h {
                for a in 0..h {
                    links.push(((edge_dpid(pod, e), h + 1 + a), (agg_dpid(pod, a), 1 + e)));
                }
            }
            // agg(p,a) port k/2+1+j  <->  core(a·k/2 + j) port 1+p
            for a in 0..h {
                for j in 0..h {
                    let core = CORE_BASE + (a * h + j) as u64;
                    links.push(((agg_dpid(pod, a), h + 1 + j), (core, 1 + pod)));
                }
            }
            // hosts: edge(p,e) ports 1..=k/2
            for e in 0..h {
                for slot in 0..h {
                    hosts.push(FabricHost {
                        name: format!("h{pod}_{e}_{slot}"),
                        ip: Ipv4Addr::new(10, pod as u8, e as u8, (slot + 2) as u8),
                        edge: (edge_dpid(pod, e), slot + 1),
                    });
                }
            }
        }

        FatTree {
            k,
            switches,
            hosts,
            links,
        }
    }

    /// The arity.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Every switch, core first, then pods in order (agg before edge).
    pub fn switches(&self) -> &[FabricSwitch] {
        &self.switches
    }

    /// Every host, pod-major order.
    pub fn hosts(&self) -> &[FabricHost] {
        &self.hosts
    }

    /// Every switch↔switch link as `((dpid, port), (dpid, port))`.
    pub fn links(&self) -> &[FabricLink] {
        &self.links
    }

    /// `5k²/4`.
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    /// `k³/4`.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Instantiate the shape in a simulated [`Network`]: every switch
    /// (speaking `versions`), every inter-switch link, every host. Does
    /// *not* attach controllers — that is the runtime's job (and the
    /// harness's `build_fabric` does both).
    pub fn materialize(&self, net: &mut Network, versions: &[Version]) {
        for s in &self.switches {
            net.add_switch(s.dpid, &s.name, s.n_ports, 1, versions.to_vec());
        }
        for &(a, b) in &self.links {
            net.link_switches(a, b, None);
        }
        for hst in &self.hosts {
            let id = net.add_host(&hst.name, hst.ip);
            net.attach_host(id, hst.edge, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::*;

    #[test]
    fn counts_match_the_formulas() {
        for k in [2u16, 4, 6, 8] {
            let ft = FatTree::new(k);
            let k = k as usize;
            assert_eq!(ft.n_switches(), 5 * k * k / 4);
            assert_eq!(ft.n_hosts(), k * k * k / 4);
            // k³/2 switch-switch links: k³/4 edge-agg + k³/4 agg-core.
            assert_eq!(ft.links().len(), k * k * k / 2);
        }
    }

    #[test]
    fn every_port_wired_exactly_once() {
        let ft = FatTree::new(4);
        let mut used: HashSet<(u64, u16)> = HashSet::new();
        for &(a, b) in ft.links() {
            assert!(used.insert(a), "duplicate endpoint {a:?}");
            assert!(used.insert(b), "duplicate endpoint {b:?}");
        }
        for h in ft.hosts() {
            assert!(used.insert(h.edge), "duplicate endpoint {:?}", h.edge);
        }
        // Full bisection: all k ports of every switch are in use.
        assert_eq!(used.len(), 4 * ft.n_switches());
        for (d, p) in used {
            let sw = ft.switches().iter().find(|s| s.dpid == d).unwrap();
            assert!(p >= 1 && p <= sw.n_ports, "port {p} out of range");
        }
    }

    #[test]
    fn deterministic_and_unique() {
        let a = FatTree::new(6);
        let b = FatTree::new(6);
        assert_eq!(a, b);
        let dpids: HashSet<u64> = a.switches().iter().map(|s| s.dpid).collect();
        assert_eq!(dpids.len(), a.n_switches());
        let ips: HashSet<Ipv4Addr> = a.hosts().iter().map(|h| h.ip).collect();
        assert_eq!(ips.len(), a.n_hosts());
    }

    #[test]
    fn materializes_into_a_network() {
        let ft = FatTree::new(4);
        let mut net = Network::new();
        ft.materialize(&mut net, &[Version::V1_3]);
        assert_eq!(net.links().len(), ft.links().len() + ft.n_hosts());
    }
}
