//! The network: switches, hosts, links and a deterministic discrete-event
//! core that moves frames between them with per-link latency.
//!
//! Controller attachment is a pair of byte channels carrying real OpenFlow
//! frames — the driver side (`ControlHandle`) can live on another thread.
//! Time is virtual: [`Network::pump`] drains all events at the current
//! clock, [`Network::advance`] moves the clock (expiring flow timeouts) and
//! delivers in-flight frames. Event ordering is `(time, sequence)` so runs
//! are exactly reproducible.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use yanc_openflow::Version;

use crate::host::SimHost;
use crate::switch::{Effect, SimSwitch};

/// Identifies one end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A switch port.
    Switch {
        /// Datapath id.
        dpid: u64,
        /// Port number.
        port: u16,
    },
    /// A host NIC.
    Host {
        /// Host id.
        id: u64,
    },
}

/// A point-to-point link.
#[derive(Debug, Clone)]
pub struct Link {
    /// One end.
    pub a: Endpoint,
    /// The other end.
    pub b: Endpoint,
    /// One-way latency in microseconds.
    pub latency_us: u64,
    /// Whether the link is carrying traffic.
    pub up: bool,
}

/// The controller's side of a switch control channel.
pub struct ControlHandle {
    /// Datapath id of the attached switch.
    pub dpid: u64,
    /// Bytes from the switch (packet-ins, replies, async messages).
    pub rx: Receiver<Bytes>,
    /// Bytes to the switch (flow mods, packet-outs, requests).
    pub tx: Sender<Bytes>,
}

struct ControlWires {
    to_ctrl: Sender<Bytes>,
    from_ctrl: Receiver<Bytes>,
}

#[derive(Debug)]
enum Ev {
    FrameAt { dst: Endpoint, frame: Bytes },
}

struct Timed {
    at_us: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// Aggregate network statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct NetStats {
    /// Frames delivered endpoint-to-endpoint.
    pub frames_delivered: u64,
    /// Control-channel messages delivered (both directions).
    pub control_deliveries: u64,
    /// Events processed.
    pub events: u64,
}

/// A simulated network of OpenFlow switches and hosts.
pub struct Network {
    /// Switches by datapath id.
    pub switches: BTreeMap<u64, SimSwitch>,
    /// Hosts by id.
    pub hosts: BTreeMap<u64, SimHost>,
    links: Vec<Link>,
    queue: BinaryHeap<Reverse<Timed>>,
    now_us: u64,
    seq: u64,
    control: HashMap<u64, ControlWires>,
    /// Aggregate statistics.
    pub stats: NetStats,
    default_latency_us: u64,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network (default link latency 100µs).
    pub fn new() -> Self {
        Network {
            switches: BTreeMap::new(),
            hosts: BTreeMap::new(),
            links: Vec::new(),
            queue: BinaryHeap::new(),
            now_us: 0,
            seq: 0,
            control: HashMap::new(),
            stats: NetStats::default(),
            default_latency_us: 100,
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Current virtual time in whole seconds (flow-timeout granularity).
    pub fn now_s(&self) -> u64 {
        self.now_us / 1_000_000
    }

    /// Add a switch; returns its dpid for convenience.
    pub fn add_switch(
        &mut self,
        dpid: u64,
        name: &str,
        n_ports: u16,
        n_tables: u8,
        versions: Vec<Version>,
    ) -> u64 {
        assert!(!self.switches.contains_key(&dpid), "duplicate dpid {dpid}");
        self.switches.insert(
            dpid,
            SimSwitch::new(dpid, name, n_ports, n_tables, versions),
        );
        dpid
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self, name: &str, ip: Ipv4Addr) -> u64 {
        let id = self.hosts.len() as u64 + 1;
        self.hosts.insert(id, SimHost::new(id, name, ip));
        id
    }

    fn endpoint_in_use(&self, e: Endpoint) -> bool {
        self.links.iter().any(|l| l.a == e || l.b == e)
    }

    /// Wire two switch ports together.
    pub fn link_switches(&mut self, a: (u64, u16), b: (u64, u16), latency_us: Option<u64>) {
        let ea = Endpoint::Switch {
            dpid: a.0,
            port: a.1,
        };
        let eb = Endpoint::Switch {
            dpid: b.0,
            port: b.1,
        };
        assert!(!self.endpoint_in_use(ea), "port {a:?} already linked");
        assert!(!self.endpoint_in_use(eb), "port {b:?} already linked");
        self.links.push(Link {
            a: ea,
            b: eb,
            latency_us: latency_us.unwrap_or(self.default_latency_us),
            up: true,
        });
        let fx1 = self
            .switches
            .get_mut(&a.0)
            .map(|s| s.set_link_state(a.1, false));
        let fx2 = self
            .switches
            .get_mut(&b.0)
            .map(|s| s.set_link_state(b.1, false));
        for (dpid, fx) in [(a.0, fx1), (b.0, fx2)] {
            if let Some(fx) = fx {
                self.route_effects(dpid, fx);
            }
        }
    }

    /// Attach a host to a switch port.
    pub fn attach_host(&mut self, host: u64, sw: (u64, u16), latency_us: Option<u64>) {
        let eh = Endpoint::Host { id: host };
        let es = Endpoint::Switch {
            dpid: sw.0,
            port: sw.1,
        };
        assert!(!self.endpoint_in_use(eh), "host {host} already attached");
        assert!(!self.endpoint_in_use(es), "port {sw:?} already linked");
        self.links.push(Link {
            a: eh,
            b: es,
            latency_us: latency_us.unwrap_or(self.default_latency_us),
            up: true,
        });
        if let Some(s) = self.switches.get_mut(&sw.0) {
            let fx = s.set_link_state(sw.1, false);
            self.route_effects(sw.0, fx);
        }
    }

    /// Set a link's carrier state (simulating fiber cuts). Affected switch
    /// ports report PortStatus to their controllers.
    pub fn set_link_up(&mut self, a: Endpoint, up: bool) {
        let mut notify: Vec<(u64, u16)> = Vec::new();
        for l in &mut self.links {
            if l.a == a || l.b == a {
                l.up = up;
                for e in [l.a, l.b] {
                    if let Endpoint::Switch { dpid, port } = e {
                        notify.push((dpid, port));
                    }
                }
            }
        }
        for (dpid, port) in notify {
            if let Some(s) = self.switches.get_mut(&dpid) {
                let fx = s.set_link_state(port, !up);
                self.route_effects(dpid, fx);
            }
        }
    }

    /// All links (topology inspection).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Attach a controller to a switch: returns the driver-side handle and
    /// kicks off the switch's HELLO.
    pub fn attach_controller(&mut self, dpid: u64) -> ControlHandle {
        let (to_ctrl_tx, to_ctrl_rx) = unbounded();
        let (from_ctrl_tx, from_ctrl_rx) = unbounded();
        self.control.insert(
            dpid,
            ControlWires {
                to_ctrl: to_ctrl_tx,
                from_ctrl: from_ctrl_rx,
            },
        );
        let fx = self
            .switches
            .get_mut(&dpid)
            .expect("switch exists")
            .connect();
        self.route_effects(dpid, fx);
        ControlHandle {
            dpid,
            rx: to_ctrl_rx,
            tx: from_ctrl_tx,
        }
    }

    /// Detach the controller (simulates controller failure).
    pub fn detach_controller(&mut self, dpid: u64) {
        self.control.remove(&dpid);
    }

    fn schedule(&mut self, delay_us: u64, ev: Ev) {
        self.seq += 1;
        self.queue.push(Reverse(Timed {
            at_us: self.now_us + delay_us,
            seq: self.seq,
            ev,
        }));
    }

    fn peer_of(&self, e: Endpoint) -> Option<(Endpoint, u64, bool)> {
        for l in &self.links {
            if l.a == e {
                return Some((l.b, l.latency_us, l.up));
            }
            if l.b == e {
                return Some((l.a, l.latency_us, l.up));
            }
        }
        None
    }

    fn route_effects(&mut self, dpid: u64, effects: Vec<Effect>) {
        for fx in effects {
            match fx {
                Effect::Transmit { port, frame } => {
                    let src = Endpoint::Switch { dpid, port };
                    if let Some((dst, latency, up)) = self.peer_of(src) {
                        if up {
                            self.schedule(latency, Ev::FrameAt { dst, frame });
                        }
                    }
                }
                Effect::Control(bytes) => {
                    if let Some(w) = self.control.get(&dpid) {
                        if w.to_ctrl.send(bytes).is_ok() {
                            self.stats.control_deliveries += 1;
                        }
                    }
                }
            }
        }
    }

    fn route_host_frames(&mut self, host: u64, frames: Vec<Bytes>) {
        let src = Endpoint::Host { id: host };
        if let Some((dst, latency, up)) = self.peer_of(src) {
            if up {
                for frame in frames {
                    self.schedule(latency, Ev::FrameAt { dst, frame });
                }
            }
        }
    }

    /// Have a host start a ping.
    pub fn host_ping(&mut self, host: u64, dst: Ipv4Addr, seq: u16) {
        let frames = self
            .hosts
            .get_mut(&host)
            .expect("host exists")
            .ping(dst, seq);
        self.route_host_frames(host, frames);
    }

    /// Have a host send a UDP datagram.
    pub fn host_send_udp(
        &mut self,
        host: u64,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    ) {
        let frames = self
            .hosts
            .get_mut(&host)
            .expect("host exists")
            .send_udp(dst, src_port, dst_port, payload);
        self.route_host_frames(host, frames);
    }

    /// Have a host send a TCP SYN.
    pub fn host_send_tcp_syn(&mut self, host: u64, dst: Ipv4Addr, src_port: u16, dst_port: u16) {
        let frames = self
            .hosts
            .get_mut(&host)
            .expect("host exists")
            .send_tcp_syn(dst, src_port, dst_port);
        self.route_host_frames(host, frames);
    }

    /// Inject a raw frame into a switch port (test instrumentation).
    pub fn inject(&mut self, dpid: u64, port: u16, frame: Bytes) {
        self.schedule(
            0,
            Ev::FrameAt {
                dst: Endpoint::Switch { dpid, port },
                frame,
            },
        );
    }

    /// Drain controller→switch bytes. Returns whether anything moved.
    fn drain_control(&mut self) -> bool {
        let mut moved = false;
        let dpids: Vec<u64> = self.control.keys().copied().collect();
        for dpid in dpids {
            while let Some(bytes) = self
                .control
                .get(&dpid)
                .and_then(|w| w.from_ctrl.try_recv().ok())
            {
                moved = true;
                self.stats.control_deliveries += 1;
                let now_s = self.now_s();
                let fx = match self.switches.get_mut(&dpid) {
                    Some(s) => s.handle_control_bytes(&bytes, now_s),
                    None => continue,
                };
                self.route_effects(dpid, fx);
            }
        }
        moved
    }

    /// Work queued for the next [`Network::pump`], without consuming any
    /// of it: scheduled frame events plus undrained controller→switch
    /// bytes. Reads queue lengths only — free, so an event-driven runtime
    /// can skip an idle network entirely.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
            + self
                .control
                .values()
                .map(|w| w.from_ctrl.len())
                .sum::<usize>()
    }

    /// Process every due event and any controller bytes, repeatedly, until
    /// the network is quiescent. Advances the clock through in-flight frame
    /// latencies. Returns the number of events processed.
    pub fn pump(&mut self) -> u64 {
        let mut processed = 0;
        loop {
            let moved = self.drain_control();
            let ev = self.queue.pop();
            match ev {
                None if !moved => break,
                None => continue,
                Some(Reverse(t)) => {
                    self.now_us = self.now_us.max(t.at_us);
                    processed += 1;
                    self.stats.events += 1;
                    match t.ev {
                        Ev::FrameAt { dst, frame } => {
                            self.stats.frames_delivered += 1;
                            match dst {
                                Endpoint::Switch { dpid, port } => {
                                    let now_s = self.now_s();
                                    if let Some(s) = self.switches.get_mut(&dpid) {
                                        let fx = s.handle_frame(port, frame, now_s);
                                        self.route_effects(dpid, fx);
                                    }
                                }
                                Endpoint::Host { id } => {
                                    if let Some(h) = self.hosts.get_mut(&id) {
                                        let frames = h.handle_frame(&frame);
                                        self.route_host_frames(id, frames);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        processed
    }

    /// Advance virtual time by `seconds`, firing flow timeouts, then pump.
    pub fn advance(&mut self, seconds: u64) {
        self.pump();
        self.now_us += seconds * 1_000_000;
        let now_s = self.now_s();
        let dpids: Vec<u64> = self.switches.keys().copied().collect();
        for dpid in dpids {
            let fx = self.switches.get_mut(&dpid).unwrap().tick(now_s);
            self.route_effects(dpid, fx);
        }
        self.pump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_openflow::{decode, encode, Action, FlowMatch, FlowMod, FrameCodec, Message};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Two hosts on one switch; a controller that floods everything.
    fn flood_net() -> (Network, ControlHandle, u64, u64) {
        let mut net = Network::new();
        net.add_switch(1, "sw1", 4, 1, vec![Version::V1_0]);
        let h1 = net.add_host("h1", ip("10.0.0.1"));
        let h2 = net.add_host("h2", ip("10.0.0.2"));
        net.attach_host(h1, (1, 1), None);
        net.attach_host(h2, (1, 2), None);
        let ctl = net.attach_controller(1);
        // Controller handshake: reply HELLO, install a flood-everything flow.
        ctl.tx
            .send(encode(Version::V1_0, &Message::Hello, 1).unwrap())
            .unwrap();
        let fm = FlowMod::add(
            FlowMatch::any(),
            1,
            vec![Action::out(yanc_openflow::port_no::FLOOD)],
        );
        ctl.tx
            .send(encode(Version::V1_0, &Message::FlowMod(fm), 2).unwrap())
            .unwrap();
        net.pump();
        (net, ctl, h1, h2)
    }

    #[test]
    fn ping_across_flooding_switch() {
        let (mut net, _ctl, h1, h2) = flood_net();
        net.host_ping(h1, ip("10.0.0.2"), 1);
        net.pump();
        assert_eq!(net.hosts[&h1].ping_replies, vec![(ip("10.0.0.2"), 1)]);
        assert_eq!(net.hosts[&h2].pings_answered, vec![(ip("10.0.0.1"), 1)]);
        // Virtual time advanced by the frame hops.
        assert!(net.now_us() > 0);
    }

    #[test]
    fn handshake_over_wire_bytes() {
        let (mut net, ctl, _, _) = flood_net();
        net.pump();
        // The switch sent its HELLO during attach.
        let mut codec = FrameCodec::new();
        let mut saw_hello = false;
        while let Ok(b) = ctl.rx.try_recv() {
            codec.feed(&b);
            while let Some(f) = codec.next_frame().unwrap() {
                if matches!(decode(&f).unwrap(), Message::Hello) {
                    saw_hello = true;
                }
            }
        }
        assert!(saw_hello);
        assert_eq!(net.switches[&1].negotiated(), Some(Version::V1_0));
    }

    #[test]
    fn packet_in_reaches_controller_without_flows() {
        let mut net = Network::new();
        net.add_switch(1, "sw1", 2, 1, vec![Version::V1_3]);
        let h1 = net.add_host("h1", ip("10.0.0.1"));
        net.attach_host(h1, (1, 1), None);
        let ctl = net.attach_controller(1);
        ctl.tx
            .send(encode(Version::V1_3, &Message::Hello, 1).unwrap())
            .unwrap();
        net.pump();
        net.host_ping(h1, ip("10.0.0.2"), 1); // ARP broadcast → table miss
        net.pump();
        let mut codec = FrameCodec::new();
        let mut saw_packet_in = false;
        while let Ok(b) = ctl.rx.try_recv() {
            codec.feed(&b);
            while let Some(f) = codec.next_frame().unwrap() {
                if let Message::PacketIn { in_port, .. } = decode(&f).unwrap() {
                    assert_eq!(in_port, 1);
                    saw_packet_in = true;
                }
            }
        }
        assert!(saw_packet_in);
    }

    #[test]
    fn multi_hop_line_topology() {
        let mut net = Network::new();
        for d in 1..=3u64 {
            net.add_switch(d, &format!("sw{d}"), 4, 1, vec![Version::V1_0]);
        }
        net.link_switches((1, 3), (2, 1), None);
        net.link_switches((2, 2), (3, 3), None);
        let h1 = net.add_host("h1", ip("10.0.0.1"));
        let h2 = net.add_host("h2", ip("10.0.0.2"));
        net.attach_host(h1, (1, 1), None);
        net.attach_host(h2, (3, 1), None);
        for d in 1..=3u64 {
            let ctl = net.attach_controller(d);
            ctl.tx
                .send(encode(Version::V1_0, &Message::Hello, 1).unwrap())
                .unwrap();
            let fm = FlowMod::add(
                FlowMatch::any(),
                1,
                vec![Action::out(yanc_openflow::port_no::FLOOD)],
            );
            ctl.tx
                .send(encode(Version::V1_0, &Message::FlowMod(fm), 2).unwrap())
                .unwrap();
            // Keep the handle alive past the loop.
            std::mem::forget(ctl);
        }
        net.pump();
        net.host_ping(h1, ip("10.0.0.2"), 9);
        net.pump();
        assert_eq!(net.hosts[&h1].ping_replies, vec![(ip("10.0.0.2"), 9)]);
        // 100µs/hop, 3 hops each way for ARP + ICMP round trips.
        assert!(net.now_us() >= 600);
    }

    #[test]
    fn link_down_stops_traffic_and_reports() {
        let (mut net, ctl, h1, _h2) = flood_net();
        while ctl.rx.try_recv().is_ok() {}
        net.set_link_up(Endpoint::Switch { dpid: 1, port: 2 }, false);
        net.host_ping(h1, ip("10.0.0.2"), 2);
        net.pump();
        assert!(net.hosts[&h1].ping_replies.is_empty());
        // The controller heard about the port change.
        let mut codec = FrameCodec::new();
        let mut saw_status = false;
        while let Ok(b) = ctl.rx.try_recv() {
            codec.feed(&b);
            while let Some(f) = codec.next_frame().unwrap() {
                if let Message::PortStatus { desc, .. } = decode(&f).unwrap() {
                    if desc.port_no == 2 && desc.link_down {
                        saw_status = true;
                    }
                }
            }
        }
        assert!(saw_status);
    }

    #[test]
    fn advance_expires_flows() {
        let (mut net, ctl, _h1, _h2) = flood_net();
        let mut fm = FlowMod::add(
            FlowMatch {
                tp_dst: Some(22),
                ..Default::default()
            },
            9,
            vec![],
        );
        fm.hard_timeout = 5;
        ctl.tx
            .send(encode(Version::V1_0, &Message::FlowMod(fm), 3).unwrap())
            .unwrap();
        net.pump();
        assert_eq!(net.switches[&1].flow_count(), 2);
        net.advance(10);
        assert_eq!(net.switches[&1].flow_count(), 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut net, _ctl, h1, _h2) = flood_net();
            net.host_ping(h1, ip("10.0.0.2"), 1);
            net.host_send_udp(h1, ip("10.0.0.2"), 1000, 2000, Bytes::from_static(b"x"));
            net.pump();
            (
                net.stats.events,
                net.now_us(),
                net.hosts[&h1].ping_replies.clone(),
            )
        };
        assert_eq!(run(), run());
    }
}
