//! A simulated OpenFlow switch.
//!
//! The switch's control interface is *real protocol bytes*: drivers feed it
//! encoded OpenFlow 1.0/1.3 frames and it replies in kind, negotiating the
//! version via HELLO exactly as hardware would. The data path runs the
//! multi-table match→actions pipeline over frames from [`crate::actions`].
//! Everything a driver can observe — packet-ins, flow-removed, port-status,
//! stats — is produced here.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use yanc_openflow::{
    decode, encode, port_no, FlowMod, FlowModCommand, FlowStats, Message, PacketInReason, PortDesc,
    PortReason, PortStats, StatsReply, StatsRequest, SwitchFeatures, Version,
};
use yanc_openflow::{flow_mod_flags, multipart, FrameCodec};
use yanc_packet::{MacAddr, PacketSummary};

use crate::actions::apply_actions;
use crate::flow_table::{entry, FlowTable, RemovedFlow};

/// Something the switch wants the outside world to do.
#[derive(Debug, Clone)]
pub enum Effect {
    /// Put `frame` on the wire out of `port`.
    Transmit {
        /// Egress port.
        port: u16,
        /// Frame bytes.
        frame: Bytes,
    },
    /// Send protocol bytes to the attached controller.
    Control(Bytes),
}

/// A switch port.
#[derive(Debug, Clone)]
pub struct SimPort {
    /// Port number (1-based).
    pub port_no: u16,
    /// Hardware address.
    pub hw_addr: MacAddr,
    /// Interface name.
    pub name: String,
    /// Administratively down (set via PortMod or the yanc fs).
    pub config_down: bool,
    /// No link/peer present.
    pub link_down: bool,
    /// Current speed in kbps.
    pub curr_speed: u32,
    /// Maximum speed in kbps.
    pub max_speed: u32,
    /// Packets received.
    pub rx_packets: u64,
    /// Packets sent.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Frames dropped on ingress (port down).
    pub rx_dropped: u64,
    /// Frames dropped on egress (port down).
    pub tx_dropped: u64,
}

impl SimPort {
    fn desc(&self) -> PortDesc {
        PortDesc {
            port_no: self.port_no,
            hw_addr: self.hw_addr,
            name: self.name.clone(),
            config_down: self.config_down,
            link_down: self.link_down,
            curr_speed: self.curr_speed,
            max_speed: self.max_speed,
        }
    }

    fn stats(&self) -> PortStats {
        PortStats {
            port_no: self.port_no,
            rx_packets: self.rx_packets,
            tx_packets: self.tx_packets,
            rx_bytes: self.rx_bytes,
            tx_bytes: self.tx_bytes,
            rx_dropped: self.rx_dropped,
            tx_dropped: self.tx_dropped,
        }
    }
}

/// A simulated OpenFlow switch.
pub struct SimSwitch {
    /// Datapath id.
    pub dpid: u64,
    /// Human-readable name (also used as the yanc directory name).
    pub name: String,
    supported: Vec<Version>,
    negotiated: Option<Version>,
    tables: Vec<FlowTable>,
    /// Ports by number.
    pub ports: BTreeMap<u16, SimPort>,
    buffers: HashMap<u32, (u16, Bytes)>,
    next_buffer: u32,
    n_buffers: u32,
    miss_send_len: u16,
    codec: FrameCodec,
    next_xid: u32,
    stats_page_size: usize,
}

/// Default entries-per-segment for multipart stats replies. Small enough
/// that a fabric-scale flow dump exercises REPLY_MORE continuation, large
/// enough that modest topologies still answer in one frame.
pub const DEFAULT_STATS_PAGE: usize = 64;

impl SimSwitch {
    /// Create a switch with `n_ports` ports and `n_tables` flow tables,
    /// speaking the given protocol versions (highest preferred).
    pub fn new(dpid: u64, name: &str, n_ports: u16, n_tables: u8, supported: Vec<Version>) -> Self {
        assert!(n_tables >= 1, "switch needs at least one table");
        let mut ports = BTreeMap::new();
        for p in 1..=n_ports {
            ports.insert(
                p,
                SimPort {
                    port_no: p,
                    hw_addr: MacAddr::from_seed(dpid << 16 | u64::from(p)),
                    name: format!("{name}-eth{p}"),
                    config_down: false,
                    link_down: true,
                    curr_speed: 1_000_000,
                    max_speed: 10_000_000,
                    rx_packets: 0,
                    tx_packets: 0,
                    rx_bytes: 0,
                    tx_bytes: 0,
                    rx_dropped: 0,
                    tx_dropped: 0,
                },
            );
        }
        SimSwitch {
            dpid,
            name: name.to_string(),
            supported,
            negotiated: None,
            tables: (0..n_tables).map(|_| FlowTable::new()).collect(),
            ports,
            buffers: HashMap::new(),
            next_buffer: 1,
            n_buffers: 256,
            miss_send_len: 128,
            codec: FrameCodec::new(),
            next_xid: 1,
            stats_page_size: DEFAULT_STATS_PAGE,
        }
    }

    /// Cap multipart stats segments at `page` entries (`0` = 1). Lets
    /// tests force REPLY_MORE continuation on small topologies.
    pub fn set_stats_page(&mut self, page: usize) {
        self.stats_page_size = page.max(1);
    }

    /// The negotiated protocol version, if the handshake completed.
    pub fn negotiated(&self) -> Option<Version> {
        self.negotiated
    }

    /// Highest protocol version this switch supports.
    pub fn best_version(&self) -> Version {
        self.supported
            .iter()
            .copied()
            .max()
            .expect("switch supports at least one version")
    }

    /// Change the supported version set (simulates a firmware upgrade; the
    /// driver must re-handshake via [`SimSwitch::connect`]).
    pub fn set_supported(&mut self, versions: Vec<Version>) {
        assert!(!versions.is_empty());
        self.supported = versions;
        self.negotiated = None;
    }

    /// Total flow count across tables.
    pub fn flow_count(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Access a table (tests/diagnostics).
    pub fn table(&self, id: u8) -> Option<&FlowTable> {
        self.tables.get(usize::from(id))
    }

    fn xid(&mut self) -> u32 {
        self.next_xid += 1;
        self.next_xid
    }

    fn ctrl(&mut self, msg: &Message) -> Option<Effect> {
        let v = self.negotiated?;
        let xid = self.xid();
        match encode(v, msg, xid) {
            Ok(b) => Some(Effect::Control(b)),
            Err(_) => None, // message inexpressible in this version: drop
        }
    }

    /// Begin (or restart) the controller handshake: emits our HELLO.
    pub fn connect(&mut self) -> Vec<Effect> {
        self.negotiated = None;
        self.codec = FrameCodec::new();
        let v = self.best_version();
        let xid = self.xid();
        vec![Effect::Control(
            encode(v, &Message::Hello, xid).expect("hello encodes"),
        )]
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    /// A frame arrived on `in_port` at sim-second `now`.
    pub fn handle_frame(&mut self, in_port: u16, frame: Bytes, now: u64) -> Vec<Effect> {
        let len = frame.len() as u64;
        match self.ports.get_mut(&in_port) {
            Some(p) if p.config_down => {
                p.rx_dropped += 1;
                return Vec::new();
            }
            Some(p) => {
                p.rx_packets += 1;
                p.rx_bytes += len;
            }
            None => return Vec::new(),
        }
        if PacketSummary::parse(&frame).is_err() {
            return Vec::new(); // unparseable frames are dropped
        }
        self.pipeline(0, in_port, frame, now)
    }

    fn pipeline(&mut self, start_table: u8, in_port: u16, frame: Bytes, now: u64) -> Vec<Effect> {
        let mut effects = Vec::new();
        let mut table = usize::from(start_table);
        let mut current = frame;
        loop {
            if table >= self.tables.len() {
                break;
            }
            // Re-parse per table: earlier tables may have rewritten fields.
            let summary = match PacketSummary::parse(&current) {
                Ok(s) => s,
                Err(_) => break,
            };
            let hit = self.tables[table].lookup(&summary, in_port, current.len(), now);
            match hit {
                None => {
                    // Table miss: packet-in to the controller.
                    effects.extend(self.packet_in(
                        in_port,
                        current,
                        PacketInReason::NoMatch,
                        table as u8,
                    ));
                    break;
                }
                Some(e) => {
                    let outcome = match apply_actions(&e.actions, &current) {
                        Ok(o) => o,
                        Err(_) => break,
                    };
                    let mut to_emit: Vec<(u16, Bytes)> = outcome.outputs.clone();
                    // Queues share the port path in the simulator.
                    to_emit.extend(outcome.enqueued.iter().map(|(p, _q, f)| (*p, f.clone())));
                    for (port, f) in to_emit {
                        effects.extend(self.emit(port, in_port, f, table as u8));
                    }
                    match e.goto_table {
                        Some(next) if usize::from(next) > table => {
                            table = usize::from(next);
                            // Field rewrites carry forward between tables.
                            current = outcome.final_frame;
                            continue;
                        }
                        _ => break,
                    }
                }
            }
        }
        effects
    }

    /// Resolve an output port (possibly reserved) into transmit/control
    /// effects.
    fn emit(&mut self, port: u16, in_port: u16, frame: Bytes, table_id: u8) -> Vec<Effect> {
        match port {
            port_no::FLOOD | port_no::ALL => {
                let targets: Vec<u16> = self
                    .ports
                    .values()
                    .filter(|p| !p.config_down && !p.link_down && p.port_no != in_port)
                    .map(|p| p.port_no)
                    .collect();
                targets
                    .into_iter()
                    .flat_map(|p| self.transmit(p, frame.clone()))
                    .collect()
            }
            port_no::IN_PORT => self.transmit(in_port, frame),
            port_no::CONTROLLER => self.packet_in(in_port, frame, PacketInReason::Action, table_id),
            port_no::TABLE => {
                // Packet-out back into the pipeline.
                if PacketSummary::parse(&frame).is_ok() {
                    self.pipeline(0, in_port, frame, 0)
                } else {
                    Vec::new()
                }
            }
            port_no::NONE | port_no::LOCAL | port_no::NORMAL => Vec::new(),
            p => self.transmit(p, frame),
        }
    }

    fn transmit(&mut self, port: u16, frame: Bytes) -> Vec<Effect> {
        match self.ports.get_mut(&port) {
            Some(p) if !p.config_down && !p.link_down => {
                p.tx_packets += 1;
                p.tx_bytes += frame.len() as u64;
                vec![Effect::Transmit { port, frame }]
            }
            Some(p) => {
                p.tx_dropped += 1;
                Vec::new()
            }
            None => Vec::new(),
        }
    }

    fn packet_in(
        &mut self,
        in_port: u16,
        frame: Bytes,
        reason: PacketInReason,
        table_id: u8,
    ) -> Vec<Effect> {
        if self.negotiated.is_none() {
            return Vec::new(); // no controller: miss means drop
        }
        let total_len = frame.len() as u16;
        let buffer_id = if (self.buffers.len() as u32) < self.n_buffers {
            let id = self.next_buffer;
            self.next_buffer = self.next_buffer.wrapping_add(1).max(1);
            self.buffers.insert(id, (in_port, frame.clone()));
            Some(id)
        } else {
            None
        };
        let data = if buffer_id.is_some() {
            frame.slice(..frame.len().min(usize::from(self.miss_send_len)))
        } else {
            frame
        };
        self.ctrl(&Message::PacketIn {
            buffer_id,
            total_len,
            in_port,
            reason,
            table_id,
            data,
        })
        .into_iter()
        .collect()
    }

    // ------------------------------------------------------------------
    // Control path
    // ------------------------------------------------------------------

    /// Bytes arrived from the controller; returns effects (replies,
    /// transmissions triggered by packet-outs, …).
    pub fn handle_control_bytes(&mut self, data: &[u8], now: u64) -> Vec<Effect> {
        self.codec.feed(data);
        let mut effects = Vec::new();
        loop {
            let raw = match self.codec.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => break, // desync: drop remaining bytes
            };
            // HELLO handles version negotiation before decode dispatch.
            if raw.msg_type == 0 {
                let their_best = raw.version;
                let ours: Option<Version> = self
                    .supported
                    .iter()
                    .copied()
                    .filter(|v| v.wire() <= their_best)
                    .max();
                match ours {
                    Some(v) => self.negotiated = Some(v),
                    None => {
                        // No common version: OFPET_HELLO_FAILED.
                        let v = self.best_version();
                        let xid = self.xid();
                        if let Ok(b) = encode(
                            v,
                            &Message::Error {
                                err_type: 0,
                                code: 0,
                                data: Bytes::from_static(b"incompatible version"),
                            },
                            xid,
                        ) {
                            effects.push(Effect::Control(b));
                        }
                    }
                }
                continue;
            }
            let msg = match decode(&raw) {
                Ok(m) => m,
                Err(_) => {
                    // OFPET_BAD_REQUEST
                    if let Some(e) = self.ctrl(&Message::Error {
                        err_type: 1,
                        code: 0,
                        data: raw.body.clone(),
                    }) {
                        effects.push(e);
                    }
                    continue;
                }
            };
            effects.extend(self.handle_message(msg, now));
        }
        effects
    }

    /// Process one decoded controller message.
    pub fn handle_message(&mut self, msg: Message, now: u64) -> Vec<Effect> {
        match msg {
            Message::Hello => Vec::new(), // handled at byte level
            Message::EchoRequest(data) => {
                self.ctrl(&Message::EchoReply(data)).into_iter().collect()
            }
            Message::EchoReply(_) | Message::Error { .. } => Vec::new(),
            Message::FeaturesRequest => {
                let v = match self.negotiated {
                    Some(v) => v,
                    None => return Vec::new(),
                };
                let ports = if v == Version::V1_0 {
                    self.ports.values().map(SimPort::desc).collect()
                } else {
                    Vec::new()
                };
                self.ctrl(&Message::FeaturesReply(SwitchFeatures {
                    datapath_id: self.dpid,
                    n_buffers: self.n_buffers,
                    n_tables: self.tables.len() as u8,
                    capabilities: 0x7, // flow stats | table stats | port stats
                    actions: 0xfff,
                    ports,
                }))
                .into_iter()
                .collect()
            }
            Message::GetConfigRequest => self
                .ctrl(&Message::GetConfigReply {
                    miss_send_len: self.miss_send_len,
                })
                .into_iter()
                .collect(),
            Message::SetConfig { miss_send_len } => {
                self.miss_send_len = miss_send_len;
                Vec::new()
            }
            Message::FlowMod(fm) => self.handle_flow_mod(fm, now),
            Message::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                let frame = match buffer_id {
                    Some(id) => match self.buffers.remove(&id) {
                        Some((_, f)) => f,
                        None => return Vec::new(),
                    },
                    None => data,
                };
                let outcome = match apply_actions(&actions, &frame) {
                    Ok(o) => o,
                    Err(_) => return Vec::new(),
                };
                let mut effects = Vec::new();
                for (port, f) in &outcome.outputs {
                    effects.extend(self.emit(*port, in_port, f.clone(), 0));
                }
                for (port, _q, f) in &outcome.enqueued {
                    effects.extend(self.emit(*port, in_port, f.clone(), 0));
                }
                effects
            }
            Message::PortMod {
                port_no: pn, down, ..
            } => {
                let desc = match self.ports.get_mut(&pn) {
                    Some(p) => {
                        p.config_down = down;
                        p.desc()
                    }
                    None => return Vec::new(),
                };
                self.ctrl(&Message::PortStatus {
                    reason: PortReason::Modify,
                    desc,
                })
                .into_iter()
                .collect()
            }
            Message::StatsRequest(req) => self.handle_stats(req, now),
            Message::BarrierRequest => self.ctrl(&Message::BarrierReply).into_iter().collect(),
            // Controller-bound messages arriving at a switch are ignored.
            _ => Vec::new(),
        }
    }

    fn handle_flow_mod(&mut self, fm: FlowMod, now: u64) -> Vec<Effect> {
        let tid = usize::from(fm.table_id);
        if tid >= self.tables.len() {
            return self
                .ctrl(&Message::Error {
                    err_type: 5, // OFPET_FLOW_MOD_FAILED
                    code: 2,     // BAD_TABLE_ID
                    data: Bytes::new(),
                })
                .into_iter()
                .collect();
        }
        let mut effects = Vec::new();
        match fm.command {
            FlowModCommand::Add => {
                let mut e = entry(fm.m, fm.priority, fm.actions.clone());
                e.goto_table = fm.goto_table;
                e.cookie = fm.cookie;
                e.idle_timeout = fm.idle_timeout;
                e.hard_timeout = fm.hard_timeout;
                e.flags = fm.flags;
                self.tables[tid].add(e, now);
                // Release a buffered packet through the new flow.
                if let Some(id) = fm.buffer_id {
                    if let Some((in_port, frame)) = self.buffers.remove(&id) {
                        if PacketSummary::parse(&frame).is_ok() {
                            effects.extend(self.pipeline(fm.table_id, in_port, frame, now));
                        }
                    }
                }
            }
            FlowModCommand::Modify => {
                self.tables[tid].modify(&fm.m, &fm.actions, fm.goto_table);
            }
            FlowModCommand::ModifyStrict => {
                self.tables[tid].modify_strict(&fm.m, fm.priority, &fm.actions, fm.goto_table);
            }
            FlowModCommand::Delete => {
                let removed = self.tables[tid].delete(&fm.m, fm.out_port);
                effects.extend(self.flow_removed_msgs(removed, now));
            }
            FlowModCommand::DeleteStrict => {
                let removed = self.tables[tid].delete_strict(&fm.m, fm.priority);
                effects.extend(self.flow_removed_msgs(removed, now));
            }
        }
        effects
    }

    fn flow_removed_msgs(&mut self, removed: Vec<RemovedFlow>, now: u64) -> Vec<Effect> {
        let mut out = Vec::new();
        for r in removed {
            if r.entry.flags & flow_mod_flags::SEND_FLOW_REM == 0 {
                continue;
            }
            if let Some(e) = self.ctrl(&Message::FlowRemoved {
                m: r.entry.m,
                cookie: r.entry.cookie,
                priority: r.entry.priority,
                reason: r.reason,
                duration_sec: (now - r.entry.installed_at) as u32,
                packet_count: r.entry.packets,
                byte_count: r.entry.bytes,
            }) {
                out.push(e);
            }
        }
        out
    }

    fn handle_stats(&mut self, req: StatsRequest, now: u64) -> Vec<Effect> {
        let rep = match req {
            StatsRequest::Desc => StatsReply::Desc {
                description: format!("yanc simulated switch dpid={:#x}", self.dpid),
            },
            StatsRequest::Flow { table_id, m } => {
                let mut flows = Vec::new();
                for (tid, t) in self.tables.iter().enumerate() {
                    if table_id != 0xff && usize::from(table_id) != tid {
                        continue;
                    }
                    for e in t.iter().filter(|e| m.subsumes(&e.m)) {
                        flows.push(FlowStats {
                            table_id: tid as u8,
                            m: e.m,
                            priority: e.priority,
                            cookie: e.cookie,
                            duration_sec: (now - e.installed_at) as u32,
                            packet_count: e.packets,
                            byte_count: e.bytes,
                        });
                    }
                }
                StatsReply::Flow(flows)
            }
            StatsRequest::Aggregate { table_id, m } => {
                let mut pc = 0;
                let mut bc = 0;
                let mut fc = 0;
                for (tid, t) in self.tables.iter().enumerate() {
                    if table_id != 0xff && usize::from(table_id) != tid {
                        continue;
                    }
                    let (p, b, n) = t.aggregate(&m);
                    pc += p;
                    bc += b;
                    fc += n;
                }
                StatsReply::Aggregate {
                    packet_count: pc,
                    byte_count: bc,
                    flow_count: fc,
                }
            }
            StatsRequest::Port { port_no: pn } => {
                let ports = if pn == port_no::NONE {
                    self.ports.values().map(SimPort::stats).collect()
                } else {
                    self.ports
                        .get(&pn)
                        .map(SimPort::stats)
                        .into_iter()
                        .collect()
                };
                StatsReply::Port(ports)
            }
            StatsRequest::PortDesc => {
                StatsReply::PortDesc(self.ports.values().map(SimPort::desc).collect())
            }
        };
        // Stream the reply in multipart segments: every part shares one
        // xid, all-but-last carry REPLY_MORE. Single-page replies are
        // byte-identical to an unsegmented encode.
        let Some(v) = self.negotiated else {
            return Vec::new();
        };
        let xid = self.xid();
        multipart::paginate(&rep, self.stats_page_size)
            .into_iter()
            .filter_map(|p| {
                multipart::encode_part(v, &p.reply, p.more, xid)
                    .ok()
                    .map(Effect::Control)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    /// Advance flow timeouts to sim-second `now`.
    pub fn tick(&mut self, now: u64) -> Vec<Effect> {
        let mut removed = Vec::new();
        for t in &mut self.tables {
            removed.extend(t.expire(now));
        }
        self.flow_removed_msgs(removed, now)
    }

    /// Mark a port's link up/down (called by the network when links are
    /// added/removed); emits PortStatus.
    pub fn set_link_state(&mut self, port: u16, link_down: bool) -> Vec<Effect> {
        let desc = match self.ports.get_mut(&port) {
            Some(p) => {
                p.link_down = link_down;
                p.desc()
            }
            None => return Vec::new(),
        };
        self.ctrl(&Message::PortStatus {
            reason: PortReason::Modify,
            desc,
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_openflow::{Action, FlowMatch};
    use yanc_packet::build_tcp_syn;

    fn frame() -> Bytes {
        build_tcp_syn(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1000,
            22,
        )
    }

    fn sw(versions: Vec<Version>) -> SimSwitch {
        let mut s = SimSwitch::new(0x1, "sw1", 4, 2, versions);
        for p in s.ports.values_mut() {
            p.link_down = false;
        }
        s
    }

    /// Complete the controller handshake directly (most tests don't care
    /// about the byte-level exchange; net.rs covers that).
    fn handshake(s: &mut SimSwitch, v: Version) {
        let hello = encode(v, &Message::Hello, 1).unwrap();
        s.connect();
        s.handle_control_bytes(&hello, 0);
        assert_eq!(s.negotiated(), Some(v));
    }

    fn decode_controls(effects: &[Effect]) -> Vec<Message> {
        let mut out = Vec::new();
        for e in effects {
            if let Effect::Control(b) = e {
                let mut c = FrameCodec::new();
                c.feed(b);
                while let Some(f) = c.next_frame().unwrap() {
                    out.push(decode(&f).unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn version_negotiation_picks_highest_common() {
        let mut s = sw(vec![Version::V1_0, Version::V1_3]);
        handshake(&mut s, Version::V1_3);
        let mut s = sw(vec![Version::V1_0]);
        handshake(&mut s, Version::V1_0);
        // Controller offers 1.3; switch only has 1.0 → 1.0 chosen.
        let mut s = sw(vec![Version::V1_0]);
        s.connect();
        s.handle_control_bytes(&encode(Version::V1_3, &Message::Hello, 1).unwrap(), 0);
        assert_eq!(s.negotiated(), Some(Version::V1_0));
    }

    #[test]
    fn features_reply_has_ports_only_in_v10() {
        for (v, want_ports) in [(Version::V1_0, true), (Version::V1_3, false)] {
            let mut s = sw(vec![v]);
            handshake(&mut s, v);
            let fx = s.handle_message(Message::FeaturesRequest, 0);
            let msgs = decode_controls(&fx);
            match &msgs[0] {
                Message::FeaturesReply(f) => {
                    assert_eq!(f.datapath_id, 1);
                    assert_eq!(f.ports.is_empty(), !want_ports);
                    assert_eq!(f.n_tables, 2);
                }
                m => panic!("unexpected {m:?}"),
            }
        }
    }

    #[test]
    fn miss_generates_packet_in_with_buffer() {
        let mut s = sw(vec![Version::V1_0]);
        handshake(&mut s, Version::V1_0);
        let fx = s.handle_frame(1, frame(), 0);
        let msgs = decode_controls(&fx);
        match &msgs[0] {
            Message::PacketIn {
                buffer_id,
                in_port,
                reason,
                ..
            } => {
                assert!(buffer_id.is_some());
                assert_eq!(*in_port, 1);
                assert_eq!(*reason, PacketInReason::NoMatch);
            }
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn miss_without_controller_drops() {
        let mut s = sw(vec![Version::V1_0]);
        assert!(s.handle_frame(1, frame(), 0).is_empty());
    }

    #[test]
    fn flow_mod_add_then_forward() {
        let mut s = sw(vec![Version::V1_3]);
        handshake(&mut s, Version::V1_3);
        let fm = FlowMod::add(
            FlowMatch {
                in_port: Some(1),
                ..Default::default()
            },
            10,
            vec![Action::out(2)],
        );
        s.handle_message(Message::FlowMod(fm), 0);
        assert_eq!(s.flow_count(), 1);
        let fx = s.handle_frame(1, frame(), 1);
        assert!(matches!(&fx[0], Effect::Transmit { port: 2, .. }));
        // Counters moved.
        assert_eq!(s.ports[&1].rx_packets, 1);
        assert_eq!(s.ports[&2].tx_packets, 1);
    }

    #[test]
    fn buffered_packet_released_by_flow_mod() {
        let mut s = sw(vec![Version::V1_0]);
        handshake(&mut s, Version::V1_0);
        let fx = s.handle_frame(1, frame(), 0);
        let buffer_id = match &decode_controls(&fx)[0] {
            Message::PacketIn { buffer_id, .. } => buffer_id.unwrap(),
            _ => panic!(),
        };
        let mut fm = FlowMod::add(FlowMatch::any(), 1, vec![Action::out(3)]);
        fm.buffer_id = Some(buffer_id);
        let fx = s.handle_message(Message::FlowMod(fm), 0);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Transmit { port: 3, .. })));
    }

    #[test]
    fn flood_excludes_ingress_and_down_ports() {
        let mut s = sw(vec![Version::V1_0]);
        handshake(&mut s, Version::V1_0);
        s.ports.get_mut(&3).unwrap().config_down = true;
        s.handle_message(
            Message::FlowMod(FlowMod::add(
                FlowMatch::any(),
                1,
                vec![Action::out(port_no::FLOOD)],
            )),
            0,
        );
        let fx = s.handle_frame(1, frame(), 0);
        let ports: Vec<u16> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Transmit { port, .. } => Some(*port),
                _ => None,
            })
            .collect();
        assert_eq!(ports, vec![2, 4]); // not 1 (ingress), not 3 (down)
    }

    #[test]
    fn goto_table_continues_pipeline() {
        let mut s = sw(vec![Version::V1_3]);
        handshake(&mut s, Version::V1_3);
        let mut fm0 = FlowMod::add(FlowMatch::any(), 1, vec![]);
        fm0.goto_table = Some(1);
        s.handle_message(Message::FlowMod(fm0), 0);
        let mut fm1 = FlowMod::add(FlowMatch::any(), 1, vec![Action::out(2)]);
        fm1.table_id = 1;
        s.handle_message(Message::FlowMod(fm1), 0);
        let fx = s.handle_frame(1, frame(), 0);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Transmit { port: 2, .. })));
    }

    #[test]
    fn packet_out_floods() {
        let mut s = sw(vec![Version::V1_0]);
        handshake(&mut s, Version::V1_0);
        let fx = s.handle_message(
            Message::PacketOut {
                buffer_id: None,
                in_port: port_no::NONE,
                actions: vec![Action::out(port_no::FLOOD)],
                data: frame(),
            },
            0,
        );
        assert_eq!(fx.len(), 4);
    }

    #[test]
    fn port_mod_brings_port_down_and_reports() {
        let mut s = sw(vec![Version::V1_0]);
        handshake(&mut s, Version::V1_0);
        let fx = s.handle_message(
            Message::PortMod {
                port_no: 2,
                hw_addr: s.ports[&2].hw_addr,
                down: true,
            },
            0,
        );
        let msgs = decode_controls(&fx);
        assert!(
            matches!(&msgs[0], Message::PortStatus { reason: PortReason::Modify, desc } if desc.config_down)
        );
        // Frames no longer leave port 2.
        s.handle_message(
            Message::FlowMod(FlowMod::add(FlowMatch::any(), 1, vec![Action::out(2)])),
            0,
        );
        let fx = s.handle_frame(1, frame(), 0);
        assert!(fx.is_empty());
        assert_eq!(s.ports[&2].tx_dropped, 1);
    }

    #[test]
    fn flow_removed_sent_when_flagged() {
        let mut s = sw(vec![Version::V1_3]);
        handshake(&mut s, Version::V1_3);
        let mut fm = FlowMod::add(
            FlowMatch {
                dl_type: Some(0x0800),
                ..Default::default()
            },
            5,
            vec![],
        );
        fm.flags = flow_mod_flags::SEND_FLOW_REM;
        fm.hard_timeout = 10;
        s.handle_message(Message::FlowMod(fm), 0);
        assert!(s.tick(5).is_empty());
        let fx = s.tick(10);
        let msgs = decode_controls(&fx);
        assert!(matches!(&msgs[0], Message::FlowRemoved { .. }));
        assert_eq!(s.flow_count(), 0);
    }

    #[test]
    fn stats_flow_and_aggregate() {
        let mut s = sw(vec![Version::V1_0]);
        handshake(&mut s, Version::V1_0);
        s.handle_message(
            Message::FlowMod(FlowMod::add(FlowMatch::any(), 1, vec![Action::out(2)])),
            0,
        );
        s.handle_frame(1, frame(), 1);
        let fx = s.handle_message(
            Message::StatsRequest(StatsRequest::Flow {
                table_id: 0xff,
                m: FlowMatch::any(),
            }),
            2,
        );
        match &decode_controls(&fx)[0] {
            Message::StatsReply(StatsReply::Flow(flows)) => {
                assert_eq!(flows.len(), 1);
                assert_eq!(flows[0].packet_count, 1);
            }
            m => panic!("unexpected {m:?}"),
        }
        let fx = s.handle_message(
            Message::StatsRequest(StatsRequest::Aggregate {
                table_id: 0xff,
                m: FlowMatch::any(),
            }),
            2,
        );
        match &decode_controls(&fx)[0] {
            Message::StatsReply(StatsReply::Aggregate { flow_count, .. }) => {
                assert_eq!(*flow_count, 1)
            }
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn echo_and_barrier() {
        let mut s = sw(vec![Version::V1_3]);
        handshake(&mut s, Version::V1_3);
        let fx = s.handle_message(Message::EchoRequest(Bytes::from_static(b"hi")), 0);
        assert!(matches!(&decode_controls(&fx)[0], Message::EchoReply(d) if &d[..] == b"hi"));
        let fx = s.handle_message(Message::BarrierRequest, 0);
        assert!(matches!(&decode_controls(&fx)[0], Message::BarrierReply));
    }

    #[test]
    fn bad_table_id_errors() {
        let mut s = sw(vec![Version::V1_3]);
        handshake(&mut s, Version::V1_3);
        let mut fm = FlowMod::add(FlowMatch::any(), 1, vec![]);
        fm.table_id = 9;
        let fx = s.handle_message(Message::FlowMod(fm), 0);
        assert!(matches!(
            &decode_controls(&fx)[0],
            Message::Error { err_type: 5, .. }
        ));
    }
}
