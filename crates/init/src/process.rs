//! Process-table vocabulary: pids, signals, lifecycle states, restart
//! policies and process specs.
//!
//! yanc treats controller applications, daemons and drivers as *processes*
//! (paper §3.2: "applications are separate processes with their own
//! credentials"). This module defines the plain-data half of that model;
//! [`crate::Supervisor`] is the machinery that runs it.

use std::fmt;

use yanc_vfs::AppLimits;

/// A yanc process id. Allocated densely from 1 by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The subset of POSIX signals the supervisor understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// `SIGHUP` (1): reload configuration via [`yanc::YancApp::reload`].
    Hup,
    /// `SIGTERM` (15): graceful stop via [`yanc::YancApp::shutdown`];
    /// the process is *not* restarted.
    Term,
    /// `SIGKILL` (9): immediate death — no shutdown hook runs, the
    /// supervisor reclaims kernel resources, and the restart policy
    /// decides what happens next.
    Kill,
}

impl Signal {
    /// Parse `"TERM"`, `"SIGTERM"`, `"15"`, etc.
    pub fn parse(s: &str) -> Option<Signal> {
        match s.trim().trim_start_matches('-').trim_start_matches("SIG") {
            "HUP" | "hup" | "1" => Some(Signal::Hup),
            "KILL" | "kill" | "9" => Some(Signal::Kill),
            "TERM" | "term" | "15" => Some(Signal::Term),
            _ => None,
        }
    }

    /// The conventional name (without the `SIG` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Signal::Hup => "HUP",
            Signal::Term => "TERM",
            Signal::Kill => "KILL",
        }
    }

    /// The conventional number.
    pub fn number(self) -> u32 {
        match self {
            Signal::Hup => 1,
            Signal::Kill => 9,
            Signal::Term => 15,
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lifecycle states of a supervised process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Spawned but has not completed a scheduler pass yet.
    Starting,
    /// Alive and driven every supervisor tick.
    Running,
    /// Died abnormally; waiting out an exponential backoff before restart.
    Backoff,
    /// Dead with its restart budget exhausted (or restart disabled on
    /// failure paths). Terminal until an operator intervenes.
    Failed,
    /// Stopped cleanly (`SIGTERM`). Terminal; never restarted.
    Stopped,
}

impl ProcessState {
    /// Lower-case name as shown in `/net/.proc/apps/<pid>/status`.
    pub fn name(self) -> &'static str {
        match self {
            ProcessState::Starting => "starting",
            ProcessState::Running => "running",
            ProcessState::Backoff => "backoff",
            ProcessState::Failed => "failed",
            ProcessState::Stopped => "stopped",
        }
    }

    pub(crate) fn code(self) -> u64 {
        match self {
            ProcessState::Starting => 0,
            ProcessState::Running => 1,
            ProcessState::Backoff => 2,
            ProcessState::Failed => 3,
            ProcessState::Stopped => 4,
        }
    }

    pub(crate) fn from_code(code: u64) -> ProcessState {
        match code {
            1 => ProcessState::Running,
            2 => ProcessState::Backoff,
            3 => ProcessState::Failed,
            4 => ProcessState::Stopped,
            _ => ProcessState::Starting,
        }
    }
}

/// What the supervisor does when a process dies abnormally.
///
/// Backoff is exponential in *supervisor ticks* (the virtual clock):
/// restart `n` waits `backoff_base << n` ticks, so a crash-looping process
/// consumes geometrically less scheduler attention — classic init design,
/// kept deterministic here because ticks (not wall time) drive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restart after abnormal death at all?
    pub restart: bool,
    /// Base backoff delay in ticks (restart `n` waits `base << n`).
    pub backoff_base: u64,
    /// Abnormal deaths tolerated before the process is marked `failed`.
    pub max_restarts: u32,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            restart: true,
            backoff_base: 2,
            max_restarts: 8,
        }
    }
}

impl RestartPolicy {
    /// Never restart: any abnormal death is terminal (`failed`).
    pub fn never() -> Self {
        RestartPolicy {
            restart: false,
            backoff_base: 0,
            max_restarts: 0,
        }
    }

    /// Backoff delay (ticks) before restart number `restarts + 1`.
    pub fn backoff_for(&self, restarts: u32) -> u64 {
        self.backoff_base.saturating_mul(1u64 << restarts.min(16))
    }
}

/// Everything the supervisor needs to know to run one process.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Process name (unique per table; also the default cmdline).
    pub name: String,
    /// Human-readable command line shown in `.proc/apps/<pid>/cmdline`.
    pub cmdline: String,
    /// cgroup-style resource limits enforced at the vfs boundary.
    pub limits: AppLimits,
    /// Restart policy for abnormal deaths.
    pub policy: RestartPolicy,
    /// Namespace confinement: `(at, target)` bind mounts. Empty means the
    /// process sees the whole tree.
    pub binds: Vec<(String, String)>,
    /// Overlay confinement: `(at, lowers, upper)` copy-on-write mounts.
    /// The process reads the merged lower layers at `at`, its writes stay
    /// in the private `upper` directory until an atomic view commit.
    pub overlays: Vec<(String, Vec<String>, String)>,
    /// Grant `CAP_DAC_OVERRIDE` so the process can write the root-owned
    /// `/net` tree while keeping its own uid for accounting. Defaults to
    /// true; confined processes drop it.
    pub dac_override: bool,
}

impl ProcessSpec {
    /// A spec with default policy, no limits and full tree access.
    pub fn new(name: &str) -> Self {
        ProcessSpec {
            name: name.to_string(),
            cmdline: name.to_string(),
            limits: AppLimits::default(),
            policy: RestartPolicy::default(),
            binds: Vec::new(),
            overlays: Vec::new(),
            dac_override: true,
        }
    }

    /// Set the displayed command line.
    pub fn cmdline(mut self, c: &str) -> Self {
        self.cmdline = c.to_string();
        self
    }

    /// Set resource limits.
    pub fn limits(mut self, l: AppLimits) -> Self {
        self.limits = l;
        self
    }

    /// Set the restart policy.
    pub fn policy(mut self, p: RestartPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Confine the process to a namespace built from bind mounts, and drop
    /// `CAP_DAC_OVERRIDE` (plain POSIX permissions apply inside).
    pub fn confined(mut self, binds: &[(&str, &str)]) -> Self {
        self.binds = binds
            .iter()
            .map(|(a, t)| (a.to_string(), t.to_string()))
            .collect();
        self.dac_override = false;
        self
    }

    /// Confine the process behind a copy-on-write overlay: it reads the
    /// merged `lowers` at `at`, and every write stays in its private
    /// `upper` layer until the app commits the staged view atomically.
    /// Drops `CAP_DAC_OVERRIDE` like [`ProcessSpec::confined`].
    pub fn overlay_confined(mut self, at: &str, lowers: &[&str], upper: &str) -> Self {
        self.overlays.push((
            at.to_string(),
            lowers.iter().map(|l| l.to_string()).collect(),
            upper.to_string(),
        ));
        self.dac_override = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_parsing() {
        assert_eq!(Signal::parse("TERM"), Some(Signal::Term));
        assert_eq!(Signal::parse("SIGKILL"), Some(Signal::Kill));
        assert_eq!(Signal::parse("-9"), Some(Signal::Kill));
        assert_eq!(Signal::parse("1"), Some(Signal::Hup));
        assert_eq!(Signal::parse("15"), Some(Signal::Term));
        assert_eq!(Signal::parse("USR1"), None);
        assert_eq!(Signal::Term.number(), 15);
        assert_eq!(Signal::Kill.name(), "KILL");
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let p = RestartPolicy::default();
        assert_eq!(p.backoff_for(0), 2);
        assert_eq!(p.backoff_for(1), 4);
        assert_eq!(p.backoff_for(3), 16);
        // Clamped shift: huge restart counts must not overflow.
        assert!(p.backoff_for(200) >= p.backoff_for(16));
    }

    #[test]
    fn state_codes_round_trip() {
        for s in [
            ProcessState::Starting,
            ProcessState::Running,
            ProcessState::Backoff,
            ProcessState::Failed,
            ProcessState::Stopped,
        ] {
            assert_eq!(ProcessState::from_code(s.code()), s);
        }
    }

    #[test]
    fn confined_spec_drops_dac_override() {
        let s = ProcessSpec::new("x").confined(&[("/", "/net/views/x")]);
        assert!(!s.dac_override);
        assert_eq!(s.binds.len(), 1);
    }
}
