//! Deterministic fault injection.
//!
//! Faults are *scheduled at supervisor ticks*, not injected from wall-clock
//! timers, so every experiment that uses them replays identically: "kill the
//! topology daemon at tick 7, drop the next two control frames to switch 3
//! at tick 9" is a complete, reproducible failure scenario. The injector is
//! just an ordered queue; [`crate::Supervisor::apply_faults`] (control-plane
//! faults) and [`crate::Supervisor::apply_cluster_faults`] (dfs faults)
//! drain what is due each tick.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::process::{Pid, Signal};

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `SIGKILL` a process mid-event-loop (no shutdown hook runs).
    KillApp {
        /// Target process.
        pid: Pid,
    },
    /// Deliver an arbitrary signal to a process.
    SignalApp {
        /// Target process.
        pid: Pid,
        /// The signal.
        sig: Signal,
    },
    /// Drop the next `frames` switch→driver control-channel frames.
    DropControl {
        /// Target switch datapath id.
        dpid: u64,
        /// Frames to drop.
        frames: u32,
    },
    /// Swap the next two queued switch→driver frames (reordering).
    ReorderControl {
        /// Target switch datapath id.
        dpid: u64,
    },
    /// Sever a dfs node (its link goes down) for `for_ticks` virtual ticks.
    DfsDown {
        /// Cluster node index.
        node: usize,
        /// How long the link stays severed.
        for_ticks: u64,
    },
    /// Bring a dfs node back (scheduled automatically by [`Fault::DfsDown`]).
    DfsUp {
        /// Cluster node index.
        node: usize,
    },
    /// Crash the whole controller process mid-tick: the supervisor records
    /// the request and the driving harness tears the world down, keeping
    /// only what the vfs journal persisted. The journal torture and E23
    /// warm-restart suites schedule this to crash deterministically at a
    /// chosen tick (including mid-snapshot-interval).
    CrashController,
}

impl Fault {
    fn is_cluster(&self) -> bool {
        matches!(self, Fault::DfsDown { .. } | Fault::DfsUp { .. })
    }

    /// Short description for the fault log.
    pub fn describe(&self) -> String {
        match self {
            Fault::KillApp { pid } => format!("kill pid {pid}"),
            Fault::SignalApp { pid, sig } => format!("signal {sig} pid {pid}"),
            Fault::DropControl { dpid, frames } => {
                format!("drop {frames} control frames dpid {dpid:#x}")
            }
            Fault::ReorderControl { dpid } => {
                format!("reorder control frames dpid {dpid:#x}")
            }
            Fault::DfsDown { node, for_ticks } => {
                format!("dfs node {node} down for {for_ticks} ticks")
            }
            Fault::DfsUp { node } => format!("dfs node {node} up"),
            Fault::CrashController => "crash controller".to_string(),
        }
    }
}

/// A deterministic, tick-driven fault schedule.
#[derive(Default)]
pub struct FaultInjector {
    /// Control-plane faults (processes, driver channels), insertion-ordered.
    net: Vec<(u64, Fault)>,
    /// Cluster (dfs) faults, insertion-ordered.
    cluster: Vec<(u64, Fault)>,
    /// `(tick, description)` log of everything that fired, shared so the
    /// supervisor can render it into `.proc`.
    log: Arc<Mutex<Vec<String>>>,
}

impl FaultInjector {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Schedule `fault` to fire at supervisor tick `tick`.
    pub fn at(&mut self, tick: u64, fault: Fault) {
        if fault.is_cluster() {
            self.cluster.push((tick, fault));
        } else {
            self.net.push((tick, fault));
        }
    }

    /// Faults not yet fired (both queues).
    pub fn pending(&self) -> usize {
        self.net.len() + self.cluster.len()
    }

    /// Control-plane faults not yet fired.
    pub fn pending_net(&self) -> usize {
        self.net.len()
    }

    /// Shared handle to the fired-fault log.
    pub fn log(&self) -> Arc<Mutex<Vec<String>>> {
        self.log.clone()
    }

    fn drain(queue: &mut Vec<(u64, Fault)>, now: u64) -> Vec<Fault> {
        // Insertion order among same-tick faults is preserved: scheduling
        // order is the tiebreak, which keeps replays byte-identical.
        let mut due = Vec::new();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].0 <= now {
                due.push(queue.remove(i).1);
            } else {
                i += 1;
            }
        }
        due
    }

    /// Drain control-plane faults due at or before `now`, logging them.
    pub(crate) fn due_net(&mut self, now: u64) -> Vec<Fault> {
        let due = Self::drain(&mut self.net, now);
        let mut log = self.log.lock();
        for f in &due {
            log.push(format!("tick {now}: {}", f.describe()));
        }
        due
    }

    /// Drain cluster faults due at or before `now`, logging them.
    pub(crate) fn due_cluster(&mut self, now: u64) -> Vec<Fault> {
        let due = Self::drain(&mut self.cluster, now);
        let mut log = self.log.lock();
        for f in &due {
            log.push(format!("tick {now}: {}", f.describe()));
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_in_tick_then_insertion_order() {
        let mut inj = FaultInjector::new();
        inj.at(5, Fault::KillApp { pid: Pid(1) });
        inj.at(3, Fault::ReorderControl { dpid: 7 });
        inj.at(3, Fault::DropControl { dpid: 7, frames: 2 });
        assert_eq!(inj.pending(), 3);
        assert!(inj.due_net(2).is_empty());
        let due = inj.due_net(3);
        assert_eq!(
            due,
            vec![
                Fault::ReorderControl { dpid: 7 },
                Fault::DropControl { dpid: 7, frames: 2 },
            ]
        );
        assert_eq!(inj.pending(), 1);
        assert_eq!(inj.due_net(10), vec![Fault::KillApp { pid: Pid(1) }]);
        assert_eq!(inj.log().lock().len(), 3);
    }

    #[test]
    fn cluster_faults_use_their_own_queue() {
        let mut inj = FaultInjector::new();
        inj.at(
            1,
            Fault::DfsDown {
                node: 0,
                for_ticks: 4,
            },
        );
        inj.at(1, Fault::KillApp { pid: Pid(2) });
        assert_eq!(inj.due_net(1).len(), 1);
        assert_eq!(inj.due_cluster(1).len(), 1);
        assert_eq!(inj.pending(), 0);
    }
}
