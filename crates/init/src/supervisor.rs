//! The process table: spawn, schedule, signal, restart, reclaim.
//!
//! `yanc-init` is the controller's pid 1. Every daemon, application and
//! driver runs as a *supervised yanc process*: it has a pid, its own
//! credentials (a non-zero uid that the vfs charges resources to), optional
//! namespace confinement, cgroup-style limits, and a restart policy. The
//! supervisor drives all of it from a deterministic tick loop — no threads,
//! no wall clock — so a kill/restart/reconverge experiment replays with
//! byte-identical syscall counts.
//!
//! Control surface:
//! * `/net/.init/ctl` — append `kill [-SIG] <pid>` lines (the `kill`
//!   coreutil does); the supervisor consumes them each tick.
//! * `/net/.proc/apps/<pid>/{status,cmdline,limits,restarts,signals}` —
//!   read-only process introspection, Linux-`/proc` style.
//! * `/net/.proc/init/{ticks,driver_reattaches,faults}` — the supervisor
//!   about itself.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use yanc::{YancApp, YancError, YancFs, YancResult};
use yanc_dfs::Cluster;
use yanc_driver::ControlRuntime;
use yanc_vfs::{Credentials, Errno, Filesystem, Namespace, Overlay, Uid, VPath};

use crate::fault::{Fault, FaultInjector};
use crate::process::{Pid, ProcessSpec, ProcessState, Signal};

/// What a factory closure gets when (re)building a process instance.
pub struct ProcessCtx {
    /// The process id.
    pub pid: Pid,
    /// The uid all of this process's vfs activity is charged to.
    pub uid: u32,
    /// The tree, accessed as this process's credentials.
    pub yfs: YancFs,
    /// Namespace-confined view, when the spec asked for one.
    pub namespace: Option<Namespace>,
}

/// Builds (and, after a kill, *re*builds) a process's application instance.
///
/// Restart means a fresh instance: in-memory state is lost exactly like a
/// real process's heap, and must be re-derived from the filesystem — which
/// is the paper's whole point about state externalization.
pub type AppFactory = Box<dyn Fn(&ProcessCtx) -> YancResult<Box<dyn YancApp>>>;

/// Per-process state shared with `.proc` render closures.
struct ProcShared {
    state: AtomicU64,
    restarts: AtomicU64,
    throttles: AtomicU64,
    /// Scheduler slices actually given to the app (`run_once` calls).
    sched_runs: AtomicU64,
    /// Slices skipped because the app reported not-[`YancApp::ready`]:
    /// ticks an idle, poll-blocked process did *not* consume.
    sched_skips: AtomicU64,
    /// Ticks between the last abnormal death and the respawn completing.
    last_restart_latency: AtomicU64,
    signal_log: Mutex<Vec<String>>,
    last_error: Mutex<String>,
}

impl ProcShared {
    fn set_state(&self, s: ProcessState) {
        self.state.store(s.code(), Ordering::Relaxed);
    }

    fn state(&self) -> ProcessState {
        ProcessState::from_code(self.state.load(Ordering::Relaxed))
    }
}

/// One row of the process table.
struct ProcEntry {
    spec: ProcessSpec,
    pid: Pid,
    uid: u32,
    factory: AppFactory,
    app: Option<Box<dyn YancApp>>,
    shared: Arc<ProcShared>,
    backoff_until: Option<u64>,
    died_at: u64,
}

/// The supervisor: yanc's pid 1.
pub struct Supervisor {
    yfs: YancFs,
    procs: BTreeMap<u32, ProcEntry>,
    next_pid: u32,
    next_uid: u32,
    ticks: Arc<AtomicU64>,
    ctl_offset: usize,
    /// Deterministic fault schedule (public: tests script it directly).
    pub faults: FaultInjector,
    driver_reattaches: Arc<AtomicU64>,
    /// Cumulative open handles force-closed by uid reclaims (spawn failures,
    /// SIGTERM/SIGKILL, abnormal death). Exposed as
    /// `.proc/init/reclaimed_handles`.
    reclaimed_handles: Arc<AtomicU64>,
    /// Set when a [`Fault::CrashController`] fires; the driving harness
    /// polls [`Supervisor::take_controller_crash`] and tears the world down
    /// at that exact tick, restoring from the vfs journal.
    controller_crashed: bool,
}

impl Supervisor {
    /// Build a supervisor over `yfs` (which should be the root-credential
    /// façade). Creates `<root>/.init/ctl` and registers the supervisor's
    /// own `.proc/init` files (best-effort: introspection may be off).
    pub fn new(yfs: YancFs) -> YancResult<Supervisor> {
        let fs = yfs.filesystem().clone();
        let root = Credentials::root();
        let dir = yfs.root().join(".init");
        fs.mkdir_all(dir.as_str(), yanc_vfs::Mode::DIR_DEFAULT, &root)?;
        let ctl = dir.join("ctl");
        if !fs.exists(ctl.as_str(), &root) {
            fs.write_file(ctl.as_str(), b"", &root)?;
        }
        let sup = Supervisor {
            yfs,
            procs: BTreeMap::new(),
            next_pid: 1,
            next_uid: 1000,
            ticks: Arc::new(AtomicU64::new(0)),
            ctl_offset: 0,
            faults: FaultInjector::new(),
            driver_reattaches: Arc::new(AtomicU64::new(0)),
            reclaimed_handles: Arc::new(AtomicU64::new(0)),
            controller_crashed: false,
        };
        let base = sup.yfs.proc_dir().join("init");
        let t = sup.ticks.clone();
        let _ = fs.proc_file(base.join("ticks").as_str(), move || {
            format!("{}\n", t.load(Ordering::Relaxed))
        });
        let r = sup.driver_reattaches.clone();
        let _ = fs.proc_file(base.join("driver_reattaches").as_str(), move || {
            format!("{}\n", r.load(Ordering::Relaxed))
        });
        let rh = sup.reclaimed_handles.clone();
        let _ = fs.proc_file(base.join("reclaimed_handles").as_str(), move || {
            format!("{}\n", rh.load(Ordering::Relaxed))
        });
        let log = sup.faults.log();
        let _ = fs.proc_file(base.join("faults").as_str(), move || {
            let log = log.lock();
            if log.is_empty() {
                String::new()
            } else {
                format!("{}\n", log.join("\n"))
            }
        });
        Ok(sup)
    }

    /// The current supervisor tick (virtual time).
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Path of the control file (`<root>/.init/ctl`).
    pub fn ctl_path(&self) -> VPath {
        self.yfs.root().join(".init").join("ctl")
    }

    /// Drivers re-attached so far by [`Supervisor::supervise_drivers`].
    pub fn driver_reattaches(&self) -> u64 {
        self.driver_reattaches.load(Ordering::Relaxed)
    }

    /// Cumulative open handles force-closed by uid reclaims since boot.
    pub fn reclaimed_handles(&self) -> u64 {
        self.reclaimed_handles.load(Ordering::Relaxed)
    }

    fn make_ctx(yfs: &YancFs, pid: Pid, uid: u32, spec: &ProcessSpec) -> ProcessCtx {
        let mut creds = Credentials::user(uid, uid);
        if spec.dac_override {
            creds = creds.with_dac_override();
        }
        let namespace = if spec.binds.is_empty() && spec.overlays.is_empty() {
            None
        } else {
            let mut ns = Namespace::new(yfs.filesystem().clone()).readonly();
            for (at, target) in &spec.binds {
                ns = ns.bind(at, target);
            }
            for (at, lowers, upper) in &spec.overlays {
                let lower_refs: Vec<&str> = lowers.iter().map(|l| l.as_str()).collect();
                let ov = Overlay::new(yfs.filesystem().clone(), &lower_refs, upper);
                // The upper layer belongs to the process's own uid: writes
                // stage there under plain POSIX permissions.
                let _ = ov.ensure_upper(&Credentials::user(uid, uid));
                ns = ns.overlay(at, &ov);
            }
            // Introspection: the per-process mount table appears as a
            // section of /net/.proc/vfs/mounts once proc is mounted.
            ns.register_mounts(&spec.name);
            Some(ns)
        };
        ProcessCtx {
            pid,
            uid,
            yfs: yfs.with_creds(creds),
            namespace,
        }
    }

    /// Spawn a process: allocate pid + uid, install its resource limits,
    /// build the instance via `factory`, and register its `.proc` files.
    pub fn spawn<F>(&mut self, spec: ProcessSpec, factory: F) -> YancResult<Pid>
    where
        F: Fn(&ProcessCtx) -> YancResult<Box<dyn YancApp>> + 'static,
    {
        let pid = Pid(self.next_pid);
        let uid = self.next_uid;
        let fs = self.yfs.filesystem().clone();
        fs.set_app_limits(Uid(uid), spec.limits);
        let ctx = Self::make_ctx(&self.yfs, pid, uid, &spec);
        let app = match factory(&ctx) {
            Ok(app) => app,
            Err(e) => {
                // Nothing to supervise; leave no residue behind.
                let rep = fs.reclaim(Uid(uid));
                self.reclaimed_handles
                    .fetch_add(rep.handles_closed as u64, Ordering::Relaxed);
                fs.clear_app_limits(Uid(uid));
                return Err(e);
            }
        };
        self.next_pid += 1;
        self.next_uid += 1;
        let entry = ProcEntry {
            spec,
            pid,
            uid,
            factory: Box::new(factory),
            app: Some(app),
            shared: Arc::new(ProcShared {
                state: AtomicU64::new(ProcessState::Starting.code()),
                restarts: AtomicU64::new(0),
                throttles: AtomicU64::new(0),
                sched_runs: AtomicU64::new(0),
                sched_skips: AtomicU64::new(0),
                last_restart_latency: AtomicU64::new(0),
                signal_log: Mutex::new(Vec::new()),
                last_error: Mutex::new(String::new()),
            }),
            backoff_until: None,
            died_at: 0,
        };
        self.register_proc(&entry);
        self.procs.insert(pid.0, entry);
        Ok(pid)
    }

    /// Register `/net/.proc/apps/<pid>/*` (best-effort; introspection may
    /// not be mounted, in which case the table still works, just silently).
    fn register_proc(&self, entry: &ProcEntry) {
        let fs = self.yfs.filesystem();
        let base = self
            .yfs
            .proc_dir()
            .join("apps")
            .join(&entry.pid.0.to_string());
        let sh = entry.shared.clone();
        let name = entry.spec.name.clone();
        let (pid, uid) = (entry.pid.0, entry.uid);
        let _ = fs.proc_file(base.join("status").as_str(), move || {
            format!(
                "name:\t{name}\npid:\t{pid}\nuid:\t{uid}\nstate:\t{}\n\
                 restarts:\t{}\nthrottles:\t{}\nlast_error:\t{}\n",
                sh.state().name(),
                sh.restarts.load(Ordering::Relaxed),
                sh.throttles.load(Ordering::Relaxed),
                sh.last_error.lock()
            )
        });
        let cmd = entry.spec.cmdline.clone();
        let _ = fs.proc_file(base.join("cmdline").as_str(), move || format!("{cmd}\n"));
        let limits = entry.spec.limits;
        let rctl = fs.rctl().clone();
        let _ = fs.proc_file(base.join("limits").as_str(), move || {
            let show = |v: Option<u64>| v.map_or("unlimited".to_string(), |n| n.to_string());
            let usage = rctl.usage(uid);
            format!(
                "syscall_tokens:\t{}\nmax_open_handles:\t{}\nmax_watches:\t{}\n\
                 notify_queue_max:\t{}\nmax_flows:\t{}\ntokens_left:\t{}\n\
                 open_handles:\t{}\nflows:\t{}\nthrottled:\t{}\n",
                show(limits.syscall_tokens),
                show(limits.max_open_handles),
                show(limits.max_watches),
                show(limits.notify_queue_max),
                show(limits.max_flows),
                usage.as_ref().map_or(0, |u| u.tokens_left),
                usage.as_ref().map_or(0, |u| u.open_handles),
                usage.as_ref().map_or(0, |u| u.flows),
                usage.as_ref().map_or(0, |u| u.throttled),
            )
        });
        let sh = entry.shared.clone();
        let _ = fs.proc_file(base.join("restarts").as_str(), move || {
            format!("{}\n", sh.restarts.load(Ordering::Relaxed))
        });
        let sh = entry.shared.clone();
        let _ = fs.proc_file(base.join("signals").as_str(), move || {
            let log = sh.signal_log.lock();
            if log.is_empty() {
                String::new()
            } else {
                format!("{}\n", log.join("\n"))
            }
        });
        let sh = entry.shared.clone();
        let _ = fs.proc_file(base.join("sched").as_str(), move || {
            format!(
                "runs:\t{}\nskips:\t{}\n",
                sh.sched_runs.load(Ordering::Relaxed),
                sh.sched_skips.load(Ordering::Relaxed),
            )
        });
        // `/proc/<pid>/fd`-style descriptor table, built live from the
        // kernel's handle table (weak: the proc closure must not keep the
        // filesystem alive).
        let weak = Arc::downgrade(fs);
        let _ = fs.proc_file(base.join("fds").as_str(), move || {
            let Some(fs) = weak.upgrade() else {
                return String::new();
            };
            fs.fd_table(Uid(uid))
                .iter()
                .map(|i| {
                    let mode = match (i.read, i.write) {
                        (true, true) => "rw",
                        (true, false) => "r-",
                        (false, true) => "-w",
                        (false, false) => "--",
                    };
                    format!("{}\t{}\t{}\toffset={}\n", i.fd, mode, i.path, i.offset)
                })
                .collect()
        });
    }

    /// Abnormal death: drop the instance (no shutdown hook — the process
    /// never got a commit point), reclaim every kernel resource charged to
    /// its uid, and schedule a restart per policy or mark it failed.
    fn mark_dead(
        fs: &Arc<Filesystem>,
        reclaimed: &AtomicU64,
        entry: &mut ProcEntry,
        now: u64,
        why: &str,
    ) {
        entry.app = None;
        let rep = fs.reclaim(Uid(entry.uid));
        reclaimed.fetch_add(rep.handles_closed as u64, Ordering::Relaxed);
        *entry.shared.last_error.lock() = why.to_string();
        entry.died_at = now;
        let restarts = entry.shared.restarts.load(Ordering::Relaxed);
        let p = entry.spec.policy;
        if p.restart && restarts < u64::from(p.max_restarts) {
            entry.shared.restarts.fetch_add(1, Ordering::Relaxed);
            entry.backoff_until = Some(now + p.backoff_for(restarts as u32));
            entry.shared.set_state(ProcessState::Backoff);
        } else {
            entry.backoff_until = None;
            entry.shared.set_state(ProcessState::Failed);
        }
    }

    /// Deliver a POSIX signal. Returns whether it was delivered (the pid
    /// exists and was in a state that could take it).
    pub fn signal(&mut self, pid: Pid, sig: Signal) -> bool {
        let now = self.now();
        let fs = self.yfs.filesystem().clone();
        let rh = self.reclaimed_handles.clone();
        let Some(entry) = self.procs.get_mut(&pid.0) else {
            return false;
        };
        entry
            .shared
            .signal_log
            .lock()
            .push(format!("tick {now}: SIG{}", sig.name()));
        match sig {
            Signal::Hup => match entry.app.as_mut() {
                Some(app) => {
                    if let Err(e) = app.reload() {
                        Self::mark_dead(&fs, &rh, entry, now, &format!("reload failed: {e}"));
                    }
                    true
                }
                None => false,
            },
            Signal::Term => {
                if let Some(mut app) = entry.app.take() {
                    app.shutdown();
                }
                let rep = fs.reclaim(Uid(entry.uid));
                rh.fetch_add(rep.handles_closed as u64, Ordering::Relaxed);
                entry.backoff_until = None;
                entry.shared.set_state(ProcessState::Stopped);
                true
            }
            Signal::Kill => {
                if entry.app.is_some() {
                    Self::mark_dead(&fs, &rh, entry, now, "killed (SIGKILL)");
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Consume new `kill [-SIG] <pid>` lines appended to the ctl file.
    fn process_ctl(&mut self) -> bool {
        let path = self.ctl_path();
        let root = Credentials::root();
        let Ok(text) = self.yfs.filesystem().read_to_string(path.as_str(), &root) else {
            return false;
        };
        if text.len() <= self.ctl_offset {
            return false;
        }
        let fresh = text[self.ctl_offset..].to_string();
        self.ctl_offset = text.len();
        let mut worked = false;
        for line in fresh.lines() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.first() != Some(&"kill") {
                continue;
            }
            let (sig, pid_tok) = match toks.len() {
                2 => (Signal::Term, toks[1]),
                3 => match Signal::parse(toks[1]) {
                    Some(s) => (s, toks[2]),
                    None => continue,
                },
                _ => continue,
            };
            if let Ok(n) = pid_tok.parse::<u32>() {
                worked |= self.signal(Pid(n), sig);
            }
        }
        worked
    }

    /// One scheduler pass: advance virtual time, refill every rate-limit
    /// bucket, consume ctl commands, complete due restarts, and give every
    /// live process one `run_once`. Returns whether any work happened.
    pub fn tick(&mut self) -> bool {
        let now = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let fs = self.yfs.filesystem().clone();
        let rh = self.reclaimed_handles.clone();
        fs.rctl().refill_all();
        // Journal maintenance rides the scheduler tick, the way a kernel
        // flush daemon rides the timer interrupt: a snapshot is taken once
        // the record cadence is due, never mid-mutation (no vfs locks are
        // held here). Deliberately not counted as scheduler work.
        fs.journal_maybe_snapshot();
        let mut worked = self.process_ctl();
        let pids: Vec<u32> = self.procs.keys().copied().collect();
        // Complete restarts whose backoff expired.
        for p in &pids {
            let yfs = self.yfs.clone();
            let entry = self.procs.get_mut(p).unwrap();
            let due = matches!(entry.backoff_until, Some(t) if t <= now);
            if !due {
                continue;
            }
            entry.backoff_until = None;
            let ctx = Self::make_ctx(&yfs, entry.pid, entry.uid, &entry.spec);
            match (entry.factory)(&ctx) {
                Ok(app) => {
                    entry.app = Some(app);
                    entry.shared.set_state(ProcessState::Running);
                    entry
                        .shared
                        .last_restart_latency
                        .store(now.saturating_sub(entry.died_at), Ordering::Relaxed);
                    worked = true;
                }
                Err(e) => {
                    Self::mark_dead(&fs, &rh, entry, now, &format!("respawn failed: {e}"));
                    worked = true;
                }
            }
        }
        // Drive live processes — but only the ready ones. A process whose
        // poll set reports no pending events is skipped entirely (it
        // consumes zero scheduler ticks), exactly as a process blocked in
        // `epoll_wait` consumes zero CPU. Starting processes always get
        // their first slice so they can prime their subscriptions.
        for p in &pids {
            let entry = self.procs.get_mut(p).unwrap();
            let Some(app) = entry.app.as_mut() else {
                continue;
            };
            if entry.shared.state() != ProcessState::Starting && !app.ready() {
                entry.shared.sched_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            entry.shared.sched_runs.fetch_add(1, Ordering::Relaxed);
            match app.run_once() {
                Ok(did) => {
                    if entry.shared.state() == ProcessState::Starting {
                        entry.shared.set_state(ProcessState::Running);
                    }
                    worked |= did;
                }
                Err(e) if is_eagain(&e) => {
                    // Out of syscall tokens: preempted, not crashed. The
                    // bucket refills next tick; everyone else keeps running.
                    if entry.shared.state() == ProcessState::Starting {
                        entry.shared.set_state(ProcessState::Running);
                    }
                    entry.shared.throttles.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    Self::mark_dead(&fs, &rh, entry, now, &e.to_string());
                    worked = true;
                }
            }
        }
        worked
    }

    /// Fire due control-plane faults into the table and the driver runtime.
    pub fn apply_faults<R: ControlRuntime>(&mut self, rt: &mut R) -> usize {
        let due = self.faults.due_net(self.now());
        let n = due.len();
        for f in due {
            match f {
                Fault::KillApp { pid } => {
                    self.signal(pid, Signal::Kill);
                }
                Fault::SignalApp { pid, sig } => {
                    self.signal(pid, sig);
                }
                Fault::DropControl { dpid, frames } => {
                    rt.inject_channel_fault(dpid, frames, false);
                }
                Fault::ReorderControl { dpid } => {
                    rt.inject_channel_fault(dpid, 0, true);
                }
                Fault::CrashController => {
                    self.controller_crashed = true;
                }
                _ => {}
            }
        }
        n
    }

    /// Whether a [`Fault::CrashController`] fired since the last call
    /// (cleared on read). The harness reacting to this drops the whole
    /// runtime — processes, drivers, fd tables — keeping only the journal
    /// bytes, which is exactly what a real crash leaves behind.
    pub fn take_controller_crash(&mut self) -> bool {
        std::mem::take(&mut self.controller_crashed)
    }

    /// Fire due dfs faults into a cluster. `DfsDown` automatically
    /// schedules the matching `DfsUp` `for_ticks` later.
    pub fn apply_cluster_faults(&mut self, cluster: &mut Cluster) -> usize {
        let now = self.now();
        let due = self.faults.due_cluster(now);
        let n = due.len();
        for f in due {
            match f {
                Fault::DfsDown { node, for_ticks } => {
                    cluster.set_down(node);
                    self.faults.at(now + for_ticks, Fault::DfsUp { node });
                }
                Fault::DfsUp { node } => cluster.set_up(node),
                _ => {}
            }
        }
        n
    }

    /// Re-attach drivers that reached the terminal `failed` state (e.g.
    /// after a version-negotiation fault), counting each re-attachment.
    pub fn supervise_drivers<R: ControlRuntime>(&mut self, rt: &mut R) -> usize {
        let n = rt.reattach_failed();
        self.driver_reattaches
            .fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// One full supervised step: faults → driver supervision → network
    /// pump → scheduler tick. Returns whether anything happened.
    pub fn step<R: ControlRuntime>(&mut self, rt: &mut R) -> bool {
        let fired = self.apply_faults(rt);
        let reattached = self.supervise_drivers(rt);
        let pumped = rt.pump().unwrap();
        let ticked = self.tick();
        fired > 0 || reattached > 0 || pumped > 1 || ticked
    }

    /// Step until quiescent: no work, no pending backoff, no unfired
    /// control-plane faults. Panics after 10 000 steps (livelock guard).
    pub fn settle<R: ControlRuntime>(&mut self, rt: &mut R) {
        for _ in 0..10_000 {
            let worked = self.step(rt);
            let backing_off = self.procs.values().any(|e| e.backoff_until.is_some());
            if !worked && !backing_off && self.faults.pending_net() == 0 {
                return;
            }
        }
        panic!("supervisor failed to settle within 10000 steps");
    }

    // ------------------------------------------------------------------
    // Table introspection (programmatic; `.proc` carries the same data)
    // ------------------------------------------------------------------

    /// `(pid, name, state)` rows, pid-ordered.
    pub fn processes(&self) -> Vec<(Pid, String, ProcessState)> {
        self.procs
            .values()
            .map(|e| (e.pid, e.spec.name.clone(), e.shared.state()))
            .collect()
    }

    /// Current state of `pid`.
    pub fn state(&self, pid: Pid) -> Option<ProcessState> {
        self.procs.get(&pid.0).map(|e| e.shared.state())
    }

    /// Restarts scheduled for `pid` so far.
    pub fn restarts(&self, pid: Pid) -> u64 {
        self.procs
            .get(&pid.0)
            .map_or(0, |e| e.shared.restarts.load(Ordering::Relaxed))
    }

    /// Times `pid` was throttled (`EAGAIN`) instead of crashed.
    pub fn throttles(&self, pid: Pid) -> u64 {
        self.procs
            .get(&pid.0)
            .map_or(0, |e| e.shared.throttles.load(Ordering::Relaxed))
    }

    /// Scheduler slices `pid` actually ran (`.proc/apps/<pid>/sched`).
    pub fn sched_runs(&self, pid: Pid) -> u64 {
        self.procs
            .get(&pid.0)
            .map_or(0, |e| e.shared.sched_runs.load(Ordering::Relaxed))
    }

    /// Ticks `pid` was skipped because its poll set was idle.
    pub fn sched_skips(&self, pid: Pid) -> u64 {
        self.procs
            .get(&pid.0)
            .map_or(0, |e| e.shared.sched_skips.load(Ordering::Relaxed))
    }

    /// Ticks the last death→respawn took for `pid`.
    pub fn last_restart_latency(&self, pid: Pid) -> u64 {
        self.procs
            .get(&pid.0)
            .map_or(0, |e| e.shared.last_restart_latency.load(Ordering::Relaxed))
    }

    /// The uid `pid`'s vfs activity is charged to.
    pub fn uid_of(&self, pid: Pid) -> Option<u32> {
        self.procs.get(&pid.0).map(|e| e.uid)
    }

    /// Find a process by name.
    pub fn pid_of(&self, name: &str) -> Option<Pid> {
        self.procs
            .values()
            .find(|e| e.spec.name == name)
            .map(|e| e.pid)
    }
}

/// Both throttle shapes preempt rather than crash: a vfs token-bucket
/// `EAGAIN` (out of syscall tokens) and a partially-enqueued libyanc
/// [`yanc::RingFull`] `EAGAIN` (the driver will drain; retry next slice).
fn is_eagain(e: &YancError) -> bool {
    e.errno() == Some(Errno::EAGAIN)
}
