//! `yanc-init`: process management for the filesystem controller.
//!
//! The paper's thesis is that an SDN controller should borrow its
//! architecture from the operating system. This crate supplies the piece a
//! real OS would never go without: **init**. Controller applications,
//! daemons and drivers become supervised *yanc processes* with
//!
//! * a **pid** and their own **credentials** — every vfs syscall, open
//!   handle, watch descriptor and flow file is charged to the process's
//!   uid, so `ps`-style accounting and post-mortem reclamation both fall
//!   out of the kernel's own bookkeeping;
//! * **lifecycle states** (`starting → running → backoff → failed` /
//!   `stopped`) driven by a deterministic scheduler tick;
//! * **POSIX signals** (`TERM`, `KILL`, `HUP` = reload) delivered
//!   programmatically or through the `/net/.init/ctl` file;
//! * **restart policies** with exponential backoff and a max-restart
//!   budget — a crash-looping app degrades to `failed` instead of eating
//!   the control plane;
//! * **cgroup-style resource limits** enforced at the vfs boundary
//!   (syscall-rate token buckets → `EAGAIN`, handle and watch caps →
//!   `EMFILE`, flow quotas → `EDQUOT`, notify-queue quotas → tail-drop);
//! * optional **namespace confinement** via bind mounts
//!   ([`yanc_vfs::Namespace`]), the paper's §5 slicing story applied to
//!   processes;
//! * a deterministic **fault-injection layer** ([`FaultInjector`]): kill an
//!   app mid-event-loop, drop or reorder a driver's control channel, sever
//!   a dfs node for N virtual ticks — all scheduled on the supervisor's
//!   virtual clock so failures replay exactly.
//!
//! Everything surfaces as files: `/net/.proc/apps/<pid>/…` for per-process
//! introspection, `/net/.proc/init/…` for the supervisor itself.

#![warn(missing_docs)]

pub mod fault;
pub mod process;
pub mod supervisor;

pub use fault::{Fault, FaultInjector};
pub use process::{Pid, ProcessSpec, ProcessState, RestartPolicy, Signal};
pub use supervisor::{AppFactory, ProcessCtx, Supervisor};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use yanc::{YancApp, YancFs, YancResult};
    use yanc_vfs::{AppLimits, Credentials, Filesystem, OpenFlags, Uid};

    use super::*;

    /// A scriptable test process.
    struct ToyApp {
        yfs: YancFs,
        /// Shared across restarts (the factory closes over it) so tests can
        /// observe lifecycle events from outside.
        diary: Arc<Diary>,
        /// Fail `run_once` after this many successful passes (0 = never).
        crash_after: u64,
        ran: u64,
    }

    #[derive(Default)]
    struct Diary {
        builds: AtomicU64,
        runs: AtomicU64,
        reloads: AtomicU64,
        shutdowns: AtomicU64,
    }

    impl YancApp for ToyApp {
        fn name(&self) -> &str {
            "toy"
        }

        fn run_once(&mut self) -> YancResult<bool> {
            // A real syscall so rate limits apply to this app.
            self.yfs
                .filesystem()
                .stat(self.yfs.root().as_str(), self.yfs.creds())?;
            self.diary.runs.fetch_add(1, Ordering::Relaxed);
            self.ran += 1;
            if self.crash_after > 0 && self.ran >= self.crash_after {
                return Err(yanc_vfs::VfsError::new(yanc_vfs::Errno::EIO, "toy: crash").into());
            }
            Ok(false)
        }

        fn reload(&mut self) -> YancResult<()> {
            self.diary.reloads.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        fn shutdown(&mut self) {
            self.diary.shutdowns.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn setup() -> (YancFs, Supervisor) {
        let fs = Arc::new(Filesystem::new());
        let yfs = YancFs::init(fs, "/net").unwrap();
        yfs.enable_introspection().unwrap();
        let sup = Supervisor::new(yfs.clone()).unwrap();
        (yfs, sup)
    }

    fn toy_factory(
        diary: Arc<Diary>,
        crash_after: u64,
    ) -> impl Fn(&ProcessCtx) -> YancResult<Box<dyn YancApp>> {
        move |ctx: &ProcessCtx| {
            diary.builds.fetch_add(1, Ordering::Relaxed);
            Ok(Box::new(ToyApp {
                yfs: ctx.yfs.clone(),
                diary: diary.clone(),
                crash_after,
                ran: 0,
            }) as Box<dyn YancApp>)
        }
    }

    #[test]
    fn spawn_run_term_lifecycle() {
        let (_yfs, mut sup) = setup();
        let diary = Arc::new(Diary::default());
        let pid = sup
            .spawn(ProcessSpec::new("toy"), toy_factory(diary.clone(), 0))
            .unwrap();
        assert_eq!(sup.state(pid), Some(ProcessState::Starting));
        sup.tick();
        assert_eq!(sup.state(pid), Some(ProcessState::Running));
        assert!(diary.runs.load(Ordering::Relaxed) >= 1);
        assert!(sup.signal(pid, Signal::Term));
        assert_eq!(sup.state(pid), Some(ProcessState::Stopped));
        assert_eq!(diary.shutdowns.load(Ordering::Relaxed), 1);
        // Stopped means stopped: no restart, no further runs.
        let runs = diary.runs.load(Ordering::Relaxed);
        for _ in 0..10 {
            sup.tick();
        }
        assert_eq!(diary.runs.load(Ordering::Relaxed), runs);
        assert_eq!(sup.state(pid), Some(ProcessState::Stopped));
    }

    #[test]
    fn kill_reclaims_and_restarts_with_backoff() {
        let (yfs, mut sup) = setup();
        let diary = Arc::new(Diary::default());
        let diary2 = diary.clone();
        // An app that holds an open handle and a watch, to prove reclaim.
        let pid = sup
            .spawn(ProcessSpec::new("holder"), move |ctx: &ProcessCtx| {
                diary2.builds.fetch_add(1, Ordering::Relaxed);
                let fs = ctx.yfs.filesystem();
                fs.write_file("/net/views/holder_scratch", b"x", ctx.yfs.creds())?;
                let _fd = fs.open(
                    "/net/views/holder_scratch",
                    OpenFlags::read_only(),
                    ctx.yfs.creds(),
                )?;
                // Deliberately leak the fd: a killed process cannot close it.
                let _sub = ctx.yfs.subscribe_events("holder")?;
                std::mem::forget(_sub);
                Ok(Box::new(NullApp) as Box<dyn YancApp>)
            })
            .unwrap();
        let uid = sup.uid_of(pid).unwrap();
        let fs = yfs.filesystem().clone();
        assert_eq!(fs.handles_of(Uid(uid)), 1);
        sup.tick();
        assert!(sup.signal(pid, Signal::Kill));
        // Everything charged to the uid is gone, instance never shut down.
        assert_eq!(fs.handles_of(Uid(uid)), 0);
        assert_eq!(sup.state(pid), Some(ProcessState::Backoff));
        assert_eq!(sup.restarts(pid), 1);
        assert_eq!(diary.shutdowns.load(Ordering::Relaxed), 0);
        // Backoff expires on the virtual clock; the factory rebuilds.
        let builds_before = diary.builds.load(Ordering::Relaxed);
        for _ in 0..8 {
            sup.tick();
        }
        assert_eq!(sup.state(pid), Some(ProcessState::Running));
        assert_eq!(diary.builds.load(Ordering::Relaxed), builds_before + 1);
        assert!(sup.last_restart_latency(pid) >= 1);
    }

    /// Does nothing, successfully.
    struct NullApp;
    impl YancApp for NullApp {
        fn name(&self) -> &str {
            "null"
        }
        fn run_once(&mut self) -> YancResult<bool> {
            Ok(false)
        }
    }

    #[test]
    fn crash_loop_exhausts_budget_to_failed() {
        let (_yfs, mut sup) = setup();
        let diary = Arc::new(Diary::default());
        let spec = ProcessSpec::new("crashy").policy(RestartPolicy {
            restart: true,
            backoff_base: 1,
            max_restarts: 2,
        });
        let pid = sup.spawn(spec, toy_factory(diary.clone(), 1)).unwrap();
        for _ in 0..64 {
            sup.tick();
        }
        assert_eq!(sup.state(pid), Some(ProcessState::Failed));
        assert_eq!(sup.restarts(pid), 2);
        // 1 initial build + 2 restarts, then the budget is gone.
        assert_eq!(diary.builds.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn hup_reloads_in_place() {
        let (_yfs, mut sup) = setup();
        let diary = Arc::new(Diary::default());
        let pid = sup
            .spawn(ProcessSpec::new("toy"), toy_factory(diary.clone(), 0))
            .unwrap();
        sup.tick();
        assert!(sup.signal(pid, Signal::Hup));
        assert_eq!(diary.reloads.load(Ordering::Relaxed), 1);
        assert_eq!(sup.state(pid), Some(ProcessState::Running));
        // Same instance: no rebuild happened.
        assert_eq!(diary.builds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ctl_file_delivers_signals() {
        let (yfs, mut sup) = setup();
        let diary = Arc::new(Diary::default());
        let pid = sup
            .spawn(ProcessSpec::new("toy"), toy_factory(diary, 0))
            .unwrap();
        sup.tick();
        let ctl = sup.ctl_path();
        yfs.filesystem()
            .append_file(
                ctl.as_str(),
                format!("kill -TERM {pid}\n").as_bytes(),
                &Credentials::root(),
            )
            .unwrap();
        sup.tick();
        assert_eq!(sup.state(pid), Some(ProcessState::Stopped));
    }

    #[test]
    fn syscall_rate_limit_throttles_without_killing() {
        let (_yfs, mut sup) = setup();
        let diary = Arc::new(Diary::default());
        let spec = ProcessSpec::new("greedy").limits(AppLimits {
            syscall_tokens: Some(0),
            ..Default::default()
        });
        let pid = sup.spawn(spec, toy_factory(diary.clone(), 0)).unwrap();
        // Zero tokens: every run_once hits EAGAIN — but the process stays
        // alive (throttled, not crashed) and is never restarted.
        for _ in 0..5 {
            sup.tick();
        }
        assert!(sup.throttles(pid) >= 4, "throttles: {}", sup.throttles(pid));
        assert_eq!(sup.restarts(pid), 0);
        assert_ne!(sup.state(pid), Some(ProcessState::Failed));
        assert_eq!(diary.runs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn proc_tree_reports_process_rows() {
        let (yfs, mut sup) = setup();
        let diary = Arc::new(Diary::default());
        let pid = sup
            .spawn(
                ProcessSpec::new("toy").cmdline("toyd --verbose"),
                toy_factory(diary, 0),
            )
            .unwrap();
        sup.tick();
        let fs = yfs.filesystem();
        let root = Credentials::root();
        let base = format!("/net/.proc/apps/{pid}");
        let status = fs.read_to_string(&format!("{base}/status"), &root).unwrap();
        assert!(status.contains("name:\ttoy"), "{status}");
        assert!(status.contains("state:\trunning"), "{status}");
        let cmdline = fs
            .read_to_string(&format!("{base}/cmdline"), &root)
            .unwrap();
        assert_eq!(cmdline, "toyd --verbose\n");
        let limits = fs.read_to_string(&format!("{base}/limits"), &root).unwrap();
        assert!(limits.contains("syscall_tokens:\tunlimited"), "{limits}");
        sup.signal(pid, Signal::Hup);
        let signals = fs
            .read_to_string(&format!("{base}/signals"), &root)
            .unwrap();
        assert!(signals.contains("SIGHUP"), "{signals}");
        let ticks = fs.read_to_string("/net/.proc/init/ticks", &root).unwrap();
        assert_eq!(ticks.trim(), "1");
    }

    #[test]
    fn confined_process_sees_only_its_binds() {
        let (yfs, mut sup) = setup();
        let fs = yfs.filesystem().clone();
        fs.mkdir_all(
            "/net/views/jail",
            yanc_vfs::Mode::DIR_DEFAULT,
            &Credentials::root(),
        )
        .unwrap();
        let pid = sup
            .spawn(
                ProcessSpec::new("jailed").confined(&[("/jail", "/net/views/jail")]),
                |_ctx: &ProcessCtx| Ok(Box::new(NullApp) as Box<dyn YancApp>),
            )
            .unwrap();
        sup.tick();
        assert_eq!(sup.state(pid), Some(ProcessState::Running));
        // The namespace handed to the factory confines reads to the bind
        // and rejects writes outside it (readonly base).
        let ctx_uid = sup.uid_of(pid).unwrap();
        let creds = Credentials::user(ctx_uid, ctx_uid);
        let ns = yanc_vfs::Namespace::new(fs.clone())
            .readonly()
            .bind("/jail", "/net/views/jail");
        assert!(ns.exists("/jail", &creds));
        assert!(ns.write_file("/net/switches/x", b"no", &creds).is_err());
    }
}
