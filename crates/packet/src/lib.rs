//! # yanc-packet — packet formats for the yanc dataplane
//!
//! Zero-dependency (beyond `bytes`) encoders/parsers for the protocols the
//! yanc reproduction moves through its simulated network: Ethernet (with
//! 802.1Q), ARP, IPv4, ICMP, TCP, UDP, LLDP and DHCP, plus
//! [`PacketSummary`] — the single place that extracts the OpenFlow-style
//! match fields every other crate matches against.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod dhcp;
pub mod lldp;
pub mod summary;
pub mod wire;

pub use addr::{EtherType, MacAddr, MacParseError};
pub use dhcp::{DhcpMessage, DhcpMessageType};
pub use lldp::LldpPacket;
pub use summary::{
    build_arp_reply, build_arp_request, build_icmp_echo, build_lldp, build_tcp_syn, build_udp,
    retag_vlan, PacketSummary,
};
pub use wire::{
    icmp_type, internet_checksum, ip_proto, ArpOp, ArpPacket, EthernetFrame, IcmpPacket,
    Ipv4Packet, ParseError, ParseResult, TcpFlags, TcpSegment, UdpDatagram, VlanTag,
};
