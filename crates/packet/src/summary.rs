//! Whole-packet parsing into the header fields OpenFlow matches on, plus
//! builders for common test traffic.
//!
//! [`PacketSummary::parse`] digs through Ethernet → (VLAN) → ARP/IPv4 →
//! ICMP/TCP/UDP and records the classic OpenFlow 1.0 12-tuple fields
//! (minus the ingress port, which only the switch knows). The simulator's
//! flow tables and the yanc flow codec both match against this summary, so
//! matching semantics live in exactly one place.

use bytes::Bytes;
use std::net::Ipv4Addr;

use crate::addr::{EtherType, MacAddr};
use crate::wire::{
    ip_proto, ArpOp, ArpPacket, EthernetFrame, IcmpPacket, Ipv4Packet, ParseResult, TcpFlags,
    TcpSegment, UdpDatagram, VlanTag,
};

/// Header fields extracted from a frame — the match-relevant view.
///
/// Field conventions follow OpenFlow 1.0: for ARP packets `nw_proto`
/// carries the ARP opcode and `nw_src`/`nw_dst` the ARP SPA/TPA; for ICMP
/// `tp_src`/`tp_dst` carry the ICMP type/code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketSummary {
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id, if tagged.
    pub dl_vlan: Option<u16>,
    /// VLAN priority, if tagged.
    pub dl_vlan_pcp: Option<u8>,
    /// EtherType.
    pub dl_type: u16,
    /// IPv4 source (or ARP SPA).
    pub nw_src: Option<Ipv4Addr>,
    /// IPv4 destination (or ARP TPA).
    pub nw_dst: Option<Ipv4Addr>,
    /// IP protocol (or ARP opcode).
    pub nw_proto: Option<u8>,
    /// IP TOS byte.
    pub nw_tos: Option<u8>,
    /// TCP/UDP source port (or ICMP type).
    pub tp_src: Option<u16>,
    /// TCP/UDP destination port (or ICMP code).
    pub tp_dst: Option<u16>,
}

impl PacketSummary {
    /// Parse a full Ethernet frame into its match fields. Payloads beyond
    /// the headers are ignored; unknown EtherTypes/protocols simply leave
    /// the higher-layer fields `None`, as a real switch pipeline would.
    pub fn parse(frame_bytes: &Bytes) -> ParseResult<PacketSummary> {
        let eth = EthernetFrame::parse(frame_bytes)?;
        let mut s = PacketSummary {
            dl_src: eth.src,
            dl_dst: eth.dst,
            dl_vlan: eth.vlan.map(|t| t.vid),
            dl_vlan_pcp: eth.vlan.map(|t| t.pcp),
            dl_type: eth.ethertype.0,
            ..Default::default()
        };
        if eth.ethertype == EtherType::ARP {
            if let Ok(arp) = ArpPacket::parse(&eth.payload) {
                s.nw_src = Some(arp.spa);
                s.nw_dst = Some(arp.tpa);
                s.nw_proto = Some(match arp.op {
                    ArpOp::Request => 1,
                    ArpOp::Reply => 2,
                });
            }
        } else if eth.ethertype == EtherType::IPV4 {
            if let Ok(ip) = Ipv4Packet::parse(&eth.payload) {
                s.nw_src = Some(ip.src);
                s.nw_dst = Some(ip.dst);
                s.nw_proto = Some(ip.proto);
                s.nw_tos = Some(ip.tos);
                match ip.proto {
                    ip_proto::TCP => {
                        if let Ok(t) = TcpSegment::parse(&ip.payload, ip.src, ip.dst) {
                            s.tp_src = Some(t.src_port);
                            s.tp_dst = Some(t.dst_port);
                        }
                    }
                    ip_proto::UDP => {
                        if let Ok(u) = UdpDatagram::parse(&ip.payload, ip.src, ip.dst) {
                            s.tp_src = Some(u.src_port);
                            s.tp_dst = Some(u.dst_port);
                        }
                    }
                    ip_proto::ICMP => {
                        if let Ok(i) = IcmpPacket::parse(&ip.payload) {
                            s.tp_src = Some(u16::from(i.icmp_type));
                            s.tp_dst = Some(u16::from(i.code));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(s)
    }
}

/// Build an ARP request frame (`who has tpa? tell spa`).
pub fn build_arp_request(src: MacAddr, spa: Ipv4Addr, tpa: Ipv4Addr) -> Bytes {
    let arp = ArpPacket {
        op: ArpOp::Request,
        sha: src,
        spa,
        tha: MacAddr::ZERO,
        tpa,
    };
    EthernetFrame {
        dst: MacAddr::BROADCAST,
        src,
        vlan: None,
        ethertype: EtherType::ARP,
        payload: arp.encode(),
    }
    .encode()
}

/// Build an ARP reply frame (`spa is at sha`), unicast to the requester.
pub fn build_arp_reply(sha: MacAddr, spa: Ipv4Addr, tha: MacAddr, tpa: Ipv4Addr) -> Bytes {
    let arp = ArpPacket {
        op: ArpOp::Reply,
        sha,
        spa,
        tha,
        tpa,
    };
    EthernetFrame {
        dst: tha,
        src: sha,
        vlan: None,
        ethertype: EtherType::ARP,
        payload: arp.encode(),
    }
    .encode()
}

/// Build an ICMP echo request frame.
pub fn build_icmp_echo(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    ident: u16,
    seq: u16,
) -> Bytes {
    let icmp = IcmpPacket {
        icmp_type: crate::wire::icmp_type::ECHO_REQUEST,
        code: 0,
        ident,
        seq,
        payload: Bytes::from_static(b"yanc-ping"),
    };
    let ip = Ipv4Packet {
        tos: 0,
        id: seq,
        ttl: 64,
        proto: ip_proto::ICMP,
        src: src_ip,
        dst: dst_ip,
        payload: icmp.encode(),
    };
    EthernetFrame {
        dst: dst_mac,
        src: src_mac,
        vlan: None,
        ethertype: EtherType::IPV4,
        payload: ip.encode(),
    }
    .encode()
}

/// Build a UDP frame with the given payload.
#[allow(clippy::too_many_arguments)]
pub fn build_udp(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: Bytes,
) -> Bytes {
    let udp = UdpDatagram {
        src_port,
        dst_port,
        payload,
    };
    let ip = Ipv4Packet {
        tos: 0,
        id: 0,
        ttl: 64,
        proto: ip_proto::UDP,
        src: src_ip,
        dst: dst_ip,
        payload: udp.encode(src_ip, dst_ip),
    };
    EthernetFrame {
        dst: dst_mac,
        src: src_mac,
        vlan: None,
        ethertype: EtherType::IPV4,
        payload: ip.encode(),
    }
    .encode()
}

/// Build a TCP SYN frame — handy for exercising `tp_dst`-matching flows
/// (the paper's ssh-slicing example matches `tp.dst == 22`).
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_syn(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
) -> Bytes {
    let tcp = TcpSegment {
        src_port,
        dst_port,
        seq: 1,
        ack: 0,
        flags: TcpFlags {
            syn: true,
            ..Default::default()
        },
        window: 65535,
        payload: Bytes::new(),
    };
    let ip = Ipv4Packet {
        tos: 0,
        id: 0,
        ttl: 64,
        proto: ip_proto::TCP,
        src: src_ip,
        dst: dst_ip,
        payload: tcp.encode(src_ip, dst_ip),
    };
    EthernetFrame {
        dst: dst_mac,
        src: src_mac,
        vlan: None,
        ethertype: EtherType::IPV4,
        payload: ip.encode(),
    }
    .encode()
}

/// Build an LLDP frame advertising `(chassis_id, port_id)`.
pub fn build_lldp(src_mac: MacAddr, chassis_id: &str, port_id: &str) -> Bytes {
    let lldp = crate::lldp::LldpPacket {
        chassis_id: chassis_id.to_string(),
        port_id: port_id.to_string(),
        ttl: 120,
    };
    EthernetFrame {
        dst: MacAddr::LLDP_MULTICAST,
        src: src_mac,
        vlan: None,
        ethertype: EtherType::LLDP,
        payload: lldp.encode(),
    }
    .encode()
}

/// Re-tag a frame with a VLAN id (or strip the tag with `None`), preserving
/// everything else — the slicer's translation primitive.
pub fn retag_vlan(frame_bytes: &Bytes, vlan: Option<VlanTag>) -> ParseResult<Bytes> {
    let mut eth = EthernetFrame::parse(frame_bytes)?;
    eth.vlan = vlan;
    Ok(eth.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn summary_of_arp() {
        let f = build_arp_request(MacAddr::from_seed(1), ip("10.0.0.1"), ip("10.0.0.2"));
        let s = PacketSummary::parse(&f).unwrap();
        assert_eq!(s.dl_type, EtherType::ARP.0);
        assert_eq!(s.nw_src, Some(ip("10.0.0.1")));
        assert_eq!(s.nw_dst, Some(ip("10.0.0.2")));
        assert_eq!(s.nw_proto, Some(1)); // request opcode
        assert_eq!(s.tp_src, None);
    }

    #[test]
    fn summary_of_tcp_syn() {
        let f = build_tcp_syn(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            40000,
            22,
        );
        let s = PacketSummary::parse(&f).unwrap();
        assert_eq!(s.dl_type, EtherType::IPV4.0);
        assert_eq!(s.nw_proto, Some(ip_proto::TCP));
        assert_eq!(s.tp_src, Some(40000));
        assert_eq!(s.tp_dst, Some(22));
    }

    #[test]
    fn summary_of_udp_and_icmp() {
        let u = build_udp(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            68,
            67,
            Bytes::from_static(b"x"),
        );
        let su = PacketSummary::parse(&u).unwrap();
        assert_eq!(su.nw_proto, Some(ip_proto::UDP));
        assert_eq!(su.tp_dst, Some(67));

        let i = build_icmp_echo(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            1,
            1,
        );
        let si = PacketSummary::parse(&i).unwrap();
        assert_eq!(si.nw_proto, Some(ip_proto::ICMP));
        assert_eq!(si.tp_src, Some(8)); // echo request type
        assert_eq!(si.tp_dst, Some(0));
    }

    #[test]
    fn summary_of_lldp() {
        let f = build_lldp(MacAddr::from_seed(3), "7", "2");
        let s = PacketSummary::parse(&f).unwrap();
        assert_eq!(s.dl_type, EtherType::LLDP.0);
        assert_eq!(s.dl_dst, MacAddr::LLDP_MULTICAST);
        assert_eq!(s.nw_src, None);
    }

    #[test]
    fn vlan_retagging() {
        let f = build_tcp_syn(
            MacAddr::from_seed(1),
            MacAddr::from_seed(2),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            1,
            80,
        );
        let tagged = retag_vlan(&f, Some(VlanTag { pcp: 0, vid: 42 })).unwrap();
        let s = PacketSummary::parse(&tagged).unwrap();
        assert_eq!(s.dl_vlan, Some(42));
        // L3/L4 fields survive the retag.
        assert_eq!(s.tp_dst, Some(80));
        let stripped = retag_vlan(&tagged, None).unwrap();
        assert_eq!(PacketSummary::parse(&stripped).unwrap().dl_vlan, None);
        assert_eq!(stripped, f);
    }
}
