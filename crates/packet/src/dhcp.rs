//! A compact DHCP (RFC 2131) message codec.
//!
//! The paper's goals (§2) call for "a distinct application for each protocol
//! the network needs to support such as DHCP, ARP, and LLDP"; the yanc-apps
//! crate ships a DHCP server daemon, and this module gives it the wire
//! format: BOOTP fixed header + the option TLVs needed for the
//! DISCOVER/OFFER/REQUEST/ACK exchange.

use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use crate::addr::MacAddr;
use crate::wire::{ParseError, ParseResult};

/// DHCP magic cookie.
const MAGIC: [u8; 4] = [99, 130, 83, 99];

/// DHCP message types (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpMessageType {
    /// Client broadcast to locate servers.
    Discover,
    /// Server offer of parameters.
    Offer,
    /// Client request of offered parameters.
    Request,
    /// Server acknowledgment.
    Ack,
    /// Server refusal.
    Nak,
    /// Client release of a lease.
    Release,
}

impl DhcpMessageType {
    fn to_u8(self) -> u8 {
        match self {
            DhcpMessageType::Discover => 1,
            DhcpMessageType::Offer => 2,
            DhcpMessageType::Request => 3,
            DhcpMessageType::Ack => 5,
            DhcpMessageType::Nak => 6,
            DhcpMessageType::Release => 7,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            _ => return None,
        })
    }
}

/// A DHCP message with the option subset the yanc DHCP daemon uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpMessage {
    /// Message type (option 53).
    pub msg_type: DhcpMessageType,
    /// Transaction id.
    pub xid: u32,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// "Your" address — the address being offered/assigned.
    pub yiaddr: Ipv4Addr,
    /// Requested IP address (option 50), if present.
    pub requested_ip: Option<Ipv4Addr>,
    /// Server identifier (option 54), if present.
    pub server_id: Option<Ipv4Addr>,
    /// Lease time in seconds (option 51), if present.
    pub lease_secs: Option<u32>,
    /// Subnet mask (option 1), if present.
    pub subnet_mask: Option<Ipv4Addr>,
}

impl DhcpMessage {
    /// Serialize to wire bytes (the UDP payload).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(300);
        let is_request = matches!(
            self.msg_type,
            DhcpMessageType::Discover | DhcpMessageType::Request | DhcpMessageType::Release
        );
        b.put_u8(if is_request { 1 } else { 2 }); // op
        b.put_u8(1); // htype ethernet
        b.put_u8(6); // hlen
        b.put_u8(0); // hops
        b.put_u32(self.xid);
        b.put_u16(0); // secs
        b.put_u16(0x8000); // broadcast flag
        b.put_u32(0); // ciaddr
        b.put_slice(&self.yiaddr.octets());
        b.put_u32(0); // siaddr
        b.put_u32(0); // giaddr
        b.put_slice(&self.chaddr.0);
        b.put_slice(&[0u8; 10]); // chaddr padding
        b.put_slice(&[0u8; 64]); // sname
        b.put_slice(&[0u8; 128]); // file
        b.put_slice(&MAGIC);
        b.put_slice(&[53, 1, self.msg_type.to_u8()]);
        if let Some(ip) = self.requested_ip {
            b.put_slice(&[50, 4]);
            b.put_slice(&ip.octets());
        }
        if let Some(ip) = self.server_id {
            b.put_slice(&[54, 4]);
            b.put_slice(&ip.octets());
        }
        if let Some(secs) = self.lease_secs {
            b.put_slice(&[51, 4]);
            b.put_slice(&secs.to_be_bytes());
        }
        if let Some(mask) = self.subnet_mask {
            b.put_slice(&[1, 4]);
            b.put_slice(&mask.octets());
        }
        b.put_u8(255); // end option
        b.freeze()
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> ParseResult<DhcpMessage> {
        if data.len() < 240 {
            return Err(ParseError::new("dhcp", "too short"));
        }
        if data[236..240] != MAGIC {
            return Err(ParseError::new("dhcp", "bad magic cookie"));
        }
        let xid = u32::from_be_bytes(data[4..8].try_into().unwrap());
        let yiaddr = Ipv4Addr::new(data[16], data[17], data[18], data[19]);
        let chaddr = MacAddr(data[28..34].try_into().unwrap());

        let mut msg_type = None;
        let mut requested_ip = None;
        let mut server_id = None;
        let mut lease_secs = None;
        let mut subnet_mask = None;
        let mut off = 240usize;
        while off < data.len() {
            let opt = data[off];
            if opt == 255 {
                break;
            }
            if opt == 0 {
                off += 1;
                continue;
            }
            if off + 2 > data.len() {
                return Err(ParseError::new("dhcp", "truncated option header"));
            }
            let len = usize::from(data[off + 1]);
            if off + 2 + len > data.len() {
                return Err(ParseError::new("dhcp", "truncated option value"));
            }
            let val = &data[off + 2..off + 2 + len];
            match opt {
                53 if len == 1 => msg_type = DhcpMessageType::from_u8(val[0]),
                50 if len == 4 => {
                    requested_ip = Some(Ipv4Addr::new(val[0], val[1], val[2], val[3]))
                }
                54 if len == 4 => server_id = Some(Ipv4Addr::new(val[0], val[1], val[2], val[3])),
                51 if len == 4 => {
                    lease_secs = Some(u32::from_be_bytes(val.try_into().unwrap()));
                }
                1 if len == 4 => subnet_mask = Some(Ipv4Addr::new(val[0], val[1], val[2], val[3])),
                _ => {}
            }
            off += 2 + len;
        }
        Ok(DhcpMessage {
            msg_type: msg_type.ok_or_else(|| ParseError::new("dhcp", "missing message type"))?,
            xid,
            chaddr,
            yiaddr,
            requested_ip,
            server_id,
            lease_secs,
            subnet_mask,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn discover_roundtrip() {
        let m = DhcpMessage {
            msg_type: DhcpMessageType::Discover,
            xid: 0xdeadbeef,
            chaddr: MacAddr::from_seed(9),
            yiaddr: Ipv4Addr::UNSPECIFIED,
            requested_ip: None,
            server_id: None,
            lease_secs: None,
            subnet_mask: None,
        };
        assert_eq!(DhcpMessage::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn offer_with_all_options_roundtrip() {
        let m = DhcpMessage {
            msg_type: DhcpMessageType::Offer,
            xid: 7,
            chaddr: MacAddr::from_seed(1),
            yiaddr: ip("10.0.0.50"),
            requested_ip: Some(ip("10.0.0.50")),
            server_id: Some(ip("10.0.0.1")),
            lease_secs: Some(3600),
            subnet_mask: Some(ip("255.255.255.0")),
        };
        assert_eq!(DhcpMessage::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn all_message_types_roundtrip() {
        for t in [
            DhcpMessageType::Discover,
            DhcpMessageType::Offer,
            DhcpMessageType::Request,
            DhcpMessageType::Ack,
            DhcpMessageType::Nak,
            DhcpMessageType::Release,
        ] {
            let m = DhcpMessage {
                msg_type: t,
                xid: 1,
                chaddr: MacAddr::ZERO,
                yiaddr: Ipv4Addr::UNSPECIFIED,
                requested_ip: None,
                server_id: None,
                lease_secs: None,
                subnet_mask: None,
            };
            assert_eq!(DhcpMessage::parse(&m.encode()).unwrap().msg_type, t);
        }
    }

    #[test]
    fn bad_input_rejected() {
        assert!(DhcpMessage::parse(&[0u8; 10]).is_err());
        let mut ok = DhcpMessage {
            msg_type: DhcpMessageType::Ack,
            xid: 1,
            chaddr: MacAddr::ZERO,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            requested_ip: None,
            server_id: None,
            lease_secs: None,
            subnet_mask: None,
        }
        .encode()
        .to_vec();
        ok[236] = 0; // corrupt magic
        assert!(DhcpMessage::parse(&ok).is_err());
    }
}
