//! LLDP (IEEE 802.1AB) frames for topology discovery (paper §4.3).
//!
//! yanc's topology daemon emits an LLDP frame out of every switch port and,
//! when the frame arrives as a packet-in on a neighbouring switch, learns
//! the link and records it as a `peer` symlink. Only the mandatory TLVs are
//! implemented (Chassis ID, Port ID, TTL, End), each carried as a
//! locally-assigned string — which is also what production controllers do.

use bytes::{BufMut, Bytes, BytesMut};

use crate::wire::{ParseError, ParseResult};

const TLV_END: u8 = 0;
const TLV_CHASSIS_ID: u8 = 1;
const TLV_PORT_ID: u8 = 2;
const TLV_TTL: u8 = 3;

/// Subtype 7: locally assigned identifier.
const SUBTYPE_LOCAL: u8 = 7;

/// A minimal LLDP data unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LldpPacket {
    /// Chassis identifier (yanc uses the switch datapath id as a string).
    pub chassis_id: String,
    /// Port identifier (yanc uses the port number as a string).
    pub port_id: String,
    /// Time to live in seconds.
    pub ttl: u16,
}

impl LldpPacket {
    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        put_tlv(
            &mut b,
            TLV_CHASSIS_ID,
            Some(SUBTYPE_LOCAL),
            self.chassis_id.as_bytes(),
        );
        put_tlv(
            &mut b,
            TLV_PORT_ID,
            Some(SUBTYPE_LOCAL),
            self.port_id.as_bytes(),
        );
        put_tlv(&mut b, TLV_TTL, None, &self.ttl.to_be_bytes());
        put_tlv(&mut b, TLV_END, None, &[]);
        b.freeze()
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> ParseResult<LldpPacket> {
        let mut chassis_id = None;
        let mut port_id = None;
        let mut ttl = None;
        let mut off = 0usize;
        loop {
            if off + 2 > data.len() {
                return Err(ParseError::new("lldp", "truncated TLV header"));
            }
            let hdr = u16::from_be_bytes([data[off], data[off + 1]]);
            let tlv_type = (hdr >> 9) as u8;
            let len = usize::from(hdr & 0x1ff);
            off += 2;
            if off + len > data.len() {
                return Err(ParseError::new("lldp", "truncated TLV value"));
            }
            let val = &data[off..off + len];
            off += len;
            match tlv_type {
                TLV_END => break,
                TLV_CHASSIS_ID => {
                    if val.is_empty() {
                        return Err(ParseError::new("lldp", "empty chassis id"));
                    }
                    chassis_id = Some(String::from_utf8_lossy(&val[1..]).into_owned());
                }
                TLV_PORT_ID => {
                    if val.is_empty() {
                        return Err(ParseError::new("lldp", "empty port id"));
                    }
                    port_id = Some(String::from_utf8_lossy(&val[1..]).into_owned());
                }
                TLV_TTL => {
                    if val.len() != 2 {
                        return Err(ParseError::new("lldp", "bad TTL length"));
                    }
                    ttl = Some(u16::from_be_bytes([val[0], val[1]]));
                }
                _ => {} // optional TLVs are skipped
            }
        }
        Ok(LldpPacket {
            chassis_id: chassis_id.ok_or_else(|| ParseError::new("lldp", "missing chassis id"))?,
            port_id: port_id.ok_or_else(|| ParseError::new("lldp", "missing port id"))?,
            ttl: ttl.ok_or_else(|| ParseError::new("lldp", "missing TTL"))?,
        })
    }
}

fn put_tlv(b: &mut BytesMut, tlv_type: u8, subtype: Option<u8>, value: &[u8]) {
    let len = value.len() + usize::from(subtype.is_some());
    debug_assert!(len < 0x200);
    b.put_u16((u16::from(tlv_type) << 9) | (len as u16));
    if let Some(st) = subtype {
        b.put_u8(st);
    }
    b.put_slice(value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let l = LldpPacket {
            chassis_id: "42".into(),
            port_id: "3".into(),
            ttl: 120,
        };
        assert_eq!(LldpPacket::parse(&l.encode()).unwrap(), l);
    }

    #[test]
    fn roundtrip_long_ids() {
        let l = LldpPacket {
            chassis_id: "switch-with-a-rather-long-name-0123456789".into(),
            port_id: "port-48".into(),
            ttl: 1,
        };
        assert_eq!(LldpPacket::parse(&l.encode()).unwrap(), l);
    }

    #[test]
    fn missing_tlvs_rejected() {
        // Just an END TLV.
        let only_end = [0u8, 0];
        assert!(LldpPacket::parse(&only_end).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let l = LldpPacket {
            chassis_id: "1".into(),
            port_id: "2".into(),
            ttl: 30,
        };
        let wire = l.encode();
        assert!(LldpPacket::parse(&wire[..wire.len() - 3]).is_err());
        assert!(LldpPacket::parse(&wire[..1]).is_err());
    }

    #[test]
    fn unknown_tlvs_are_skipped() {
        let l = LldpPacket {
            chassis_id: "c".into(),
            port_id: "p".into(),
            ttl: 5,
        };
        let mut b = BytesMut::new();
        // Insert an unknown TLV (type 5, "system name") before the packet.
        put_tlv(&mut b, 5, None, b"sysname");
        b.extend_from_slice(&l.encode());
        assert_eq!(LldpPacket::parse(&b).unwrap(), l);
    }
}
