//! Ethernet, ARP, IPv4, ICMP, TCP and UDP wire formats.
//!
//! Each header type provides `encode` (append to a `BytesMut`) and `parse`
//! (from a byte slice), with IPv4/ICMP checksums computed on encode and
//! verified on parse. Payloads are `bytes::Bytes` so frames can be fanned
//! out to many consumers without copying — the property libyanc's zero-copy
//! packet-in path (paper §8.1) depends on.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

use crate::addr::{EtherType, MacAddr};

/// Error while parsing a frame or header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was being parsed.
    pub what: &'static str,
    /// Why it failed.
    pub reason: String,
}

impl ParseError {
    pub(crate) fn new(what: &'static str, reason: impl Into<String>) -> Self {
        ParseError {
            what,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} parse error: {}", self.what, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for packet parsing.
pub type ParseResult<T> = Result<T, ParseError>;

fn need(what: &'static str, buf: &[u8], n: usize) -> ParseResult<()> {
    if buf.len() < n {
        return Err(ParseError::new(
            what,
            format!("need {n} bytes, have {}", buf.len()),
        ));
    }
    Ok(())
}

fn u16_at(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// RFC 1071 Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let Some(&b) = chunks.remainder().first() {
        sum += u32::from(b) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// An 802.1Q VLAN tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    /// Priority code point (0..=7).
    pub pcp: u8,
    /// VLAN id (0..=4095).
    pub vid: u16,
}

/// An Ethernet II frame, optionally 802.1Q-tagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Optional VLAN tag.
    pub vlan: Option<VlanTag>,
    /// EtherType of the payload.
    pub ethertype: EtherType,
    /// L3 payload.
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(18 + self.payload.len());
        b.put_slice(&self.dst.0);
        b.put_slice(&self.src.0);
        if let Some(tag) = self.vlan {
            b.put_u16(EtherType::VLAN.0);
            b.put_u16((u16::from(tag.pcp & 0x7) << 13) | (tag.vid & 0x0fff));
        }
        b.put_u16(self.ethertype.0);
        b.put_slice(&self.payload);
        b.freeze()
    }

    /// Parse from wire bytes. The payload is a cheap slice of `data`.
    pub fn parse(data: &Bytes) -> ParseResult<EthernetFrame> {
        need("ethernet", data, 14)?;
        let dst = MacAddr(data[0..6].try_into().unwrap());
        let src = MacAddr(data[6..12].try_into().unwrap());
        let mut et = u16_at(data, 12);
        let mut off = 14;
        let mut vlan = None;
        if et == EtherType::VLAN.0 {
            need("ethernet/vlan", data, 18)?;
            let tci = u16_at(data, 14);
            vlan = Some(VlanTag {
                pcp: (tci >> 13) as u8,
                vid: tci & 0x0fff,
            });
            et = u16_at(data, 16);
            off = 18;
        }
        Ok(EthernetFrame {
            dst,
            src,
            vlan,
            ethertype: EtherType(et),
            payload: data.slice(off..),
        })
    }
}

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

/// An ARP packet for IPv4 over Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sha: MacAddr,
    /// Sender protocol (IPv4) address.
    pub spa: Ipv4Addr,
    /// Target hardware address.
    pub tha: MacAddr,
    /// Target protocol (IPv4) address.
    pub tpa: Ipv4Addr,
}

impl ArpPacket {
    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(28);
        b.put_u16(1); // htype ethernet
        b.put_u16(EtherType::IPV4.0);
        b.put_u8(6);
        b.put_u8(4);
        b.put_u16(self.op.to_u16());
        b.put_slice(&self.sha.0);
        b.put_slice(&self.spa.octets());
        b.put_slice(&self.tha.0);
        b.put_slice(&self.tpa.octets());
        b.freeze()
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> ParseResult<ArpPacket> {
        need("arp", data, 28)?;
        if u16_at(data, 0) != 1 || u16_at(data, 2) != EtherType::IPV4.0 {
            return Err(ParseError::new("arp", "not ethernet/ipv4 arp"));
        }
        let op = match u16_at(data, 6) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            o => return Err(ParseError::new("arp", format!("bad opcode {o}"))),
        };
        Ok(ArpPacket {
            op,
            sha: MacAddr(data[8..14].try_into().unwrap()),
            spa: Ipv4Addr::new(data[14], data[15], data[16], data[17]),
            tha: MacAddr(data[18..24].try_into().unwrap()),
            tpa: Ipv4Addr::new(data[24], data[25], data[26], data[27]),
        })
    }
}

/// IP protocol numbers used by the simulator.
pub mod ip_proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// An IPv4 packet (no options).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Differentiated services / TOS byte.
    pub tos: u8,
    /// Identification field.
    pub id: u16,
    /// Time to live.
    pub ttl: u8,
    /// Protocol number (see [`ip_proto`]).
    pub proto: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// L4 payload.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Serialize to wire bytes, computing the header checksum.
    pub fn encode(&self) -> Bytes {
        let total = 20 + self.payload.len();
        let mut b = BytesMut::with_capacity(total);
        b.put_u8(0x45); // v4, ihl 5
        b.put_u8(self.tos);
        b.put_u16(total as u16);
        b.put_u16(self.id);
        b.put_u16(0x4000); // don't fragment
        b.put_u8(self.ttl);
        b.put_u8(self.proto);
        b.put_u16(0); // checksum placeholder
        b.put_slice(&self.src.octets());
        b.put_slice(&self.dst.octets());
        let cksum = internet_checksum(&b[..20]);
        b[10..12].copy_from_slice(&cksum.to_be_bytes());
        b.put_slice(&self.payload);
        b.freeze()
    }

    /// Parse from wire bytes, verifying the header checksum.
    pub fn parse(data: &Bytes) -> ParseResult<Ipv4Packet> {
        need("ipv4", data, 20)?;
        if data[0] >> 4 != 4 {
            return Err(ParseError::new("ipv4", "not version 4"));
        }
        let ihl = usize::from(data[0] & 0xf) * 4;
        need("ipv4", data, ihl)?;
        if internet_checksum(&data[..ihl]) != 0 {
            return Err(ParseError::new("ipv4", "bad header checksum"));
        }
        let total = usize::from(u16_at(data, 2));
        if total < ihl || total > data.len() {
            return Err(ParseError::new("ipv4", "bad total length"));
        }
        Ok(Ipv4Packet {
            tos: data[1],
            id: u16_at(data, 4),
            ttl: data[8],
            proto: data[9],
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            payload: data.slice(ihl..total),
        })
    }
}

/// ICMP message types used by the simulator.
pub mod icmp_type {
    /// Echo reply.
    pub const ECHO_REPLY: u8 = 0;
    /// Destination unreachable.
    pub const DEST_UNREACHABLE: u8 = 3;
    /// Echo request.
    pub const ECHO_REQUEST: u8 = 8;
    /// Time exceeded.
    pub const TIME_EXCEEDED: u8 = 11;
}

/// An ICMP message (echo-style: id/seq in the rest-of-header word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpPacket {
    /// ICMP type (see [`icmp_type`]).
    pub icmp_type: u8,
    /// ICMP code.
    pub code: u8,
    /// Identifier (echo) or unused.
    pub ident: u16,
    /// Sequence number (echo) or unused.
    pub seq: u16,
    /// Payload.
    pub payload: Bytes,
}

impl IcmpPacket {
    /// Serialize to wire bytes, computing the checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8 + self.payload.len());
        b.put_u8(self.icmp_type);
        b.put_u8(self.code);
        b.put_u16(0);
        b.put_u16(self.ident);
        b.put_u16(self.seq);
        b.put_slice(&self.payload);
        let cksum = internet_checksum(&b);
        b[2..4].copy_from_slice(&cksum.to_be_bytes());
        b.freeze()
    }

    /// Parse from wire bytes, verifying the checksum.
    pub fn parse(data: &Bytes) -> ParseResult<IcmpPacket> {
        need("icmp", data, 8)?;
        if internet_checksum(data) != 0 {
            return Err(ParseError::new("icmp", "bad checksum"));
        }
        Ok(IcmpPacket {
            icmp_type: data[0],
            code: data[1],
            ident: u16_at(data, 4),
            seq: u16_at(data, 6),
            payload: data.slice(8..),
        })
    }
}

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    fn to_byte(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment (no options; checksum computed with the IPv4 pseudo-header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Payload.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Serialize, computing the checksum for the given IPv4 endpoints.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let mut b = BytesMut::with_capacity(20 + self.payload.len());
        b.put_u16(self.src_port);
        b.put_u16(self.dst_port);
        b.put_u32(self.seq);
        b.put_u32(self.ack);
        b.put_u8(5 << 4); // data offset 5 words
        b.put_u8(self.flags.to_byte());
        b.put_u16(self.window);
        b.put_u16(0); // checksum placeholder
        b.put_u16(0); // urgent
        b.put_slice(&self.payload);
        let cksum = l4_checksum(src, dst, ip_proto::TCP, &b);
        b[16..18].copy_from_slice(&cksum.to_be_bytes());
        b.freeze()
    }

    /// Parse, verifying the checksum against the IPv4 endpoints.
    pub fn parse(data: &Bytes, src: Ipv4Addr, dst: Ipv4Addr) -> ParseResult<TcpSegment> {
        need("tcp", data, 20)?;
        if l4_checksum(src, dst, ip_proto::TCP, data) != 0 {
            return Err(ParseError::new("tcp", "bad checksum"));
        }
        let off = usize::from(data[12] >> 4) * 4;
        need("tcp", data, off)?;
        Ok(TcpSegment {
            src_port: u16_at(data, 0),
            dst_port: u16_at(data, 2),
            seq: u32_at(data, 4),
            ack: u32_at(data, 8),
            flags: TcpFlags::from_byte(data[13]),
            window: u16_at(data, 14),
            payload: data.slice(off..),
        })
    }
}

/// A UDP datagram (checksum computed with the IPv4 pseudo-header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Serialize, computing the checksum for the given IPv4 endpoints.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let len = 8 + self.payload.len();
        let mut b = BytesMut::with_capacity(len);
        b.put_u16(self.src_port);
        b.put_u16(self.dst_port);
        b.put_u16(len as u16);
        b.put_u16(0);
        b.put_slice(&self.payload);
        let mut cksum = l4_checksum(src, dst, ip_proto::UDP, &b);
        if cksum == 0 {
            cksum = 0xffff; // RFC 768: zero means "no checksum"
        }
        b[6..8].copy_from_slice(&cksum.to_be_bytes());
        b.freeze()
    }

    /// Parse, verifying the checksum against the IPv4 endpoints.
    pub fn parse(data: &Bytes, src: Ipv4Addr, dst: Ipv4Addr) -> ParseResult<UdpDatagram> {
        need("udp", data, 8)?;
        let len = usize::from(u16_at(data, 4));
        if len < 8 || len > data.len() {
            return Err(ParseError::new("udp", "bad length"));
        }
        if u16_at(data, 6) != 0 && l4_checksum(src, dst, ip_proto::UDP, &data[..len]) != 0 {
            return Err(ParseError::new("udp", "bad checksum"));
        }
        Ok(UdpDatagram {
            src_port: u16_at(data, 0),
            dst_port: u16_at(data, 2),
            payload: data.slice(8..len),
        })
    }
}

/// L4 checksum with the IPv4 pseudo-header.
fn l4_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let mut pseudo = BytesMut::with_capacity(12 + segment.len() + 1);
    pseudo.put_slice(&src.octets());
    pseudo.put_slice(&dst.octets());
    pseudo.put_u8(0);
    pseudo.put_u8(proto);
    pseudo.put_u16(segment.len() as u16);
    pseudo.put_slice(segment);
    internet_checksum(&pseudo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn checksum_known_vector() {
        // Classic RFC 1071 example.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn ethernet_roundtrip_untagged() {
        let f = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_seed(1),
            vlan: None,
            ethertype: EtherType::ARP,
            payload: Bytes::from_static(b"payload"),
        };
        let wire = f.encode();
        assert_eq!(EthernetFrame::parse(&wire).unwrap(), f);
    }

    #[test]
    fn ethernet_roundtrip_vlan() {
        let f = EthernetFrame {
            dst: MacAddr::from_seed(2),
            src: MacAddr::from_seed(3),
            vlan: Some(VlanTag { pcp: 5, vid: 100 }),
            ethertype: EtherType::IPV4,
            payload: Bytes::from_static(b"x"),
        };
        let wire = f.encode();
        let p = EthernetFrame::parse(&wire).unwrap();
        assert_eq!(p, f);
        assert_eq!(p.vlan.unwrap().vid, 100);
    }

    #[test]
    fn ethernet_too_short() {
        assert!(EthernetFrame::parse(&Bytes::from_static(b"short")).is_err());
    }

    #[test]
    fn arp_roundtrip() {
        let a = ArpPacket {
            op: ArpOp::Request,
            sha: MacAddr::from_seed(1),
            spa: ip("10.0.0.1"),
            tha: MacAddr::ZERO,
            tpa: ip("10.0.0.2"),
        };
        assert_eq!(ArpPacket::parse(&a.encode()).unwrap(), a);
        let r = ArpPacket {
            op: ArpOp::Reply,
            ..a
        };
        assert_eq!(ArpPacket::parse(&r.encode()).unwrap().op, ArpOp::Reply);
    }

    #[test]
    fn ipv4_roundtrip_and_checksum_verified() {
        let p = Ipv4Packet {
            tos: 0x10,
            id: 7,
            ttl: 64,
            proto: ip_proto::UDP,
            src: ip("10.0.0.1"),
            dst: ip("10.0.0.2"),
            payload: Bytes::from_static(b"data"),
        };
        let wire = p.encode();
        assert_eq!(Ipv4Packet::parse(&wire).unwrap(), p);
        // Corrupt a byte: checksum must catch it.
        let mut bad = BytesMut::from(&wire[..]);
        bad[8] ^= 0xff;
        assert!(Ipv4Packet::parse(&bad.freeze()).is_err());
    }

    #[test]
    fn icmp_echo_roundtrip() {
        let m = IcmpPacket {
            icmp_type: icmp_type::ECHO_REQUEST,
            code: 0,
            ident: 42,
            seq: 3,
            payload: Bytes::from_static(b"ping"),
        };
        let wire = m.encode();
        assert_eq!(IcmpPacket::parse(&wire).unwrap(), m);
        let mut bad = BytesMut::from(&wire[..]);
        bad[4] ^= 1;
        assert!(IcmpPacket::parse(&bad.freeze()).is_err());
    }

    #[test]
    fn tcp_roundtrip_with_pseudo_header() {
        let s = ip("192.168.1.1");
        let d = ip("192.168.1.2");
        let t = TcpSegment {
            src_port: 44123,
            dst_port: 22,
            seq: 1000,
            ack: 0,
            flags: TcpFlags {
                syn: true,
                ..Default::default()
            },
            window: 65535,
            payload: Bytes::new(),
        };
        let wire = t.encode(s, d);
        assert_eq!(TcpSegment::parse(&wire, s, d).unwrap(), t);
        // Wrong pseudo-header endpoints fail the checksum. (Merely swapping
        // src/dst would pass — one's-complement addition is commutative —
        // so use a genuinely different address.)
        assert!(TcpSegment::parse(&wire, s, ip("192.168.1.9")).is_err());
    }

    #[test]
    fn udp_roundtrip() {
        let s = ip("10.0.0.1");
        let d = ip("10.0.0.2");
        let u = UdpDatagram {
            src_port: 68,
            dst_port: 67,
            payload: Bytes::from_static(b"dhcp"),
        };
        let wire = u.encode(s, d);
        assert_eq!(UdpDatagram::parse(&wire, s, d).unwrap(), u);
    }

    #[test]
    fn tcp_flags_roundtrip() {
        for b in 0..32u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b & 0x1f);
        }
    }
}
