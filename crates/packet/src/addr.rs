//! Link-layer addresses and EtherTypes.

use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);
    /// The 802.1AB LLDP multicast destination `01:80:c2:00:00:0e`.
    pub const LLDP_MULTICAST: MacAddr = MacAddr([0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e]);

    /// Derive a deterministic, locally-administered unicast address from a
    /// 64-bit seed — used by simulators to assign stable MACs.
    pub fn from_seed(seed: u64) -> MacAddr {
        let b = seed.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Whether the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Error parsing a [`MacAddr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParseError(pub String);

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(MacParseError(s.to_string()));
        }
        let mut out = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            out[i] = u8::from_str_radix(p, 16).map_err(|_| MacParseError(s.to_string()))?;
        }
        Ok(MacAddr(out))
    }
}

/// Well-known EtherType values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4 (0x0800).
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP (0x0806).
    pub const ARP: EtherType = EtherType(0x0806);
    /// 802.1Q VLAN tag (0x8100).
    pub const VLAN: EtherType = EtherType(0x8100);
    /// LLDP (0x88cc).
    pub const LLDP: EtherType = EtherType(0x88cc);
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert_eq!("de:ad:be:ef:00:01".parse::<MacAddr>().unwrap(), m);
        assert_eq!("DE:AD:BE:EF:00:01".parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
    }

    #[test]
    fn multicast_and_broadcast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::LLDP_MULTICAST.is_multicast());
        assert!(!MacAddr::LLDP_MULTICAST.is_broadcast());
        assert!(!MacAddr::from_seed(7).is_multicast());
    }

    #[test]
    fn seeded_macs_are_stable_and_distinct() {
        assert_eq!(MacAddr::from_seed(42), MacAddr::from_seed(42));
        assert_ne!(MacAddr::from_seed(1), MacAddr::from_seed(2));
    }

    #[test]
    fn ethertypes() {
        assert_eq!(EtherType::IPV4.to_string(), "0x0800");
        assert_eq!(EtherType::ARP.0, 0x0806);
    }
}
