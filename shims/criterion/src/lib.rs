//! Offline stand-in for the `criterion` crate.
//!
//! The real criterion is a statistical benchmark harness; this shim keeps
//! the same API shape but runs every benchmark closure exactly **once** and
//! prints a one-line wall-clock reading. That turns `cargo test` (which
//! executes `harness = false` bench targets) into a fast smoke test that the
//! bench code still compiles and runs, without minutes of sampling.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, created by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run `f` once and report its wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b);
        println!("bench {}/{}: {} ns", self.name, id.label, b.elapsed_ns);
        self
    }

    /// Run `f` once with `input` and report its wall-clock time.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b, input);
        println!("bench {}/{}: {} ns", self.name, id.label, b.elapsed_ns);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns += start.elapsed().as_nanos();
    }

    /// Time one execution of `routine` on a freshly built input, excluding
    /// `setup` from the measurement.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id showing only the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Bundle benchmark functions into a runnable group, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(64));
        let mut ran = 0;
        g.bench_function("plain", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
        for n in [2u32, 3] {
            let mut setup_runs = 0;
            g.bench_with_input(BenchmarkId::new("sized", n), &n, |b, &n| {
                b.iter_with_setup(
                    || {
                        setup_runs += 1;
                        vec![0u8; n as usize]
                    },
                    |v| v.len(),
                )
            });
            assert_eq!(setup_runs, 1);
        }
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_each_closure_once() {
        benches();
    }
}
