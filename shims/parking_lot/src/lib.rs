//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal API-compatible subset of `parking_lot` built on `std::sync`
//! primitives. Semantics match what the yanc codebase relies on: guards that
//! deref to the protected value and locks that never poison (a panicked
//! writer does not wedge every later reader, matching parking_lot).

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that ignores poisoning, like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock that ignores poisoning, like `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn panicked_writer_does_not_poison() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 0); // parking_lot semantics: still usable
    }
}
