//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset yanc uses — `channel::{unbounded, Sender, Receiver}`
//! and `queue::ArrayQueue` — with crossbeam's semantics (cloneable MPMC
//! endpoints, disconnection on last-drop) implemented over `std::sync`.
//! Throughput is not a goal; the deterministic simulator is single-threaded
//! on its hot paths and the real crate is unavailable offline.

pub mod channel {
    //! Multi-producer multi-consumer unbounded FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; errors only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.inner.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.inner.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half; clone freely (each message goes to exactly one
    /// receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.inner.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self.shared.ready.wait_timeout(st, deadline - now).unwrap();
                st = g;
            }
        }

        /// Drain currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator; ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator over currently available messages (never blocks).
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Blocking iterator over messages until disconnection.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

pub mod queue {
    //! Bounded lock-based queue with `crossbeam::queue::ArrayQueue`'s API.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// Bounded MPMC FIFO queue; `push` fails (returning the value) when full.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// A queue holding up to `capacity` elements.
        ///
        /// # Panics
        /// Panics if `capacity` is zero, matching crossbeam.
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
            }
        }

        /// Append `value`; on a full queue the value is handed back.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap();
            if q.len() >= self.capacity {
                return Err(value);
            }
            q.push_back(value);
            Ok(())
        }

        /// Pop the oldest element.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Current element count.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// Whether the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() >= self.capacity
        }

        /// The fixed capacity.
        pub fn capacity(&self) -> usize {
            self.capacity
        }
    }

    impl<T> fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("capacity", &self.capacity)
                .field("len", &self.len())
                .finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::queue::ArrayQueue;

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn cloned_receivers_share_messages() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.try_recv().unwrap();
        let b = rx2.try_recv().unwrap();
        assert_eq!(a + b, 3);
    }

    #[test]
    fn array_queue_bounds() {
        let q = ArrayQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.capacity(), 2);
    }
}
