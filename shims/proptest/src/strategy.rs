//! The [`Strategy`] trait and the combinators yanc's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// produces a final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Strategy from a sampling closure; backs `prop_compose!`.
pub fn sampled_with<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy { f }
}

/// See [`sampled_with`].
pub struct FnStrategy<F> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.u64_in(self.start as u64, self.end as u64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    if hi >= u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        rng.u64_in(lo, hi + 1) as $t
                    }
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_signed {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arbitrary_signed!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9, S10.10);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9, S10.10, S11.11);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::from_name("t");
        for _ in 0..200 {
            let (a, b) = (1u8..4, 10u16..=12).sample(&mut rng);
            assert!((1..4).contains(&a));
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn union_samples_every_arm() {
        let mut rng = TestRng::from_name("u");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::from_name("m");
        let s = (0u8..3).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert!(s.sample(&mut rng) % 2 == 0);
        }
    }
}
