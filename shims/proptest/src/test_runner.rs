//! Deterministic RNG and run configuration.

/// How many cases a `proptest!` test runs, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 RNG seeded from the test name: the same test always samples
/// the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from an arbitrary string (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `lo` when the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_name_sensitive() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut r = TestRng::from_name("range");
        for _ in 0..1000 {
            let v = r.u64_in(10, 13);
            assert!((10..13).contains(&v));
        }
        assert_eq!(r.u64_in(5, 5), 5);
    }
}
