//! Offline stand-in for the `proptest` crate.
//!
//! Supports the API surface yanc's property tests use: the [`Strategy`]
//! trait with `prop_map`/`boxed`, `any::<T>()`, ranges and tuples as
//! strategies, `Just`, `prop_oneof!`, `prop_compose!`, the `proptest!` test
//! macro, and the `collection`/`option`/`array` strategy modules.
//!
//! Two deliberate simplifications versus real proptest:
//!
//! * **No shrinking.** A failing case panics with the sampled values in the
//!   assertion message instead of a minimized counterexample.
//! * **Fully deterministic.** The RNG seed is derived from the test name, so
//!   a given suite samples the same cases on every run — which the repo's
//!   deterministic-metrics tests rely on.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` for one case in four and `Some(inner)`
    /// otherwise (real proptest defaults to the same weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`proptest::array`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_fn {
        ($name:ident, $n:literal) => {
            /// Strategy producing arrays whose elements are drawn from
            /// `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        };
    }

    uniform_fn!(uniform4, 4);
    uniform_fn!(uniform6, 6);
    uniform_fn!(uniform8, 8);
    uniform_fn!(uniform16, 16);
    uniform_fn!(uniform32, 32);

    /// See [`uniform6`] and friends.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }
}

/// `prop_assert!` — asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_oneof!` — uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `prop_compose!` — build a named strategy function from field strategies.
///
/// Supports the common two-group form:
/// `fn name(args)(field in strat, ...) -> Type { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($args:tt)*)
            ($($field:ident in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $(let $field = $strat;)*
            $crate::strategy::sampled_with(move |rng| {
                $(let $field = $crate::strategy::Strategy::sample(&$field, rng);)*
                $body
            })
        }
    };
}

/// `proptest!` — declare deterministic property tests.
///
/// Each `#[test] fn name(binding in strategy, ...) { body }` item expands to
/// a standard test that samples `ProptestConfig::cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        @cfg ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($binding:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                $(let $binding = $strat;)*
                for _case in 0..cfg.cases {
                    $(let $binding = $crate::strategy::Strategy::sample(&$binding, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Box(u8, u8),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (0u8..10, 0u8..10).prop_map(|(w, h)| Shape::Box(w, h)),
        ]
    }

    prop_compose! {
        fn arb_pair()(a in 0u16..100, b in 0u16..100) -> (u16, u16) {
            (a.min(b), a.max(b))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in 1usize..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn composed_pairs_are_ordered(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn oneof_hits_all_arms(shapes in crate::collection::vec(arb_shape(), 32..33)) {
            prop_assert_eq!(shapes.len(), 32);
        }

        #[test]
        fn options_mix(o in crate::option::of(0u8..4)) {
            if let Some(v) = o {
                prop_assert!(v < 4);
            }
        }

        #[test]
        fn arrays_fill(a in crate::array::uniform6(1u8..3)) {
            prop_assert!(a.iter().all(|&v| v == 1 || v == 2));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(any::<u64>(), 5..9);
        let a: Vec<u64> = strat.sample(&mut TestRng::from_name("seed"));
        let b: Vec<u64> = strat.sample(&mut TestRng::from_name("seed"));
        assert_eq!(a, b);
    }
}
