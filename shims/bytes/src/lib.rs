//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the yanc codecs use: cheaply-cloneable immutable
//! [`Bytes`] (an `Arc<[u8]>` window, so `slice`/`clone` never copy payload —
//! the property the packet fan-out paths rely on), a growable [`BytesMut`]
//! builder, and the big-endian [`BufMut`] append trait.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, sliceable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (the shim copies it once; the real crate does
    /// not, but no caller observes the difference).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Drop the first `cnt` bytes from the view.
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    /// Bytes left in the view (alias of `len`, Buf-style).
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// Copy the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(v);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte builder; `freeze` converts to [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Remove all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Resize to `len`, filling with `value`.
    pub fn resize(&mut self, len: usize, value: u8) {
        self.buf.resize(len, value);
    }

    /// Truncate to at most `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let rest = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, rest);
        BytesMut { buf: head }
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> BytesMut {
        BytesMut { buf: v.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

/// Big-endian append operations (the subset of `bytes::BufMut` yanc's
/// encoders use).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append `cnt` copies of `val` (used for wire padding).
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.buf.resize(self.buf.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_slice_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_u64(0x08090a0b0c0d0e0f);
        b.put_slice(&[0xaa, 0xbb]);
        b.put_bytes(0, 3);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 2 + 3);
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[1..3], &[2, 3]);
        let tail = frozen.slice(15..17);
        assert_eq!(tail, [0xaa, 0xbb]);
    }

    #[test]
    fn slices_share_backing() {
        let b = Bytes::from(vec![0u8; 1024]);
        let s1 = b.slice(0..512);
        let s2 = b.slice(512..);
        assert!(Arc::ptr_eq(&b.data, &s1.data));
        assert!(Arc::ptr_eq(&b.data, &s2.data));
    }

    #[test]
    fn split_to_and_advance() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head, [1, 2]);
        assert_eq!(b, [3, 4, 5]);
        b.advance(1);
        assert_eq!(b, [4, 5]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn bytes_mut_split_to() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4][..]);
        let head = b.split_to(3);
        assert_eq!(head.as_ref(), &[1, 2, 3]);
        assert_eq!(b.as_ref(), &[4]);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, b"abc");
        assert_eq!(b, vec![b'a', b'b', b'c']);
        assert_eq!(b, Bytes::from("abc"));
    }
}
